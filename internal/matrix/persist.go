package matrix

// persist.go integrates the durable flow-state store (internal/store,
// docs/STORE.md) into the engine: periodic snapshots of resumable
// state, passivation of idle executions out of engine memory, and
// transparent resurrection when something — a status query, a trigger
// firing, a wire control request, or a federated status route — needs
// a passivated flow again. With a store attached, resident memory is
// bounded by the *active* flow set and restart recovery replays
// O(snapshot + tail) records instead of the full journal history.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/provenance"
	"datagridflow/internal/store"
)

// SetStore attaches (or, with nil, detaches) the engine's flow-state
// store. The store receives every journal-type lifecycle record the
// engine writes, plus snapshots and passivation markers.
func (e *Engine) SetStore(st *store.Store) {
	if st != nil {
		st.SetObs(e.Obs())
	}
	e.mu.Lock()
	e.store = st
	n := len(e.execs)
	e.mu.Unlock()
	if st != nil {
		e.Obs().Gauge("store_resident").Set(int64(n))
	}
}

// Store returns the attached flow-state store, or nil.
func (e *Engine) Store() *store.Store {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store
}

// storeAppend stamps and writes one record to the store only (not the
// flat journal) — snapshots and passivation markers are store
// concepts.
func (e *Engine) storeAppend(rec journalRecord) error {
	st := e.Store()
	if st == nil {
		return fmt.Errorf("matrix: no store attached: %w", dgferr.ErrInvalid)
	}
	rec.Time = e.Clock().Now()
	if err := st.Append(rec); err != nil {
		e.Obs().Counter("store_append_errors_total").Inc()
		return err
	}
	e.chargeRecord(&rec)
	return nil
}

// snapshotRecord captures the execution's resumable state as one
// self-contained exec.snap record: the request document, the root
// scope's variables, and every node path proven complete — succeeded
// and skipped steps, whole delegated subtrees, plus the not-yet-reached
// checkpoint set a restart or resurrection seeded this run with.
func (ex *Execution) snapshotRecord() (journalRecord, error) {
	doc, err := dgl.Marshal(ex.req)
	if err != nil {
		return journalRecord{}, fmt.Errorf("matrix: snapshot %s: %w", ex.ID, err)
	}
	abs := make(map[string]bool)
	ex.root.collectSucceeded(abs)
	done := make(map[string]bool, len(abs)+len(ex.skip))
	for id := range abs {
		done[ex.relID(id)] = true
	}
	for rel := range ex.skip {
		done[rel] = true
	}
	rel := make([]string, 0, len(done))
	for r := range done {
		rel = append(rel, r)
	}
	return journalRecord{
		Type: journalExecSnap, ID: ex.ID,
		Request: string(doc),
		Vars:    ex.scope.Snapshot(),
		Done:    rel,
		Paused:  ex.Paused(),
	}, nil
}

// SnapshotExecution writes a snapshot of one resident execution to the
// store.
func (e *Engine) SnapshotExecution(id string) error {
	ex, ok := e.Execution(id)
	if !ok {
		return fmt.Errorf("%w: execution %s", ErrNotFound, id)
	}
	rec, err := ex.snapshotRecord()
	if err != nil {
		return err
	}
	if err := e.storeAppend(rec); err != nil {
		return err
	}
	ex.dirty.Store(false)
	return nil
}

// SnapshotAll snapshots every resident, non-terminal execution that
// has made progress since its last snapshot, returning how many
// snapshots were written. matrixd calls this on the -snapshot-every
// cadence.
func (e *Engine) SnapshotAll() int {
	if e.Store() == nil {
		return 0
	}
	e.mu.RLock()
	execs := make([]*Execution, 0, len(e.execs))
	for _, ex := range e.execs {
		execs = append(execs, ex)
	}
	e.mu.RUnlock()
	count := 0
	for _, ex := range execs {
		select {
		case <-ex.done:
			continue // terminal: its exec.end record is the truth
		default:
		}
		if !ex.dirty.Load() {
			continue
		}
		rec, err := ex.snapshotRecord()
		if err != nil {
			continue
		}
		if e.storeAppend(rec) == nil {
			ex.dirty.Store(false)
			count++
		}
	}
	return count
}

// Passivate snapshots a resident execution, marks it passivated in the
// store, and evicts it from engine memory — its run goroutines unwind
// through the cancellation path without writing a terminal record.
// The execution resurrects transparently (same id, variables restored,
// completed steps skipped) when next needed; the step it was inside
// re-runs, the store's at-least-once unit.
func (e *Engine) Passivate(id string) error {
	if e.Store() == nil {
		return fmt.Errorf("matrix: passivate %s: no store attached: %w", id, dgferr.ErrInvalid)
	}
	ex, ok := e.Execution(id)
	if !ok {
		return fmt.Errorf("%w: execution %s", ErrNotFound, id)
	}
	select {
	case <-ex.done:
		return fmt.Errorf("%w: %s already terminal", ErrNotRestartable, id)
	default:
	}
	rec, err := ex.snapshotRecord()
	if err != nil {
		return err
	}
	if err := e.storeAppend(rec); err != nil {
		return err
	}
	if err := e.storeAppend(journalRecord{
		Type: journalExecPassivate, ID: id, Paused: ex.Paused(),
	}); err != nil {
		return err
	}
	// Mirror the marker into the flat journal (if one is attached) so a
	// journal-only recovery knows this flow is parked in the store and
	// does not re-run it from scratch under a fresh id.
	e.mirrorToJournal(journalRecord{Type: journalExecPassivate, ID: id, Paused: ex.Paused()})
	// Order matters: the flag must be visible before Cancel unwinds the
	// run goroutine, so its epilogue suppresses the exec.end record.
	ex.passivated.Store(true)
	ex.Cancel()
	e.mu.Lock()
	delete(e.execs, id)
	n := len(e.execs)
	e.mu.Unlock()
	o := e.Obs()
	o.Counter("matrix_flows_passivated_total").Inc()
	o.Gauge("store_resident").Set(int64(n))
	e.record(provenance.Record{
		Actor: ex.req.User.Name, Action: "flow.passivate",
		FlowID: id, Target: ex.req.Flow.Name,
	})
	return nil
}

// PassivateIdle passivates every resident execution that has made no
// step progress for at least the idle duration — paused flows, flows
// blocked in a long sleep, flows waiting on a trigger to resume them.
// Executions with delegations in flight are exempt (a remote peer is
// actively working on their behalf). Returns the number passivated.
func (e *Engine) PassivateIdle(idle time.Duration) int {
	if e.Store() == nil {
		return 0
	}
	now := e.Clock().Now()
	e.mu.RLock()
	type cand struct {
		id string
		ex *Execution
	}
	cands := make([]cand, 0, len(e.execs))
	for id, ex := range e.execs {
		cands = append(cands, cand{id, ex})
	}
	e.mu.RUnlock()
	count := 0
	for _, c := range cands {
		select {
		case <-c.ex.done:
			continue
		default:
		}
		if c.ex.delegating.Load() > 0 {
			continue
		}
		if now.Sub(time.Unix(0, c.ex.lastActive.Load())) < idle {
			continue
		}
		if e.Passivate(c.id) == nil {
			count++
		}
	}
	return count
}

// ResurrectFor returns the execution with the given id, bringing it
// back from the store if it is passivated (or was left open by a
// crash). path labels the wake-up source for the
// store_resurrections_total metric: "status", "trigger", "wire",
// "federation" or "recovery". Already-resident executions are returned
// as-is.
func (e *Engine) ResurrectFor(id, path string) (*Execution, error) {
	if ex, ok := e.Execution(id); ok {
		return ex, nil
	}
	st := e.Store()
	if st == nil {
		return nil, fmt.Errorf("%w: execution %s", ErrNotFound, id)
	}
	ent, ok := st.Entry(id)
	if !ok || ent.Ended || ent.Pruned {
		return nil, fmt.Errorf("%w: execution %s", ErrNotFound, id)
	}
	req, err := dgl.DecodeRequest([]byte(ent.Request))
	if err != nil {
		return nil, fmt.Errorf("%w: stored request for %s: %v", dgl.ErrInvalid, id, err)
	}
	if err := dgl.ValidateFlow(req.Flow, e.knownOps()); err != nil {
		return nil, err
	}
	ex, created := e.adoptExecution(id, req, ent)
	if !created {
		return ex, nil // lost a resurrection race: the winner's handle
	}
	_ = e.storeAppend(journalRecord{Type: journalExecResurrect, ID: id})
	e.mirrorToJournal(journalRecord{Type: journalExecResurrect, ID: id})
	e.Obs().Counter("store_resurrections_total", "path", path).Inc()
	e.record(provenance.Record{
		Actor: req.User.Name, Action: "flow.resurrect",
		FlowID: id, Target: req.Flow.Name,
		Detail: map[string]string{"path": path, "steps-done": fmt.Sprint(len(ent.Done))},
	})
	go ex.run()
	return ex, nil
}

// adoptExecution builds an execution under an *existing* id from a
// store entry — the resurrection twin of newExecution, which always
// mints a fresh id. The entry's done set seeds the checkpoint skip
// set, its variables are restored into the root scope when the run
// starts, and a paused entry resurrects paused. Returns created=false
// if a concurrent resurrection already registered the id.
func (e *Engine) adoptExecution(id string, req *dgl.Request, ent store.Entry) (*Execution, bool) {
	skip := make(map[string]bool, len(ent.Done))
	for _, n := range ent.Done {
		skip[n] = true
	}
	ex := &Execution{
		ID:          id,
		engine:      e,
		req:         req,
		ctrl:        newControl(),
		scope:       NewScope(nil),
		skip:        skip,
		done:        make(chan struct{}),
		restoreVars: ent.Vars,
	}
	if ent.Paused {
		ex.ctrl.pause()
	}
	ex.delegCtx, ex.delegCancel = context.WithCancel(context.Background())
	ex.lastActive.Store(e.Clock().Now().UnixNano())
	ex.root = &node{
		id:    id + "/" + req.Flow.Name,
		name:  req.Flow.Name,
		kind:  "flow",
		state: StatePending,
	}
	e.mu.Lock()
	if cur, ok := e.execs[id]; ok {
		e.mu.Unlock()
		return cur, false
	}
	e.execs[id] = ex
	n := len(e.execs)
	e.mu.Unlock()
	e.Obs().Gauge("store_resident").Set(int64(n))
	return ex, true
}

// RecoverFromStore resumes every execution the attached store proves
// was running when the previous process died — live, non-passivated
// entries. Passivated executions stay in the store (that is the point:
// a restart does not re-inflate months of idle flows) and resurrect on
// demand. The engine's id counter advances past every stored id so
// fresh executions never collide with recovered ones.
func (e *Engine) RecoverFromStore() ([]*Execution, error) {
	st := e.Store()
	if st == nil {
		return nil, fmt.Errorf("matrix: no store attached: %w", dgferr.ErrInvalid)
	}
	var maxSeq int64
	for _, id := range st.IDs() {
		if n, ok := execSeq(e.cfg.IDPrefix, id); ok && n > maxSeq {
			maxSeq = n
		}
	}
	for {
		cur := e.nextExec.Load()
		if cur >= maxSeq || e.nextExec.CompareAndSwap(cur, maxSeq) {
			break
		}
	}
	var out []*Execution
	for _, ent := range st.Live() {
		if ent.Passivated {
			continue
		}
		req, err := dgl.DecodeRequest([]byte(ent.Request))
		if err != nil {
			return out, fmt.Errorf("%w: stored request for %s: %v", dgl.ErrInvalid, ent.ID, err)
		}
		if err := dgl.ValidateFlow(req.Flow, e.knownOps()); err != nil {
			return out, fmt.Errorf("matrix: store recovery %s: %w", ent.ID, err)
		}
		ex, created := e.adoptExecution(ent.ID, req, ent)
		if !created {
			continue
		}
		e.Obs().Counter("matrix_recoveries_total").Inc()
		e.record(provenance.Record{
			Actor: req.User.Name, Action: "flow.recover",
			FlowID: ent.ID, Target: req.Flow.Name,
			Detail: map[string]string{"steps-done": fmt.Sprint(len(ent.Done))},
		})
		go ex.run()
		out = append(out, ex)
	}
	return out, nil
}

// AdoptedFlow describes one execution adopted from a dead peer's
// replica (AdoptEntries) — enough for the caller to re-register shard
// tracking without re-parsing the request.
type AdoptedFlow struct {
	// ID is the adopted execution id, still carrying the dead owner's
	// prefix ("peerB:dgf-000042") — prefixes are what keep it from
	// colliding with this engine's own counter.
	ID   string
	User string
	// Flow is the flow name (the routing-key half alongside User).
	Flow string
	// Resumed is true when the flow was brought into memory and its run
	// restarted; false when it was passivated at the source and stays
	// parked in this engine's store, to resurrect on demand.
	Resumed bool
}

// AdoptEntries takes over live executions recovered from a *replica* of
// a dead peer's store — the promotion path of the replication layer
// (docs/REPLICATION.md). It is RecoverFromStore's cross-store twin: the
// entries come from the replica, not the engine's own store, so each
// adopted flow is first re-persisted here as an exec.snap — making it
// durable on the new owner and, through the store tap, re-replicated to
// the new owner's own followers — and then resumed exactly like a
// recovery. Passivated entries are persisted but stay parked
// (resurrect-on-demand), preserving the memory bound promotion exists
// alongside. Per-entry failures (undecodable request, unknown op) are
// counted and skipped rather than aborting the takeover: adopting most
// of a dead peer's flows beats adopting none.
func (e *Engine) AdoptEntries(entries []store.Entry, source string) []AdoptedFlow {
	o := e.Obs()
	var out []AdoptedFlow
	for _, ent := range entries {
		if ent.Ended || ent.Pruned {
			continue
		}
		req, err := dgl.DecodeRequest([]byte(ent.Request))
		if err != nil {
			o.Counter("matrix_adoptions_total", "outcome", "invalid").Inc()
			continue
		}
		if err := dgl.ValidateFlow(req.Flow, e.knownOps()); err != nil {
			o.Counter("matrix_adoptions_total", "outcome", "invalid").Inc()
			continue
		}
		if e.Store() != nil {
			// Authored from the entry, not a live execution: the replica's
			// indexed state IS the adopted truth.
			_ = e.storeAppend(journalRecord{
				Type: journalExecSnap, ID: ent.ID,
				Request: ent.Request, Vars: ent.Vars, Done: ent.Done,
				Paused: ent.Paused, Passivated: ent.Passivated,
			})
		}
		if ent.Passivated {
			// Parked at the source, parked here: it now lives in our store
			// and resurrects on demand through the usual wake paths.
			o.Counter("matrix_adoptions_total", "outcome", "parked").Inc()
			out = append(out, AdoptedFlow{ID: ent.ID, User: req.User.Name, Flow: req.Flow.Name})
			continue
		}
		ex, created := e.adoptExecution(ent.ID, req, ent)
		if !created {
			_ = ex
			continue // already resident (duplicate promotion race)
		}
		o.Counter("matrix_adoptions_total", "outcome", "resumed").Inc()
		e.record(provenance.Record{
			Actor: req.User.Name, Action: "flow.adopt",
			FlowID: ent.ID, Target: req.Flow.Name,
			Detail: map[string]string{"source": source, "steps-done": fmt.Sprint(len(ent.Done))},
		})
		go ex.run()
		out = append(out, AdoptedFlow{ID: ent.ID, User: req.User.Name, Flow: req.Flow.Name, Resumed: true})
	}
	return out
}

// execSeq parses the numeric suffix of an engine-minted execution id
// ("<prefix>dgf-000042" → 42).
func execSeq(prefix, id string) (int64, bool) {
	rest := strings.TrimPrefix(id, prefix)
	if !strings.HasPrefix(rest, "dgf-") {
		return 0, false
	}
	var n int64
	if _, err := fmt.Sscanf(rest, "dgf-%d", &n); err != nil {
		return 0, false
	}
	return n, true
}
