package matrix

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
)

// State is the lifecycle state of a flow or step node.
type State string

// Node states. Terminal states are Succeeded, Failed, Cancelled and
// Skipped (skipped nodes count as successful for control flow — they are
// produced by switch fall-through and by restart's checkpoint skipping).
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	StateSkipped   State = "skipped"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateSucceeded, StateFailed, StateCancelled, StateSkipped:
		return true
	}
	return false
}

// Control errors. Each wraps its dgferr class so callers can match
// against the public taxonomy.
var (
	// ErrCancelled aborts a run when Cancel is called.
	ErrCancelled = dgferr.Mark(dgferr.ErrCancelled, "matrix: execution cancelled")
	// ErrNotFound reports an unknown execution or node id.
	ErrNotFound = dgferr.Mark(dgferr.ErrNotFound, "matrix: id not found")
	// ErrNotRestartable reports a Restart of a non-terminal execution.
	ErrNotRestartable = dgferr.Mark(dgferr.ErrInvalid, "matrix: execution not restartable")
)

// node is one element of an execution's dynamic status tree. Loop
// iterations add children at run time, so the tree can be much larger
// than the static flow document.
type node struct {
	id       string
	name     string
	kind     string // "flow" or "step"
	mu       sync.Mutex
	state    State
	err      string
	started  time.Time
	finished time.Time
	children []*node
	// remote is the remote execution id when this subtree was delegated
	// to another peer ("peerB:dgf-000042"). The node keeps its local id;
	// grafted children carry their remote ids, which the peer layer can
	// resolve from anywhere via status forwarding.
	remote string
}

func (n *node) setState(s State, at time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.state = s
	switch s {
	case StateRunning:
		if n.started.IsZero() {
			n.started = at
		}
	case StateSucceeded, StateFailed, StateCancelled, StateSkipped:
		n.finished = at
	}
}

func (n *node) setError(err error) {
	n.mu.Lock()
	n.err = err.Error()
	n.mu.Unlock()
}

func (n *node) addChild(c *node) {
	n.mu.Lock()
	n.children = append(n.children, c)
	n.mu.Unlock()
}

// find locates the node with the given id in the subtree.
func (n *node) find(id string) (*node, bool) {
	if n.id == id {
		return n, true
	}
	n.mu.Lock()
	kids := append([]*node(nil), n.children...)
	n.mu.Unlock()
	for _, c := range kids {
		if found, ok := c.find(id); ok {
			return found, true
		}
	}
	return nil, false
}

// status snapshots the subtree as a DGL FlowStatus (detail=false trims
// children).
func (n *node) status(detail bool) dgl.FlowStatus {
	n.mu.Lock()
	out := dgl.FlowStatus{
		ID:        n.id,
		Name:      n.name,
		Kind:      n.kind,
		State:     string(n.state),
		Error:     n.err,
		Delegated: n.remote,
	}
	if !n.started.IsZero() {
		out.Started = n.started.UTC().Format(time.RFC3339Nano)
	}
	if !n.finished.IsZero() {
		out.Finished = n.finished.UTC().Format(time.RFC3339Nano)
	}
	kids := append([]*node(nil), n.children...)
	n.mu.Unlock()
	if detail {
		for _, c := range kids {
			out.Children = append(out.Children, c.status(true))
		}
	}
	return out
}

// collectSucceeded gathers the ids of terminally successful step nodes —
// the checkpoint set Restart consults. A delegated subtree is one unit:
// its node id joins the set when the remote run succeeded, and its
// grafted children (which carry remote ids from another peer's id
// space) are not descended into.
func (n *node) collectSucceeded(into map[string]bool) {
	n.mu.Lock()
	state := n.state
	kind := n.kind
	remote := n.remote
	kids := append([]*node(nil), n.children...)
	n.mu.Unlock()
	if remote != "" {
		if state == StateSucceeded || state == StateSkipped {
			into[n.id] = true
		}
		return
	}
	if kind == "step" && (state == StateSucceeded || state == StateSkipped) {
		into[n.id] = true
	}
	for _, c := range kids {
		c.collectSucceeded(into)
	}
}

// graftRemote marks the node as delegated to remoteID and replaces its
// children with the remote status tree's children — remote ids intact,
// so any step in the delegated run stays resolvable through the peer
// network's status forwarding.
func (n *node) graftRemote(remoteID string, st *dgl.FlowStatus) {
	var kids []*node
	for i := range st.Children {
		kids = append(kids, nodeFromStatus(&st.Children[i]))
	}
	n.mu.Lock()
	n.remote = remoteID
	n.children = kids
	n.mu.Unlock()
}

// nodeFromStatus rebuilds a status subtree (from a remote peer's XML)
// as local nodes, preserving the remote ids.
func nodeFromStatus(st *dgl.FlowStatus) *node {
	n := &node{
		id:     st.ID,
		name:   st.Name,
		kind:   st.Kind,
		state:  State(st.State),
		err:    st.Error,
		remote: st.Delegated,
	}
	if t, err := time.Parse(time.RFC3339Nano, st.Started); err == nil {
		n.started = t
	}
	if t, err := time.Parse(time.RFC3339Nano, st.Finished); err == nil {
		n.finished = t
	}
	for i := range st.Children {
		n.children = append(n.children, nodeFromStatus(&st.Children[i]))
	}
	return n
}

// ctrlState is the run-control state of an execution.
type ctrlState int

const (
	ctrlRunning ctrlState = iota
	ctrlPaused
	ctrlCancelled
)

// control coordinates pause/resume/cancel across the goroutines of one
// execution. checkpoint() is called between units of work: it blocks
// while paused and returns ErrCancelled once cancelled. done is closed
// on cancellation so blocking operations (a real-clock sleep, most
// importantly) can select on it and unwind promptly — the mechanism
// passivation uses to release a flow sleeping for months.
type control struct {
	mu    sync.Mutex
	cond  *sync.Cond
	state ctrlState
	done  chan struct{}
}

func newControl() *control {
	c := &control{done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// cancelled returns a channel closed once the execution is cancelled.
func (c *control) cancelled() <-chan struct{} { return c.done }

func (c *control) checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.state == ctrlPaused {
		c.cond.Wait()
	}
	if c.state == ctrlCancelled {
		return ErrCancelled
	}
	return nil
}

func (c *control) pause() {
	c.mu.Lock()
	if c.state == ctrlRunning {
		c.state = ctrlPaused
	}
	c.mu.Unlock()
}

func (c *control) resume() {
	c.mu.Lock()
	if c.state == ctrlPaused {
		c.state = ctrlRunning
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

func (c *control) cancel() {
	c.mu.Lock()
	if c.state != ctrlCancelled {
		c.state = ctrlCancelled
		close(c.done)
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

func (c *control) paused() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state == ctrlPaused
}

// Execution is one run of a DGL request on the engine.
type Execution struct {
	// ID is the unique request identifier returned in acknowledgements.
	ID string

	engine *Engine
	req    *dgl.Request
	root   *node
	ctrl   *control
	scope  *Scope

	// skip holds step ids that succeeded in a prior run (restart mode).
	skip map[string]bool

	// delegCtx scopes the execution's outbound delegations: cancelled by
	// Cancel (and when the run finishes), so remote subflows are released
	// when the parent stops waiting for them.
	delegCtx    context.Context
	delegCancel context.CancelFunc

	done chan struct{}

	// passivated marks an execution being evicted to the flow-state
	// store (Engine.Passivate): the run goroutine unwinds through the
	// cancellation path but must not record a terminal state.
	passivated atomic.Bool
	// governed marks an execution whose admission was charged to the
	// flow governor (docs/TENANCY.md); the run goroutine's unwind owes
	// exactly one EndFlow for it.
	governed atomic.Bool
	// dirty is set on step progress and cleared by snapshots, so
	// SnapshotAll skips executions with nothing new to capture.
	dirty atomic.Bool
	// lastActive is the UnixNano of the last step completion (engine
	// clock) — the idleness signal PassivateIdle consults.
	lastActive atomic.Int64
	// delegating counts in-flight outbound delegations; PassivateIdle
	// leaves such executions alone (a peer is working for them).
	delegating atomic.Int64
	// restoreVars holds root-scope variables from a store snapshot,
	// re-declared over the flow's variable block when the run starts.
	restoreVars map[string]string

	mu  sync.Mutex
	err error // final error, nil on success
}

// Done returns a channel closed when the execution reaches a terminal
// state.
func (e *Execution) Done() <-chan struct{} { return e.done }

// Wait blocks until the execution finishes and returns its final error.
func (e *Execution) Wait() error {
	<-e.done
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// WaitContext blocks until the execution finishes or the context is
// done. On cancellation it returns promptly with the context's error
// (wrapped with dgferr.ErrCancelled); the execution itself keeps
// running — call Cancel to stop it too.
func (e *Execution) WaitContext(ctx context.Context) error {
	select {
	case <-e.done:
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.err
	case <-ctx.Done():
		return fmt.Errorf("%w: %v", dgferr.ErrCancelled, ctx.Err())
	}
}

// Err returns the final error if the execution has finished.
func (e *Execution) Err() error {
	select {
	case <-e.done:
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.err
	default:
		return nil
	}
}

// Status snapshots the execution's status tree.
func (e *Execution) Status(detail bool) dgl.FlowStatus {
	return e.root.status(detail)
}

// StatusOf snapshots the subtree rooted at the given node id.
func (e *Execution) StatusOf(id string, detail bool) (dgl.FlowStatus, error) {
	n, ok := e.root.find(id)
	if !ok {
		return dgl.FlowStatus{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return n.status(detail), nil
}

// Pause suspends the execution at the next checkpoint (between steps and
// loop iterations). Pausing a terminal execution is a no-op.
func (e *Execution) Pause() { e.ctrl.pause() }

// Resume continues a paused execution.
func (e *Execution) Resume() { e.ctrl.resume() }

// Cancel stops the execution; in-flight steps finish, pending work is
// abandoned (delegated subflows are released via their context), and
// Wait returns ErrCancelled.
func (e *Execution) Cancel() {
	e.ctrl.cancel()
	if e.delegCancel != nil {
		e.delegCancel()
	}
}

// Paused reports whether the execution is currently paused.
func (e *Execution) Paused() bool { return e.ctrl.paused() }

// Vars snapshots the root variable scope.
func (e *Execution) Vars() map[string]string { return e.scope.Snapshot() }
