package matrix

// delegate.go is the engine's half of federated execution
// (docs/FEDERATION.md): a pluggable Delegator — in production the
// federation layer, in tests a fake — is offered whole subflows
// (parallel branches, parallel foreach shards, stored-procedure calls)
// before the engine runs them inline. The engine stays ignorant of
// peers, placement and wire details; it only knows how to hand a
// subflow out, journal the hand-off, and graft the remote status tree
// back into its own.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/provenance"
)

// ErrDelegateLocal is the sentinel a Delegator returns to decline a
// subflow: the engine runs it inline, exactly as if no delegator were
// attached. Federation returns it when draining, or when the subflow is
// too small to be worth shipping.
var ErrDelegateLocal = errors.New("matrix: delegator declined, run locally")

// DelegateRequest is one subflow offered to the Delegator. The flow's
// variable block already carries the parent scope's values (late
// binding resolved on the delegating side), so the remote run needs no
// parent environment.
type DelegateRequest struct {
	// User the subflow runs as.
	User string
	// Token is the submitting session's tenant bearer token, forwarded
	// so the remote peer re-verifies the same identity
	// (docs/TENANCY.md). Empty on untenanted submissions.
	Token string
	// Flow is the self-contained subflow document.
	Flow dgl.Flow
	// Hint is a resource name extracted from the subflow for
	// locality-aware placement; empty when none was found.
	Hint string
	// VdataHint is the peer already holding a memoized derivation for
	// one of the subflow's pure steps (docs/VDATA.md); empty when none
	// is known. The vdata-locality policy routes on it.
	VdataHint string
	// ParentExec and ParentNode locate the delegating node, for
	// provenance joining.
	ParentExec, ParentNode string
}

// DelegateResponse reports a settled delegation. Err carries the
// delegated flow's own terminal error (typed), nil on success — the
// remote ran either way, and RemoteID/Status report what it knows.
type DelegateResponse struct {
	// Peer that executed the subflow (possibly the local peer).
	Peer string
	// RemoteID is the execution id on that peer ("peerB:dgf-000042").
	RemoteID string
	// Status is the final status tree of the remote run (may be nil if
	// it could not be retrieved).
	Status *dgl.FlowStatus
	// Err is the delegated flow's terminal error, nil on success.
	Err error
}

// Delegator places and runs subflows somewhere in the federation. A
// returned error means the delegation machinery itself gave up (after
// its own failover attempts) — distinct from resp.Err, which is the
// flow failing on whatever peer ran it. Implementations must be safe
// for concurrent use.
type Delegator interface {
	Delegate(ctx context.Context, req DelegateRequest) (*DelegateResponse, error)
}

// SetDelegator attaches (or, with nil, detaches) the engine's
// delegation plane. Parallel subflows, parallel foreach shards and
// stored-procedure calls started afterwards are offered to it.
func (e *Engine) SetDelegator(d Delegator) {
	e.mu.Lock()
	e.deleg = d
	e.mu.Unlock()
}

// delegator returns the attached Delegator, or nil.
func (e *Engine) delegator() Delegator {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.deleg
}

// bindFlow copies f with the enclosing scope's variable values bound
// into its variable block, making the subflow self-contained. Names the
// flow already declares keep the flow's own (re-evaluated) declaration.
// Values are carried verbatim; a value containing "$" will be
// interpolated again on the remote side — the isolation caveat in
// docs/FEDERATION.md.
func bindFlow(f *dgl.Flow, scope *Scope) *dgl.Flow {
	out := *f
	declared := make(map[string]bool, len(f.Variables))
	for _, v := range f.Variables {
		declared[v.Name] = true
	}
	vars := append([]dgl.Variable(nil), f.Variables...)
	snap := scope.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		if !declared[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		vars = append(vars, dgl.Variable{Name: name, Value: snap[name]})
	}
	out.Variables = vars
	return &out
}

// resourceHint extracts a locality hint from a subflow: the first
// literal (non-interpolated) "resource" parameter any step names.
func resourceHint(f *dgl.Flow) string {
	for i := range f.Steps {
		for _, p := range f.Steps[i].Operation.Params {
			if p.Name == "resource" && p.Value != "" && !strings.Contains(p.Value, "$") {
				return p.Value
			}
		}
	}
	for i := range f.Flows {
		if h := resourceHint(&f.Flows[i]); h != "" {
			return h
		}
	}
	return ""
}

// shardFlow wraps one parallel-foreach iteration's children as a
// standalone sequential flow — the delegable unit for foreach shards.
// The iteration variable and enclosing scope travel via bindFlow.
func shardFlow(f *dgl.Flow, i int) *dgl.Flow {
	return &dgl.Flow{
		Name:  fmt.Sprintf("%s[%d]", f.Name, i),
		Logic: dgl.FlowLogic{Control: dgl.Sequential},
		Flows: f.Flows,
		Steps: f.Steps,
	}
}

// maybeDelegate offers the subflow rooted at n to the engine's
// delegator. handled=false means the caller must run it inline (no
// delegator attached, or the delegator declined with ErrDelegateLocal);
// handled=true means the node reached a terminal state here and err is
// the subflow's outcome.
func (ex *Execution) maybeDelegate(f *dgl.Flow, n *node, scope *Scope) (handled bool, err error) {
	d := ex.engine.delegator()
	if d == nil {
		return false, nil
	}
	o := ex.engine.Obs()
	rel := ex.relID(n.id)
	if ex.skip[rel] {
		// Restart checkpointing: a delegated subtree that already
		// succeeded is one unit — skip it wholesale.
		n.setState(StateSkipped, ex.now())
		o.Counter("matrix_checkpoint_skips_total").Inc()
		ex.engine.record(provenance.Record{
			Actor: ex.req.User.Name, Action: "deleg.skip",
			FlowID: ex.ID, StepID: n.id, Target: f.Name,
			Outcome: provenance.OutcomeSkipped,
		})
		ex.engine.journalAppend(journalRecord{
			Type: journalDelegDone, ID: ex.ID, Node: rel,
		})
		return true, nil
	}
	if err := ex.ctrl.checkpoint(); err != nil {
		n.setState(StateCancelled, ex.now())
		return true, err
	}
	bound := bindFlow(f, scope)
	req := DelegateRequest{
		User:       ex.req.User.Name,
		Token:      ex.req.Token,
		Flow:       *bound,
		Hint:       resourceHint(bound),
		VdataHint:  ex.vdataPeerHint(bound, scope),
		ParentExec: ex.ID,
		ParentNode: n.id,
	}
	n.setState(StateRunning, ex.now())
	ex.engine.record(provenance.Record{
		Actor: ex.req.User.Name, Action: "deleg.start",
		FlowID: ex.ID, StepID: n.id, Target: f.Name,
	})
	ex.engine.journalAppend(journalRecord{
		Type: journalDelegStart, ID: ex.ID, Node: rel,
	})
	// While the delegation is in flight a peer is working on this
	// execution's behalf: PassivateIdle must not treat it as idle.
	ex.delegating.Add(1)
	resp, derr := d.Delegate(ex.delegCtx, req)
	ex.delegating.Add(-1)
	if derr != nil {
		if errors.Is(derr, ErrDelegateLocal) {
			return false, nil
		}
		n.setError(derr)
		state := StateFailed
		if errors.Is(derr, dgferr.ErrCancelled) {
			state = StateCancelled
		}
		n.setState(state, ex.now())
		ex.engine.record(provenance.Record{
			Actor: ex.req.User.Name, Action: "deleg.finish",
			FlowID: ex.ID, StepID: n.id, Target: f.Name,
			Outcome: provenance.OutcomeError, Err: derr.Error(),
		})
		return true, derr
	}
	if resp.RemoteID != "" || resp.Status != nil {
		st := resp.Status
		if st == nil {
			st = &dgl.FlowStatus{}
		}
		n.graftRemote(resp.RemoteID, st)
	}
	detail := map[string]string{"peer": resp.Peer, "remote": resp.RemoteID}
	if resp.Err != nil {
		n.setError(resp.Err)
		n.setState(StateFailed, ex.now())
		ex.engine.record(provenance.Record{
			Actor: ex.req.User.Name, Action: "deleg.finish",
			FlowID: ex.ID, StepID: n.id, Target: f.Name,
			Outcome: provenance.OutcomeError, Err: resp.Err.Error(),
			Detail: detail,
		})
		return true, resp.Err
	}
	n.setState(StateSucceeded, ex.now())
	ex.engine.record(provenance.Record{
		Actor: ex.req.User.Name, Action: "deleg.finish",
		FlowID: ex.ID, StepID: n.id, Target: f.Name,
		Detail: detail,
	})
	ex.engine.journalAppend(journalRecord{
		Type: journalDelegDone, ID: ex.ID, Node: rel, Peer: resp.Peer,
	})
	ex.noteProgress()
	return true, nil
}

// delegateProcedure offers a stored-procedure invocation to the
// federation. handled=false means run it locally: no delegator, the
// procedure is unknown here (the local path reports that properly), or
// the federation declined.
func (e *Engine) delegateProcedure(c *OpContext, name string, args map[string]string) (remoteID string, err error, handled bool) {
	d := e.delegator()
	if d == nil {
		return "", nil, false
	}
	e.mu.RLock()
	p, ok := e.procs[name]
	e.mu.RUnlock()
	if !ok {
		return "", nil, false
	}
	body := p.Flow
	declared := make(map[string]bool, len(body.Variables))
	for _, v := range body.Variables {
		declared[v.Name] = true
	}
	vars := append([]dgl.Variable(nil), body.Variables...)
	names := make([]string, 0, len(args))
	for k := range args {
		if !declared[k] {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		vars = append(vars, dgl.Variable{Name: k, Value: args[k]})
	}
	body.Variables = vars
	ctx := context.Background()
	token := ""
	if ex, ok := e.Execution(c.ExecID); ok {
		if ex.delegCtx != nil {
			ctx = ex.delegCtx
		}
		token = ex.req.Token
	}
	resp, derr := d.Delegate(ctx, DelegateRequest{
		User:       c.User,
		Token:      token,
		Flow:       body,
		Hint:       resourceHint(&body),
		ParentExec: c.ExecID,
		ParentNode: c.NodeID,
	})
	if derr != nil {
		if errors.Is(derr, ErrDelegateLocal) {
			return "", nil, false
		}
		return "", derr, true
	}
	if resp.Err != nil {
		return resp.RemoteID, fmt.Errorf("matrix: procedure %s (%s): %w", name, resp.RemoteID, resp.Err), true
	}
	return resp.RemoteID, nil, true
}
