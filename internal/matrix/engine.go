package matrix

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/obs"
	"datagridflow/internal/provenance"
	"datagridflow/internal/sim"
	"datagridflow/internal/store"
	"datagridflow/internal/vdata"
)

// OpContext is handed to operation handlers: the resolved (interpolated)
// parameters, the variable scope, identity and infrastructure handles.
type OpContext struct {
	// Engine executing the step.
	Engine *Engine
	// Grid is the DGMS the engine fronts.
	Grid *dgms.Grid
	// User is the submitting grid user (operations run as this user).
	User string
	// Params are the step's parameters after $variable interpolation.
	Params map[string]string
	// Raw holds the parameters before interpolation. Handlers that accept
	// expression-valued parameters (setVariable's "expr") must read them
	// here: the expression evaluator resolves $variables itself, and
	// pre-interpolating would corrupt string-valued variables.
	Raw map[string]string
	// Scope is the live variable environment (handlers may Set results).
	Scope *Scope
	// ExecID and NodeID locate the step for provenance.
	ExecID, NodeID string
	// Cancel is closed when the execution is cancelled (or passivated,
	// which unwinds through cancellation). Blocking handlers — the
	// real-clock sleep above all — select on it to return promptly
	// with ErrCancelled instead of pinning a goroutine for the wait.
	Cancel <-chan struct{}
}

// Param returns a required parameter or an error naming it.
func (c *OpContext) Param(name string) (string, error) {
	v, ok := c.Params[name]
	if !ok || v == "" {
		return "", fmt.Errorf("matrix: operation missing parameter %q", name)
	}
	return v, nil
}

// ParamOr returns an optional parameter with a default.
func (c *OpContext) ParamOr(name, def string) string {
	if v, ok := c.Params[name]; ok && v != "" {
		return v
	}
	return def
}

// OpHandler executes one operation type.
type OpHandler func(*OpContext) error

// Config tunes an Engine.
type Config struct {
	// MaxParallel bounds concurrently running children of parallel flows
	// (per flow). Default 16.
	MaxParallel int
	// MaxLoopIterations guards against runaway while loops. Default 1e6.
	MaxLoopIterations int
	// IDPrefix is prepended to execution ids ("matrixA:dgf-000001"),
	// letting peers in a datagridflow network route status queries to
	// the server that owns an execution.
	IDPrefix string
}

// Engine is the DfMS server core: it services DGL requests against one
// grid, synchronously or asynchronously, and tracks every execution.
type Engine struct {
	grid *dgms.Grid
	cfg  Config

	nextExec atomic.Int64

	mu       sync.RWMutex
	execs    map[string]*Execution
	handlers map[string]OpHandler
	procs    map[string]Procedure
	journal  *Journal
	store    *store.Store
	deleg    Delegator
	// ownCheck, when set (SetOwnershipCheck), vets flow submissions
	// against shard ownership before an execution is created.
	ownCheck func(req *dgl.Request) error
	// governor, when set (SetGovernor), meters per-tenant flow
	// admission and store footprint (docs/TENANCY.md).
	governor FlowGovernor
	// vcat/vremote, when set (SetVdata, SetVdataRemote), memoize pure
	// steps through the virtual-data catalog (docs/VDATA.md).
	vcat    *vdata.Catalog
	vremote VdataRemote
	vlocate VdataLocator
}

// NewEngine creates an engine over the grid with default configuration.
func NewEngine(grid *dgms.Grid) *Engine {
	return NewEngineConfig(grid, Config{})
}

// NewEngineConfig creates an engine with explicit configuration.
func NewEngineConfig(grid *dgms.Grid, cfg Config) *Engine {
	if cfg.MaxParallel <= 0 {
		cfg.MaxParallel = 16
	}
	if cfg.MaxLoopIterations <= 0 {
		cfg.MaxLoopIterations = 1_000_000
	}
	e := &Engine{
		grid:     grid,
		cfg:      cfg,
		execs:    make(map[string]*Execution),
		handlers: make(map[string]OpHandler),
		procs:    make(map[string]Procedure),
	}
	e.registerBuiltins()
	e.registerCallOp()
	return e
}

// Grid returns the engine's DGMS.
func (e *Engine) Grid() *dgms.Grid { return e.grid }

// Clock returns the grid clock the engine stamps states with.
func (e *Engine) Clock() sim.Clock { return e.grid.Clock() }

// Obs returns the grid's observability registry — the sink for the
// engine's metrics and trace spans (see docs/METRICS.md).
func (e *Engine) Obs() *obs.Registry { return e.grid.Obs() }

// SetOwnershipCheck installs a pre-admission hook consulted on every
// flow submission, after validation and before an execution exists.
// The sharding layer uses it to refuse auto-routed flows whose shard
// this engine no longer owns (a drain can race the routing decision);
// the hook must pass pinned ("local") and unrouted submissions so
// triggers and direct engine callers are unaffected. Nil removes it.
func (e *Engine) SetOwnershipCheck(check func(req *dgl.Request) error) {
	e.mu.Lock()
	e.ownCheck = check
	e.mu.Unlock()
}

// RegisterOp adds (or replaces) a handler for an operation type — the
// extension point for domain-specific DGL operations.
func (e *Engine) RegisterOp(typ string, h OpHandler) {
	e.mu.Lock()
	e.handlers[typ] = h
	e.mu.Unlock()
}

// handler looks up the handler for an operation type.
func (e *Engine) handler(typ string) (OpHandler, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	h, ok := e.handlers[typ]
	return h, ok
}

// KnownOps returns the registered operation types as a validation set —
// built-ins plus every RegisterOp extension. Components that validate DGL
// documents destined for this engine (triggers, ILM policies, the wire
// server) pass it to dgl.ValidateFlow.
func (e *Engine) KnownOps() map[string]bool { return e.knownOps() }

// knownOps returns the registered operation types as a validation set.
func (e *Engine) knownOps() map[string]bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make(map[string]bool, len(e.handlers))
	for t := range e.handlers {
		out[t] = true
	}
	return out
}

// Submit services a DGL request. Flow requests validate, then run either
// synchronously (response carries the final status tree) or, when
// req.Async is set, in the background (response carries an
// acknowledgement with the execution id). FlowStatusQuery requests return
// the current status of the identified flow, step or request.
func (e *Engine) Submit(req *dgl.Request) (*dgl.Response, error) {
	if req.StatusQuery != nil {
		if req.Flow != nil {
			return nil, fmt.Errorf("%w: request has both flow and status query", dgl.ErrInvalid)
		}
		st, err := e.Status(req.StatusQuery.ID, req.StatusQuery.Detail)
		if err != nil {
			return &dgl.Response{Error: dgferr.Encode(err)}, nil
		}
		return &dgl.Response{Status: &st}, nil
	}
	if req.Flow == nil {
		return nil, fmt.Errorf("%w: empty request", dgl.ErrInvalid)
	}
	if req.User.Name == "" {
		return nil, fmt.Errorf("%w: gridUser.name required", dgl.ErrInvalid)
	}
	if err := dgl.ValidateFlow(req.Flow, e.knownOps()); err != nil {
		return nil, err
	}
	e.mu.RLock()
	check := e.ownCheck
	e.mu.RUnlock()
	if check != nil {
		if err := check(req); err != nil {
			return nil, err
		}
	}
	governed, err := e.admitGoverned(req.User.Name)
	if err != nil {
		return nil, err
	}
	exec := e.newExecution(req, nil)
	exec.governed.Store(governed)
	if req.Async {
		go exec.run()
		return &dgl.Response{Ack: &dgl.Ack{
			ID:     exec.ID,
			Status: string(StatePending),
			Valid:  true,
		}}, nil
	}
	exec.run()
	st := exec.Status(true)
	resp := &dgl.Response{Status: &st}
	if err := exec.Err(); err != nil {
		// Encode the error class so wire clients rebuild a typed error
		// (docs/WIRE.md, "Typed errors").
		resp.Error = dgferr.Encode(err)
	}
	return resp, nil
}

// SubmitBatch services N DGL requests in one call, answering each item
// independently: a validation failure in one request becomes that
// item's error response and never aborts its neighbours. The returned
// slice is positional (len(reqs) responses). Batched submission is the
// engine-side half of the wire layer's KindBatch frame — N flows cross
// the network and enter the engine for the price of one round trip.
func (e *Engine) SubmitBatch(reqs []*dgl.Request) []*dgl.Response {
	out := make([]*dgl.Response, len(reqs))
	for i, req := range reqs {
		if req == nil {
			out[i] = &dgl.Response{Error: dgferr.Encode(
				fmt.Errorf("%w: empty batch item", dgl.ErrInvalid))}
			continue
		}
		resp, err := e.Submit(req)
		if err != nil {
			resp = &dgl.Response{Error: dgferr.Encode(err)}
		}
		out[i] = resp
	}
	return out
}

// Start validates and launches a flow asynchronously, returning the
// Execution handle. It is the programmatic twin of an async Submit.
func (e *Engine) Start(user string, flow dgl.Flow) (*Execution, error) {
	req := dgl.NewAsyncRequest(user, "", flow)
	if err := dgl.ValidateFlow(req.Flow, e.knownOps()); err != nil {
		return nil, err
	}
	governed, err := e.admitGoverned(user)
	if err != nil {
		return nil, err
	}
	exec := e.newExecution(req, nil)
	exec.governed.Store(governed)
	go exec.run()
	return exec, nil
}

// Run validates and executes a flow synchronously, returning the
// Execution after it reaches a terminal state.
func (e *Engine) Run(user string, flow dgl.Flow) (*Execution, error) {
	return e.RunContext(context.Background(), user, flow)
}

// RunContext is Run under a context: when ctx is done before the flow
// finishes, the execution is cancelled (it stops at its next
// checkpoint, like Execution.Cancel) and RunContext returns it once
// terminal, with Err reporting ErrCancelled. Validation errors are
// returned directly.
func (e *Engine) RunContext(ctx context.Context, user string, flow dgl.Flow) (*Execution, error) {
	req := dgl.NewRequest(user, "", flow)
	if err := dgl.ValidateFlow(req.Flow, e.knownOps()); err != nil {
		return nil, err
	}
	governed, err := e.admitGoverned(user)
	if err != nil {
		return nil, err
	}
	exec := e.newExecution(req, nil)
	exec.governed.Store(governed)
	go exec.run()
	select {
	case <-exec.done:
	case <-ctx.Done():
		exec.Cancel()
		<-exec.done
	}
	return exec, nil
}

// Restart re-runs a terminal (failed or cancelled) execution, skipping
// every step that already succeeded — the paper's "started, stopped and
// restarted at any time" requirement. It returns the new execution,
// started asynchronously.
func (e *Engine) Restart(execID string) (*Execution, error) {
	e.mu.RLock()
	prior, ok := e.execs[execID]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: execution %s", ErrNotFound, execID)
	}
	select {
	case <-prior.done:
	default:
		return nil, fmt.Errorf("%w: %s still running", ErrNotRestartable, execID)
	}
	if prior.Err() == nil {
		return nil, fmt.Errorf("%w: %s already succeeded", ErrNotRestartable, execID)
	}
	skip := make(map[string]bool)
	prior.root.collectSucceeded(skip)
	governed, err := e.admitGoverned(prior.req.User.Name)
	if err != nil {
		return nil, err
	}
	// Checkpoint ids are recorded relative to the prior execution id;
	// rewrite them for the new execution in newExecution.
	next := e.newExecution(prior.req, skip)
	next.governed.Store(governed)
	e.Obs().Counter("matrix_flows_restarted_total").Inc()
	go next.run()
	return next, nil
}

// RestartFromProvenance re-runs a request whose prior execution is known
// only through the provenance store — the cross-process variant of
// Restart. After a server crash or planned restart, a new engine (even
// in a new process, with a file-backed provenance store) rebuilds the
// checkpoint set from the prior execution's step.finish/step.skip
// records and resumes, skipping completed steps. This is the paper's
// "provenance information ... at any time even (years) after the
// execution" put to operational use.
//
// The caller supplies the original request document (DGL documents are
// durable artifacts; the engine deliberately does not persist them).
func (e *Engine) RestartFromProvenance(priorExecID string, req *dgl.Request) (*Execution, error) {
	if req == nil || req.Flow == nil {
		return nil, fmt.Errorf("%w: request with a flow required", dgl.ErrInvalid)
	}
	if err := dgl.ValidateFlow(req.Flow, e.knownOps()); err != nil {
		return nil, err
	}
	skip := make(map[string]bool)
	for _, rec := range e.grid.Provenance().Query(provenance.Filter{FlowID: priorExecID}) {
		switch {
		case rec.Action == "step.finish" && rec.Outcome == provenance.OutcomeOK:
			skip[rec.StepID] = true
		case rec.Action == "step.skip":
			skip[rec.StepID] = true
		}
	}
	if len(skip) == 0 {
		// Nothing recorded: still a valid (full) re-run, but flag a
		// missing prior id loudly since it usually means a typo.
		if e.grid.Provenance().Count(provenance.Filter{FlowID: priorExecID}) == 0 {
			return nil, fmt.Errorf("%w: no provenance for execution %s", ErrNotFound, priorExecID)
		}
	}
	governed, err := e.admitGoverned(req.User.Name)
	if err != nil {
		return nil, err
	}
	next := e.newExecution(req, skip)
	next.governed.Store(governed)
	e.Obs().Counter("matrix_flows_restarted_total").Inc()
	go next.run()
	return next, nil
}

// Execution returns a tracked execution by id.
func (e *Engine) Execution(id string) (*Execution, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ex, ok := e.execs[id]
	return ex, ok
}

// Executions lists tracked execution ids, sorted.
func (e *Engine) Executions() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.execs))
	for id := range e.execs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ExecutionSummary is one row of a server-side execution listing.
type ExecutionSummary struct {
	ID    string
	Name  string
	State State
	User  string
}

// ListExecutions summarizes every tracked execution, sorted by id.
func (e *Engine) ListExecutions() []ExecutionSummary {
	e.mu.RLock()
	execs := make([]*Execution, 0, len(e.execs))
	for _, ex := range e.execs {
		execs = append(execs, ex)
	}
	e.mu.RUnlock()
	out := make([]ExecutionSummary, 0, len(execs))
	for _, ex := range execs {
		st := ex.Status(false)
		out = append(out, ExecutionSummary{
			ID: ex.ID, Name: ex.req.Flow.Name, State: State(st.State), User: ex.req.User.Name,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Prune forgets terminal executions, keeping at most `keep` of the most
// recent ones (by id order, which is creation order). A long-running
// DfMS server calls this periodically so completed flows do not
// accumulate without bound — their durable record lives in provenance,
// not in engine memory. It returns the number of executions dropped.
// Running or paused executions are never pruned.
func (e *Engine) Prune(keep int) int {
	if keep < 0 {
		keep = 0
	}
	e.mu.Lock()
	var terminal []string
	for id, ex := range e.execs {
		select {
		case <-ex.done:
			terminal = append(terminal, id)
		default:
		}
	}
	sort.Strings(terminal)
	if len(terminal) <= keep {
		e.mu.Unlock()
		return 0
	}
	drop := terminal[:len(terminal)-keep]
	for _, id := range drop {
		delete(e.execs, id)
	}
	st := e.store
	n := len(e.execs)
	e.mu.Unlock()
	if st != nil {
		// Tombstone each pruned id so compaction reclaims its records
		// and recovery can never resurrect it — without this, pruned
		// flows would live on disk forever (and a torn exec.end line
		// could even bring one back).
		for _, id := range drop {
			_ = e.storeAppend(journalRecord{Type: journalExecPrune, ID: id})
		}
		e.Obs().Gauge("store_resident").Set(int64(n))
	}
	return len(drop)
}

// Status resolves an id — an execution id or any node id within one — to
// a status snapshot. This is the "query the status of any task in the
// workflow at any level of granularity" API.
func (e *Engine) Status(id string, detail bool) (dgl.FlowStatus, error) {
	execID := id
	if i := indexByte(id, '/'); i >= 0 {
		execID = id[:i]
	}
	e.mu.RLock()
	exec, ok := e.execs[execID]
	e.mu.RUnlock()
	if !ok {
		// The execution may be passivated in the flow-state store:
		// status queries are a resurrection path (docs/STORE.md).
		resurrected, err := e.ResurrectFor(execID, "status")
		if err != nil {
			return dgl.FlowStatus{}, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		exec = resurrected
	}
	if execID == id {
		return exec.Status(detail), nil
	}
	return exec.StatusOf(id, detail)
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// newExecution registers a fresh execution for req. skip carries
// checkpoint ids from a prior run (already rebased to generic node
// paths).
func (e *Engine) newExecution(req *dgl.Request, skip map[string]bool) *Execution {
	id := fmt.Sprintf("%sdgf-%06d", e.cfg.IDPrefix, e.nextExec.Add(1))
	rebased := make(map[string]bool, len(skip))
	for k := range skip {
		// Stored ids look like "dgf-000001/root/step"; keep only the
		// node path so they match the new execution's ids.
		if i := indexByte(k, '/'); i >= 0 {
			rebased[k[i:]] = true
		}
	}
	exec := &Execution{
		ID:     id,
		engine: e,
		req:    req,
		ctrl:   newControl(),
		scope:  NewScope(nil),
		skip:   rebased,
		done:   make(chan struct{}),
	}
	exec.delegCtx, exec.delegCancel = context.WithCancel(context.Background())
	exec.lastActive.Store(e.Clock().Now().UnixNano())
	exec.root = &node{
		id:    id + "/" + req.Flow.Name,
		name:  req.Flow.Name,
		kind:  "flow",
		state: StatePending,
	}
	e.mu.Lock()
	e.execs[id] = exec
	n := len(e.execs)
	st := e.store
	e.mu.Unlock()
	if st != nil {
		e.Obs().Gauge("store_resident").Set(int64(n))
	}
	return exec
}

// record writes an engine provenance record.
func (e *Engine) record(r provenance.Record) {
	r.Time = e.grid.Clock().Now()
	_, _ = e.grid.Provenance().Append(r)
}
