// Package matrix implements the DfMS server — the paper's SRB Matrix
// analog and the core contribution of the reproduction. It executes DGL
// flows against a DGMS grid with:
//
//   - the five control patterns (sequential, parallel, while, forEach,
//     switch) interpreted recursively over nested flows;
//   - per-flow variable scopes with shadowing;
//   - user-defined ECA rules, including beforeEntry/afterExit hooks;
//   - start / stop (cancel) / pause / resume / restart of long-run
//     executions, with restart skipping already-succeeded steps;
//   - unique, hierarchical status identifiers queryable at any
//     granularity, synchronously or asynchronously;
//   - provenance records for every flow and step transition; and
//   - an extensible operation registry (domain-specific DGL extensions).
package matrix

import (
	"sync"

	"datagridflow/internal/dgl"
	"datagridflow/internal/expr"
)

// Scope is one level of the DGL variable environment. Each flow (and each
// loop iteration) pushes a scope; lookups walk outward, assignments bind
// in the nearest scope that already declares the name, or the local scope
// otherwise. Scopes are safe for the concurrent access parallel flows
// perform.
type Scope struct {
	mu     sync.RWMutex
	vars   map[string]expr.Value
	parent *Scope
}

// NewScope returns a scope with the given parent (nil for a root scope).
func NewScope(parent *Scope) *Scope {
	return &Scope{vars: make(map[string]expr.Value), parent: parent}
}

// Declare binds name in this scope, shadowing any outer binding.
func (s *Scope) Declare(name string, v expr.Value) {
	s.mu.Lock()
	s.vars[name] = v
	s.mu.Unlock()
}

// Lookup implements expr.Env by walking the scope chain.
func (s *Scope) Lookup(name string) (expr.Value, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		cur.mu.RLock()
		v, ok := cur.vars[name]
		cur.mu.RUnlock()
		if ok {
			return v, true
		}
	}
	return expr.Null, false
}

// Set assigns name in the nearest scope that declares it; if none does,
// the name is declared locally. This gives while-loop counters the
// natural semantics: the loop body updates the flow-level variable rather
// than creating a fresh one per iteration.
func (s *Scope) Set(name string, v expr.Value) {
	for cur := s; cur != nil; cur = cur.parent {
		cur.mu.Lock()
		if _, ok := cur.vars[name]; ok {
			cur.vars[name] = v
			cur.mu.Unlock()
			return
		}
		cur.mu.Unlock()
	}
	s.Declare(name, v)
}

// Depth returns how many scopes the chain holds, this one included —
// the nesting level of the flow (or loop iteration) that owns it.
func (s *Scope) Depth() int {
	d := 0
	for cur := s; cur != nil; cur = cur.parent {
		d++
	}
	return d
}

// Snapshot returns a flat copy of the visible bindings (inner shadowing
// outer), for status display and debugging.
func (s *Scope) Snapshot() map[string]string {
	out := make(map[string]string)
	var chain []*Scope
	for cur := s; cur != nil; cur = cur.parent {
		chain = append(chain, cur)
	}
	// Outermost first so inner bindings overwrite.
	for i := len(chain) - 1; i >= 0; i-- {
		chain[i].mu.RLock()
		for k, v := range chain[i].vars {
			out[k] = v.AsString()
		}
		chain[i].mu.RUnlock()
	}
	return out
}

// declareAll declares a flow's variable block, interpolating each value
// against the enclosing environment so declarations can reference outer
// variables.
func (s *Scope) declareAll(vars []dgl.Variable) error {
	for _, v := range vars {
		val, err := expr.Interpolate(v.Value, s)
		if err != nil {
			return err
		}
		s.Declare(v.Name, expr.String(val))
	}
	return nil
}
