package matrix

// vdata.go is the engine half of the virtual-data plane (internal/vdata,
// docs/VDATA.md): a pure step's derivation identity is resolved once,
// before execution; a catalog hit grafts the memoized result and skips
// the work, a miss executes and publishes. The catalog and the optional
// fleet-wide lookup hook attach like the other engine extensions
// (journal, store, delegator) — a bare engine is unchanged.

import (
	"datagridflow/internal/dgl"
	"datagridflow/internal/expr"
	"datagridflow/internal/provenance"
	"datagridflow/internal/tenant"
	"datagridflow/internal/vdata"
)

// VdataRemote resolves a derivation key fleet-wide — the wire layer
// installs a hook that asks the peer the lookup registry names as the
// holder (wire 1.8, docs/WIRE.md). It is consulted only on a local
// miss and must be safe for concurrent use.
type VdataRemote func(tenantID, key string) (vdata.Entry, bool)

// SetVdata attaches (or, with nil, detaches) the virtual-data catalog.
// Pure steps of executions started afterwards memoize through it.
func (e *Engine) SetVdata(c *vdata.Catalog) {
	e.mu.Lock()
	e.vcat = c
	e.mu.Unlock()
}

// Vdata returns the attached catalog, or nil.
func (e *Engine) Vdata() *vdata.Catalog {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.vcat
}

// SetVdataRemote installs (or, with nil, removes) the fleet-wide
// derivation lookup hook, consulted when the local catalog misses.
func (e *Engine) SetVdataRemote(fn VdataRemote) {
	e.mu.Lock()
	e.vremote = fn
	e.mu.Unlock()
}

// VdataLocator names the peer holding a derivation key, without
// fetching the entry — a registry query, not a catalog read. The
// vdata-locality placement policy uses it to route pure subflows to
// their derivation holder (docs/VDATA.md).
type VdataLocator func(key string) (peer string, ok bool)

// SetVdataLocator installs (or, with nil, removes) the holder-location
// hook behind delegation hints.
func (e *Engine) SetVdataLocator(fn VdataLocator) {
	e.mu.Lock()
	e.vlocate = fn
	e.mu.Unlock()
}

func (e *Engine) vdataLocator() VdataLocator {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.vlocate
}

func (e *Engine) vdataHooks() (*vdata.Catalog, VdataRemote) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.vcat, e.vremote
}

// vdataBinding is the derivation identity of one pure step, computed
// once before execution so the key used for the lookup is byte-identical
// to the one used for publication after success.
type vdataBinding struct {
	key     string
	tenant  string
	params  map[string]string
	outputs []string
}

// vdataResolve derives st's binding under the current scope. It returns
// nil when no catalog (or remote hook) is attached or when the step's
// parameters do not interpolate — execution then proceeds normally and
// surfaces the same interpolation error itself.
func (ex *Execution) vdataResolve(st *dgl.Step, scope *Scope) *vdataBinding {
	cat, remote := ex.engine.vdataHooks()
	if cat == nil && remote == nil {
		return nil
	}
	params, err := expr.InterpolateAll(st.Operation.ParamMap(), scope)
	if err != nil {
		return nil
	}
	outs := st.OutputList()
	resources := make([]string, 0, len(outs))
	for _, out := range outs {
		v, err := expr.Interpolate(out, scope)
		if err != nil {
			return nil
		}
		resources = append(resources, v)
	}
	// The declared outputs are the step's resource set in the key tuple:
	// input resources ride in the parameter bindings (the command line
	// names them), and two transformations that bind identically but
	// declare different outputs are different derivations.
	ten := tenant.Canonical(ex.req.User.Name)
	return &vdataBinding{
		key:     vdata.Key(st.Operation.Type, resources, params, ten),
		tenant:  ten,
		params:  params,
		outputs: resources,
	}
}

// vdataPeerHint names the peer already holding a memoized derivation
// for one of f's pure steps — the vdata-locality placement hint. Best
// effort by construction: a step whose parameters do not interpolate
// under the delegating scope simply contributes no hint, and a stale
// hint only costs the fallback to least-loaded.
func (ex *Execution) vdataPeerHint(f *dgl.Flow, scope *Scope) string {
	cat, _ := ex.engine.vdataHooks()
	locate := ex.engine.vdataLocator()
	if cat == nil && locate == nil {
		return ""
	}
	for i := range f.Steps {
		st := &f.Steps[i]
		if !st.Pure {
			continue
		}
		vd := ex.vdataResolve(st, scope)
		if vd == nil {
			continue
		}
		if cat != nil {
			if ent, ok := cat.Lookup(vd.tenant, vd.key); ok && ent.Peer != "" {
				return ent.Peer
			}
		}
		if locate != nil {
			if peer, ok := locate(vd.key); ok && peer != "" {
				return peer
			}
		}
	}
	for i := range f.Flows {
		if h := ex.vdataPeerHint(&f.Flows[i], scope); h != "" {
			return h
		}
	}
	return ""
}

// vdataHit consults the catalog (local, then fleet-wide) for vd's
// derivation. On a hit the step is grafted: its result variable is
// restored from the entry, the node is marked skipped with a vdata.hit
// provenance record, and a step.done journal record (carrying the
// holder peer) checkpoints it for recovery. Returns true when the step
// was skipped.
func (ex *Execution) vdataHit(vd *vdataBinding, st *dgl.Step, n *node, scope *Scope) bool {
	cat, remote := ex.engine.vdataHooks()
	o := ex.engine.Obs()
	var ent vdata.Entry
	var ok, remoteHit bool
	if cat != nil {
		ent, ok = cat.Lookup(vd.tenant, vd.key)
	}
	if !ok && remote != nil {
		if ent, ok = remote(vd.tenant, vd.key); ok {
			remoteHit = true
			if cat != nil {
				// Graft the remote derivation locally: the next lookup —
				// here or from a peer asking this node — hits without a
				// network trip, and the origin peer rides along.
				_ = cat.Publish(ent)
			}
		}
	}
	if !ok {
		o.Counter("vdata_misses_total").Inc()
		return false
	}
	if v := vd.params["resultVar"]; v != "" && ent.Result != "" {
		scope.Set(v, expr.String(ent.Result))
	}
	n.setState(StateSkipped, ex.now())
	o.Counter("vdata_hits_total").Inc()
	o.Counter("scheduler_virtual_data_hits_total").Inc()
	if remoteHit {
		o.Counter("vdata_remote_hits_total").Inc()
	}
	ex.engine.record(provenance.Record{
		Actor: ex.req.User.Name, Action: "vdata.hit",
		FlowID: ex.ID, StepID: n.id, Target: st.Name,
		Outcome: provenance.OutcomeSkipped,
		Detail:  map[string]string{"key": vd.key, "peer": ent.Peer},
	})
	ex.engine.journalAppend(journalRecord{
		Type: journalStepDone, ID: ex.ID, Node: ex.relID(n.id), Peer: ent.Peer,
	})
	ex.noteProgress()
	return true
}

// vdataPublish memoizes a pure step's completed derivation: the result
// variable's value (when the step declares one) and the binding computed
// before execution, durably when the catalog has a log.
func (ex *Execution) vdataPublish(vd *vdataBinding, st *dgl.Step, n *node, scope *Scope) {
	cat, _ := ex.engine.vdataHooks()
	if cat == nil {
		return
	}
	var result string
	if v := vd.params["resultVar"]; v != "" {
		if val, ok := scope.Lookup(v); ok {
			result = val.AsString()
		}
	}
	ent := vdata.Entry{
		Key: vd.key, Tenant: vd.tenant, Op: st.Operation.Type,
		Params: vd.params, Outputs: vd.outputs, Result: result,
		Unix: ex.engine.Clock().Now().Unix(),
	}
	if err := cat.Publish(ent); err != nil {
		ex.engine.Obs().Counter("vdata_publish_errors_total").Inc()
		return
	}
	ex.engine.record(provenance.Record{
		Actor: ex.req.User.Name, Action: "vdata.publish",
		FlowID: ex.ID, StepID: n.id, Target: st.Name,
		Detail: map[string]string{"key": vd.key},
	})
}
