package matrix

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/expr"
	"datagridflow/internal/namespace"
	"datagridflow/internal/provenance"
	"datagridflow/internal/vfs"
)

// newTestEngine builds an engine over a small two-domain grid.
func newTestEngine(t testing.TB) *Engine {
	t.Helper()
	g := dgms.New(dgms.Options{})
	for _, r := range []*vfs.Resource{
		vfs.New("disk1", "sdsc", vfs.Disk, 0),
		vfs.New("disk2", "cern", vfs.Disk, 0),
		vfs.New("tape", "archive", vfs.Archive, 0),
	} {
		if err := g.RegisterResource(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		t.Fatal(err)
	}
	if err := g.Namespace().SetPermission("/grid", "user", namespace.PermWrite); err != nil {
		t.Fatal(err)
	}
	return NewEngine(g)
}

func mustRun(t *testing.T, e *Engine, flow dgl.Flow) *Execution {
	t.Helper()
	ex, err := e.Run("user", flow)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatalf("flow failed: %v\nstatus: %+v", err, ex.Status(true))
	}
	return ex
}

func TestSequentialFlow(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("seq").
		Step("mk", dgl.Op(dgl.OpMakeCollection, map[string]string{"path": "/grid/a"})).
		Step("ingest", dgl.Op(dgl.OpIngest, map[string]string{"path": "/grid/a/f1", "size": "100", "resource": "disk1"})).
		Step("replicate", dgl.Op(dgl.OpReplicate, map[string]string{"path": "/grid/a/f1", "to": "disk2"})).Flow()
	ex := mustRun(t, e, flow)
	reps, err := e.Grid().Namespace().Replicas("/grid/a/f1")
	if err != nil || len(reps) != 2 {
		t.Fatalf("replicas = %v, %v", reps, err)
	}
	st := ex.Status(true)
	if st.State != string(StateSucceeded) || len(st.Children) != 3 {
		t.Errorf("status = %+v", st)
	}
	// Order is preserved: steps started in document order.
	parse := func(s string) time.Time {
		tt, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			t.Fatalf("bad timestamp %q: %v", s, err)
		}
		return tt
	}
	for i := 1; i < len(st.Children); i++ {
		if parse(st.Children[i].Started).Before(parse(st.Children[i-1].Started)) {
			t.Errorf("sequential steps out of order")
		}
	}
}

func TestSequentialAbortsOnFailure(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("abort").
		Step("ok", dgl.Op(dgl.OpNoop, nil)).
		Step("bad", dgl.Op(dgl.OpFail, map[string]string{"message": "kaput"})).
		Step("never", dgl.Op(dgl.OpNoop, nil)).Flow()
	ex, err := e.Run("user", flow)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("want failure, got %v", err)
	}
	st := ex.Status(true)
	if st.State != string(StateFailed) {
		t.Errorf("root state = %s", st.State)
	}
	states := map[string]string{}
	for _, c := range st.Children {
		states[c.Name] = c.State
	}
	if states["ok"] != string(StateSucceeded) || states["bad"] != string(StateFailed) {
		t.Errorf("states = %v", states)
	}
	if _, ran := states["never"]; ran {
		t.Errorf("step after failure was scheduled: %v", states)
	}
}

func TestParallelFlow(t *testing.T) {
	e := newTestEngine(t)
	b := dgl.NewFlow("par").Parallel()
	for i := 0; i < 8; i++ {
		b.Step(fmt.Sprintf("s%d", i), dgl.Op(dgl.OpIngest, map[string]string{
			"path": fmt.Sprintf("/grid/p%d", i), "size": "10", "resource": "disk1",
		}))
	}
	ex := mustRun(t, e, b.Flow())
	st := ex.Status(true)
	if got := st.CountByState()[string(StateSucceeded)]; got != 9 { // 8 steps + root
		t.Errorf("succeeded = %d", got)
	}
	for i := 0; i < 8; i++ {
		if !e.Grid().Namespace().Exists(fmt.Sprintf("/grid/p%d", i)) {
			t.Errorf("p%d missing", i)
		}
	}
}

func TestParallelCollectsAllErrors(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("par").Parallel().
		Step("a", dgl.Op(dgl.OpFail, map[string]string{"message": "first"})).
		Step("b", dgl.Op(dgl.OpNoop, nil)).
		Step("c", dgl.Op(dgl.OpFail, map[string]string{"message": "second"})).Flow()
	ex, err := e.Run("user", flow)
	if err != nil {
		t.Fatal(err)
	}
	werr := ex.Wait()
	if werr == nil || !strings.Contains(werr.Error(), "first") || !strings.Contains(werr.Error(), "second") {
		t.Errorf("joined errors = %v", werr)
	}
	// The healthy sibling still completed (no cancellation of siblings).
	st := ex.Status(true)
	for _, c := range st.Children {
		if c.Name == "b" && c.State != string(StateSucceeded) {
			t.Errorf("sibling b = %s", c.State)
		}
	}
}

func TestWhileLoop(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("loop").
		Var("n", "0").
		SubFlow(dgl.NewFlow("body").
			WhileLoop("$n < 5").
			Step("inc", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "n", "expr": "$n + 1"}))).Flow()
	ex := mustRun(t, e, flow)
	if got := ex.Vars()["n"]; got != "5" {
		t.Errorf("n = %q, want 5", got)
	}
	// 5 iterations visible in the status tree.
	st := ex.Status(true)
	body := st.Children[0]
	if len(body.Children) != 5 {
		t.Errorf("iterations = %d", len(body.Children))
	}
	if !strings.Contains(body.Children[2].ID, "[2]") {
		t.Errorf("iteration id = %q", body.Children[2].ID)
	}
}

func TestWhileLoopGuard(t *testing.T) {
	g := dgms.New(dgms.Options{})
	e := NewEngineConfig(g, Config{MaxLoopIterations: 10})
	flow := dgl.NewFlow("forever").WhileLoop("true").
		Step("spin", dgl.Op(dgl.OpNoop, nil)).Flow()
	ex, err := e.Run(g.Admin(), flow)
	if err != nil {
		t.Fatal(err)
	}
	if werr := ex.Wait(); werr == nil || !strings.Contains(werr.Error(), "exceeded") {
		t.Errorf("guard = %v", werr)
	}
}

func TestForEachInline(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("fe").
		ForEachIn("f", "alpha, beta ,gamma,").
		Step("ingest", dgl.Op(dgl.OpIngest, map[string]string{
			"path": "/grid/$f", "size": "10", "resource": "disk1",
		})).Flow()
	mustRun(t, e, flow)
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if !e.Grid().Namespace().Exists("/grid/" + name) {
			t.Errorf("%s missing", name)
		}
	}
}

func TestForEachTimes(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("rep").
		Var("total", "0").
		SubFlow(dgl.NewFlow("body").Repeat("i", 4).
			Step("add", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "total", "expr": "$total + $i"}))).Flow()
	ex := mustRun(t, e, flow)
	if got := ex.Vars()["total"]; got != "6" { // 0+1+2+3
		t.Errorf("total = %q", got)
	}
}

func TestForEachQuery(t *testing.T) {
	e := newTestEngine(t)
	g := e.Grid()
	for i := 0; i < 6; i++ {
		path := fmt.Sprintf("/grid/q%d", i)
		if err := g.Ingest("user", path, 10, nil, "disk1"); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := g.SetMeta("user", path, "stage", "raw"); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Late binding: the query runs at loop start, selecting the raw files.
	flow := dgl.NewFlow("process").
		ForEachQuery("path", dgl.NSQuery{
			Scope: "/grid", ObjectsOnly: true,
			Conditions: []dgl.QueryCond{{Attr: "stage", Op: "=", Value: "raw"}},
		}).
		Step("mark", dgl.Op(dgl.OpSetMeta, map[string]string{
			"path": "$path", "attr": "stage", "value": "processed",
		})).Flow()
	mustRun(t, e, flow)
	got, _ := g.Namespace().Search(namespace.Query{
		ObjectsOnly: true,
		Conditions:  []namespace.Condition{{Attr: "stage", Op: namespace.OpEq, Value: "processed"}},
	})
	if len(got) != 3 {
		t.Errorf("processed = %d, want 3", len(got))
	}
}

func TestSwitch(t *testing.T) {
	e := newTestEngine(t)
	mk := func(tier string) dgl.Flow {
		return dgl.NewFlow("route").
			Var("tier", tier).
			Var("chose", "").
			SubFlow(dgl.NewFlow("sel").SwitchOn("$tier").
				SubFlow(dgl.NewFlow("hot").Step("h", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "chose", "value": "hot"}))).
				SubFlow(dgl.NewFlow("cold").Step("c", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "chose", "value": "cold"}))).
				SubFlow(dgl.NewFlow("default").Step("d", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "chose", "value": "default"})))).Flow()
	}
	ex := mustRun(t, e, mk("hot"))
	if ex.Vars()["chose"] != "hot" {
		t.Errorf("switch hot chose %q", ex.Vars()["chose"])
	}
	ex = mustRun(t, e, mk("warm"))
	if ex.Vars()["chose"] != "default" {
		t.Errorf("switch default chose %q", ex.Vars()["chose"])
	}
	// Non-selected arms are reported as skipped.
	st := ex.Status(true)
	sel := st.Children[0]
	counts := sel.CountByState()
	if counts[string(StateSkipped)] != 2 {
		t.Errorf("skipped arms = %v", counts)
	}
	// No arm and no default: everything skipped, flow succeeds.
	noDefault := dgl.NewFlow("route").
		Var("tier", "none").
		SubFlow(dgl.NewFlow("sel").SwitchOn("$tier").
			SubFlow(dgl.NewFlow("hot").Step("h", dgl.Op(dgl.OpNoop, nil)))).Flow()
	mustRun(t, e, noDefault)
}

func TestVariableScoping(t *testing.T) {
	e := newTestEngine(t)
	// Inner flow shadows outer variable; outer survives unchanged.
	flow := dgl.NewFlow("outer").
		Var("x", "outer").
		Var("z", "").
		SubFlow(dgl.NewFlow("inner").
			Var("x", "inner").
			Step("set", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "y", "expr": "$x"}))).
		SubFlow(dgl.NewFlow("tail").
			Step("capture", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "z", "expr": "$x"}))).Flow()
	ex := mustRun(t, e, flow)
	vars := ex.Vars()
	if vars["x"] != "outer" || vars["z"] != "outer" {
		t.Errorf("outer scope corrupted: %v", vars)
	}
	// y was set inside the inner scope; since it wasn't declared anywhere,
	// Set declared it in the step's local scope — invisible at root.
	if _, ok := vars["y"]; ok {
		t.Errorf("inner variable leaked to root: %v", vars)
	}
	// Declared-at-root variables are updated through nested scopes.
	flow2 := dgl.NewFlow("outer").
		Var("counter", "0").
		SubFlow(dgl.NewFlow("inner").
			Step("bump", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "counter", "expr": "$counter + 41"}))).Flow()
	ex2 := mustRun(t, e, flow2)
	if ex2.Vars()["counter"] != "41" {
		t.Errorf("counter = %q", ex2.Vars()["counter"])
	}
}

func TestVariableInterpolationInDeclarations(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("f").
		Var("base", "/grid").
		Var("dir", "$base/sub").
		Step("mk", dgl.Op(dgl.OpMakeCollection, map[string]string{"path": "$dir"})).Flow()
	mustRun(t, e, flow)
	if !e.Grid().Namespace().Exists("/grid/sub") {
		t.Errorf("interpolated declaration failed")
	}
}

func TestRulesBeforeEntryAfterExit(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("ruled").
		Var("log", "").
		OnEntry(dgl.Op(dgl.OpSetVariable, map[string]string{"name": "log", "value": "entered"})).
		OnExit(dgl.Op(dgl.OpSetVariable, map[string]string{"name": "log", "expr": "$log + '+exited'"})).
		Step("work", dgl.Op(dgl.OpNoop, nil)).Flow()
	ex := mustRun(t, e, flow)
	if ex.Vars()["log"] != "entered+exited" {
		t.Errorf("rule order: %q", ex.Vars()["log"])
	}
}

func TestRuleConditionSelectsAction(t *testing.T) {
	e := newTestEngine(t)
	// UserDefinedRule as switch: condition evaluates to the action name.
	mk := func(size string) dgl.Flow {
		rule := dgl.Rule{
			Name:      dgl.RuleBeforeEntry,
			Condition: "$size > 1000 && 'big' || 'small'",
			Actions: []dgl.Action{
				{Name: "big", Operation: &dgl.Operation{Type: dgl.OpSetVariable,
					Params: []dgl.Param{{Name: "name", Value: "class"}, {Name: "value", Value: "big"}}}},
				{Name: "small", Operation: &dgl.Operation{Type: dgl.OpSetVariable,
					Params: []dgl.Param{{Name: "name", Value: "class"}, {Name: "value", Value: "small"}}}},
			},
		}
		return dgl.NewFlow("r").Var("size", size).Var("class", "unset").Rule(rule).
			Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	}
	// Note: "cond && 'big' || 'small'" returns booleans in this language,
	// so use explicit string-valued conditions instead.
	ruleStr := dgl.Rule{
		Name:      dgl.RuleBeforeEntry,
		Condition: "coalesce($label, 'none')",
		Actions: []dgl.Action{
			{Name: "alpha", Operation: &dgl.Operation{Type: dgl.OpSetVariable,
				Params: []dgl.Param{{Name: "name", Value: "hit"}, {Name: "value", Value: "alpha"}}}},
			{Name: "none", Operation: &dgl.Operation{Type: dgl.OpSetVariable,
				Params: []dgl.Param{{Name: "name", Value: "hit"}, {Name: "value", Value: "none"}}}},
		},
	}
	flow := dgl.NewFlow("r").Var("label", "alpha").Var("hit", "unset").Rule(ruleStr).
		Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	ex := mustRun(t, e, flow)
	if ex.Vars()["hit"] != "alpha" {
		t.Errorf("rule selected %q", ex.Vars()["hit"])
	}
	// Boolean conditions select "true"/"false" action names.
	_ = mk
	boolRule := dgl.Rule{
		Name:      dgl.RuleBeforeEntry,
		Condition: "$size > 1000",
		Actions: []dgl.Action{
			{Name: "true", Operation: &dgl.Operation{Type: dgl.OpSetVariable,
				Params: []dgl.Param{{Name: "name", Value: "class"}, {Name: "value", Value: "big"}}}},
			{Name: "false", Operation: &dgl.Operation{Type: dgl.OpSetVariable,
				Params: []dgl.Param{{Name: "name", Value: "class"}, {Name: "value", Value: "small"}}}},
		},
	}
	f2 := dgl.NewFlow("r2").Var("size", "2048").Var("class", "unset").Rule(boolRule).
		Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	ex2 := mustRun(t, e, f2)
	if ex2.Vars()["class"] != "big" {
		t.Errorf("bool rule selected %q", ex2.Vars()["class"])
	}
	// No matching action: nothing runs, flow proceeds.
	noMatch := dgl.Rule{Name: dgl.RuleBeforeEntry, Condition: "'zzz'",
		Actions: []dgl.Action{{Name: "aaa", Operation: &dgl.Operation{Type: dgl.OpFail}}}}
	f3 := dgl.NewFlow("r3").Rule(noMatch).Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	mustRun(t, e, f3)
	// Action without operation is legal and does nothing.
	noOp := dgl.Rule{Name: dgl.RuleBeforeEntry, Condition: "'x'",
		Actions: []dgl.Action{{Name: "x"}}}
	f4 := dgl.NewFlow("r4").Rule(noOp).Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	mustRun(t, e, f4)
}

func TestStepRetryPolicy(t *testing.T) {
	e := newTestEngine(t)
	// A handler that fails twice then succeeds.
	var mu sync.Mutex
	calls := 0
	e.RegisterOp("flaky", func(c *OpContext) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	flow := dgl.NewFlow("retry").
		StepWith(dgl.Step{Name: "s", OnError: dgl.OnErrorRetry, Retries: 5,
			Operation: dgl.Operation{Type: "flaky"}}).Flow()
	mustRun(t, e, flow)
	if calls != 3 {
		t.Errorf("calls = %d", calls)
	}
	// Retry exhaustion fails the step.
	calls = -100 // never succeeds within retries
	ex, err := e.Run("user", dgl.NewFlow("retry2").
		StepWith(dgl.Step{Name: "s", OnError: dgl.OnErrorRetry, Retries: 2,
			Operation: dgl.Operation{Type: "flaky"}}).Flow())
	if err != nil {
		t.Fatal(err)
	}
	if ex.Wait() == nil {
		t.Errorf("exhausted retries should fail")
	}
	// Retry provenance recorded.
	n := e.Grid().Provenance().Count(provenance.Filter{Action: "step.retry"})
	if n == 0 {
		t.Errorf("no retry provenance")
	}
}

func TestStepContinuePolicy(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("cont").
		StepWith(dgl.Step{Name: "bad", OnError: dgl.OnErrorContinue,
			Operation: dgl.Operation{Type: dgl.OpFail}}).
		Step("after", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "reached", "value": "yes"})).Flow()
	ex := mustRun(t, e, flow)
	if ex.Vars()["reached"] != "yes" {
		t.Errorf("continue policy did not continue")
	}
	st := ex.Status(true)
	if st.Children[0].State != string(StateFailed) {
		t.Errorf("failed step not marked: %s", st.Children[0].State)
	}
	if st.State != string(StateSucceeded) {
		t.Errorf("flow state = %s", st.State)
	}
}

func TestStepVariablesAndRules(t *testing.T) {
	e := newTestEngine(t)
	st := dgl.Step{
		Name:      "s",
		Variables: []dgl.Variable{{Name: "local", Value: "42"}},
		Rules: []dgl.Rule{{
			Name: dgl.RuleAfterExit, Condition: "$local == 42",
			Actions: []dgl.Action{{Name: "true", Operation: &dgl.Operation{
				Type:   dgl.OpSetVariable,
				Params: []dgl.Param{{Name: "name", Value: "seen"}, {Name: "value", Value: "yes"}},
			}}},
		}},
		Operation: dgl.Operation{Type: dgl.OpNoop},
	}
	flow := dgl.NewFlow("f").Var("seen", "no").StepWith(st).Flow()
	ex := mustRun(t, e, flow)
	if ex.Vars()["seen"] != "yes" {
		t.Errorf("step rule did not fire: %v", ex.Vars())
	}
}

func TestSubmitSyncAndAsync(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("f").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()

	// Synchronous: response carries the final tree.
	resp, err := e.Submit(dgl.NewRequest("user", "vo", flow))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status == nil || resp.Status.State != string(StateSucceeded) || resp.Error != "" {
		t.Errorf("sync response = %+v", resp)
	}

	// Asynchronous: ack now, status later.
	resp, err = e.Submit(dgl.NewAsyncRequest("user", "vo", flow))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ack == nil || !resp.Ack.Valid || resp.Ack.ID == "" {
		t.Fatalf("async ack = %+v", resp)
	}
	ex, ok := e.Execution(resp.Ack.ID)
	if !ok {
		t.Fatal("execution not tracked")
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	// Poll status through a DGL status request, per Figure 4.
	sreq := dgl.NewStatusRequest("user", resp.Ack.ID, true)
	sresp, err := e.Submit(sreq)
	if err != nil {
		t.Fatal(err)
	}
	if sresp.Status == nil || sresp.Status.State != string(StateSucceeded) {
		t.Errorf("status response = %+v", sresp)
	}
	// Unknown id yields an error response, not a transport error.
	sresp, err = e.Submit(dgl.NewStatusRequest("user", "dgf-999999", false))
	if err != nil || sresp.Error == "" {
		t.Errorf("unknown id: %+v, %v", sresp, err)
	}
	// Sync failure surfaces in the response error.
	bad := dgl.NewFlow("bad").Step("s", dgl.Op(dgl.OpFail, nil)).Flow()
	resp, err = e.Submit(dgl.NewRequest("user", "vo", bad))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" || resp.Status.State != string(StateFailed) {
		t.Errorf("failed sync response = %+v", resp)
	}
}

func TestSubmitValidation(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Submit(&dgl.Request{User: dgl.GridUser{Name: "u"}}); err == nil {
		t.Errorf("empty request accepted")
	}
	flow := dgl.NewFlow("f").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	req := dgl.NewRequest("", "", flow)
	if _, err := e.Submit(req); err == nil {
		t.Errorf("missing user accepted")
	}
	badFlow := dgl.NewFlow("f").Step("s", dgl.Op("nosuch", nil)).Flow()
	if _, err := e.Submit(dgl.NewRequest("u", "", badFlow)); !errors.Is(err, dgl.ErrInvalid) {
		t.Errorf("invalid flow: %v", err)
	}
	both := dgl.NewRequest("u", "", flow)
	both.StatusQuery = &dgl.StatusQuery{ID: "x"}
	if _, err := e.Submit(both); !errors.Is(err, dgl.ErrInvalid) {
		t.Errorf("both choices: %v", err)
	}
}

func TestStatusGranularity(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("root").
		SubFlow(dgl.NewFlow("stage1").
			Step("s1", dgl.Op(dgl.OpNoop, nil)).
			Step("s2", dgl.Op(dgl.OpNoop, nil))).
		SubFlow(dgl.NewFlow("stage2").
			Step("s3", dgl.Op(dgl.OpNoop, nil))).Flow()
	ex := mustRun(t, e, flow)
	// Query an individual step by its hierarchical id.
	stepID := ex.ID + "/root/stage1/s2"
	st, err := e.Status(stepID, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "s2" || st.Kind != "step" || st.State != string(StateSucceeded) {
		t.Errorf("step status = %+v", st)
	}
	// Query a mid-level flow with detail.
	st, err = e.Status(ex.ID+"/root/stage1", true)
	if err != nil || len(st.Children) != 2 {
		t.Errorf("flow status = %+v, %v", st, err)
	}
	// Execution id alone yields the root.
	st, err = e.Status(ex.ID, false)
	if err != nil || st.Name != "root" {
		t.Errorf("root status = %+v, %v", st, err)
	}
	if _, err := e.Status(ex.ID+"/root/nope", false); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing node: %v", err)
	}
	if _, err := e.Status("dgf-404", false); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing exec: %v", err)
	}
	// Executions lists the run.
	found := false
	for _, id := range e.Executions() {
		if id == ex.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("Executions missing %s", ex.ID)
	}
}

func TestPauseResume(t *testing.T) {
	e := newTestEngine(t)
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e.RegisterOp("gate", func(c *OpContext) error {
		once.Do(func() { close(started) })
		<-release
		return nil
	})
	b := dgl.NewFlow("long")
	b.Step("gate", dgl.Op("gate", nil))
	for i := 0; i < 5; i++ {
		b.Step(fmt.Sprintf("s%d", i), dgl.Op(dgl.OpNoop, nil))
	}
	ex, err := e.Start("user", b.Flow())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ex.Pause()
	if !ex.Paused() {
		t.Errorf("not paused")
	}
	close(release) // gate finishes; next checkpoint blocks
	time.Sleep(20 * time.Millisecond)
	st := ex.Status(true)
	if st.CountByState()[string(StateSucceeded)] > 1 {
		t.Errorf("steps ran while paused: %+v", st.CountByState())
	}
	ex.Resume()
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	if ex.Status(true).State != string(StateSucceeded) {
		t.Errorf("final state = %s", ex.Status(true).State)
	}
}

func TestCancel(t *testing.T) {
	e := newTestEngine(t)
	started := make(chan struct{})
	var once sync.Once
	e.RegisterOp("slow", func(c *OpContext) error {
		once.Do(func() { close(started) })
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	b := dgl.NewFlow("long")
	for i := 0; i < 50; i++ {
		b.Step(fmt.Sprintf("s%d", i), dgl.Op("slow", nil))
	}
	ex, err := e.Start("user", b.Flow())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ex.Cancel()
	if werr := ex.Wait(); !errors.Is(werr, ErrCancelled) {
		t.Fatalf("Wait = %v", werr)
	}
	st := ex.Status(true)
	if st.State != string(StateCancelled) {
		t.Errorf("root = %s", st.State)
	}
	if st.CountByState()[string(StateSucceeded)] >= 50 {
		t.Errorf("cancel had no effect")
	}
}

func TestRestartSkipsSucceededSteps(t *testing.T) {
	e := newTestEngine(t)
	var mu sync.Mutex
	runs := map[string]int{}
	failFirst := true
	e.RegisterOp("count", func(c *OpContext) error {
		mu.Lock()
		defer mu.Unlock()
		name := c.Params["tag"]
		runs[name]++
		if name == "s2" && failFirst {
			return errors.New("transient outage")
		}
		return nil
	})
	b := dgl.NewFlow("job")
	for _, s := range []string{"s0", "s1", "s2", "s3"} {
		b.Step(s, dgl.Op("count", map[string]string{"tag": s}))
	}
	flow := b.Flow()
	ex, err := e.Run("user", flow)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Wait() == nil {
		t.Fatal("first run should fail")
	}
	// Fix the outage and restart: s0/s1 skipped, s2 retried, s3 runs.
	mu.Lock()
	failFirst = false
	mu.Unlock()
	ex2, err := e.Restart(ex.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex2.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if runs["s0"] != 1 || runs["s1"] != 1 {
		t.Errorf("succeeded steps re-ran: %v", runs)
	}
	if runs["s2"] != 2 || runs["s3"] != 1 {
		t.Errorf("failed/pending steps not re-run: %v", runs)
	}
	// Skipped steps visible in the new status tree.
	st := ex2.Status(true)
	if st.CountByState()[string(StateSkipped)] != 2 {
		t.Errorf("skip states = %v", st.CountByState())
	}
	// Restart preconditions.
	if _, err := e.Restart("dgf-404"); !errors.Is(err, ErrNotFound) {
		t.Errorf("restart missing: %v", err)
	}
	if _, err := e.Restart(ex2.ID); !errors.Is(err, ErrNotRestartable) {
		t.Errorf("restart succeeded run: %v", err)
	}
}

func TestRestartRunningRejected(t *testing.T) {
	e := newTestEngine(t)
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	e.RegisterOp("hold", func(c *OpContext) error {
		once.Do(func() { close(started) })
		<-release
		return errors.New("always fails")
	})
	ex, err := e.Start("user", dgl.NewFlow("f").Step("s", dgl.Op("hold", nil)).Flow())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := e.Restart(ex.ID); !errors.Is(err, ErrNotRestartable) {
		t.Errorf("restart running: %v", err)
	}
	close(release)
	_ = ex.Wait()
}

func TestProvenanceOfExecution(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("audited").
		Step("a", dgl.Op(dgl.OpNoop, nil)).
		Step("b", dgl.Op(dgl.OpNoop, nil)).Flow()
	ex := mustRun(t, e, flow)
	p := e.Grid().Provenance()
	if n := p.Count(provenance.Filter{FlowID: ex.ID, Action: "step.start"}); n != 2 {
		t.Errorf("step.start records = %d", n)
	}
	if n := p.Count(provenance.Filter{FlowID: ex.ID, Action: "flow.complete"}); n != 1 {
		t.Errorf("flow.complete records = %d", n)
	}
	// Step ids in provenance resolve through the status API.
	recs := p.Query(provenance.Filter{FlowID: ex.ID, Action: "step.finish"})
	for _, r := range recs {
		if _, err := e.Status(r.StepID, false); err != nil {
			t.Errorf("provenance step id %s unresolvable: %v", r.StepID, err)
		}
	}
}

func TestExecOperation(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("compute").
		Step("run", dgl.Op(dgl.OpExec, map[string]string{
			"command": "md5deep", "cpuSeconds": "30", "lane": "sdsc-node1", "resultVar": "out",
		})).Flow()
	start := e.Clock().Now()
	ex := mustRun(t, e, flow)
	if got := e.Clock().Now().Sub(start); got < 30*time.Second {
		t.Errorf("exec did not charge cpu time: %v", got)
	}
	if e.Grid().Meter().Busy("sdsc-node1") != 30*time.Second {
		t.Errorf("lane not charged")
	}
	if ex.Vars()["out"] != "done:md5deep" {
		t.Errorf("resultVar = %q", ex.Vars()["out"])
	}
	// Failure knob.
	bad := dgl.NewFlow("compute").
		Step("run", dgl.Op(dgl.OpExec, map[string]string{"command": "x", "fail": "true"})).Flow()
	ex2, _ := e.Run("user", bad)
	if ex2.Wait() == nil {
		t.Errorf("exec fail=true succeeded")
	}
	// Bad cpuSeconds.
	bad2 := dgl.NewFlow("compute").
		Step("run", dgl.Op(dgl.OpExec, map[string]string{"command": "x", "cpuSeconds": "-1"})).Flow()
	ex3, _ := e.Run("user", bad2)
	if ex3.Wait() == nil {
		t.Errorf("negative cpuSeconds accepted")
	}
}

func TestVerifyOperation(t *testing.T) {
	e := newTestEngine(t)
	g := e.Grid()
	if err := g.Ingest("user", "/grid/v1", 100, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	flow := dgl.NewFlow("fixity").
		Step("verify", dgl.Op(dgl.OpVerify, map[string]string{
			"path": "/grid/v1", "resultVar": "bad",
		})).Flow()
	ex := mustRun(t, e, flow)
	if ex.Vars()["bad"] != "0" {
		t.Errorf("bad = %q", ex.Vars()["bad"])
	}
}

func TestMissingParamErrors(t *testing.T) {
	e := newTestEngine(t)
	cases := []dgl.Operation{
		dgl.Op(dgl.OpIngest, map[string]string{"resource": "disk1"}),  // no path
		dgl.Op(dgl.OpIngest, map[string]string{"path": "/grid/x"}),    // no resource
		dgl.Op(dgl.OpReplicate, map[string]string{"path": "/grid/x"}), // no to
		dgl.Op(dgl.OpMigrate, map[string]string{"path": "/grid/x"}),   // no from/to
		dgl.Op(dgl.OpTrim, map[string]string{"path": "/grid/x"}),      // no resource
		dgl.Op(dgl.OpDelete, nil),                                     // no path
		dgl.Op(dgl.OpVerify, nil),                                     // no path
		dgl.Op(dgl.OpSetMeta, map[string]string{"path": "/grid/x"}),   // no attr
		dgl.Op(dgl.OpMove, map[string]string{"src": "/grid/x"}),       // no dst
		dgl.Op(dgl.OpMakeCollection, nil),                             // no path
		dgl.Op(dgl.OpSetVariable, nil),                                // no name
		dgl.Op(dgl.OpSetVariable, map[string]string{"name": "v"}),     // no value/expr
		dgl.Op(dgl.OpExec, nil),                                       // no command
		dgl.Op(dgl.OpSleep, map[string]string{"duration": "not-a-duration"}),
		dgl.Op(dgl.OpIngest, map[string]string{"path": "/grid/x", "resource": "disk1", "size": "zz"}),
	}
	for i, op := range cases {
		ex, err := e.Run("user", dgl.NewFlow("f").Step("s", op).Flow())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if ex.Wait() == nil {
			t.Errorf("case %d (%s) should fail", i, op.Type)
		}
	}
}

func TestIngestWithInlineData(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("f").
		Step("s", dgl.Op(dgl.OpIngest, map[string]string{
			"path": "/grid/inline", "resource": "disk1", "data": "hello",
		})).Flow()
	mustRun(t, e, flow)
	data, err := e.Grid().Get("user", "", "/grid/inline")
	if err != nil || string(data) != "hello" {
		t.Errorf("inline data = %q, %v", data, err)
	}
}

func TestScope(t *testing.T) {
	root := NewScope(nil)
	root.Declare("a", expr.Int(1))
	child := NewScope(root)
	child.Declare("b", expr.Int(2))
	if v, ok := child.Lookup("a"); !ok || !v.Equal(expr.Int(1)) {
		t.Errorf("chained lookup failed")
	}
	child.Set("a", expr.Int(10)) // updates root's binding
	if v, _ := root.Lookup("a"); !v.Equal(expr.Int(10)) {
		t.Errorf("Set did not reach declaring scope")
	}
	child.Set("fresh", expr.Int(3)) // declares locally
	if _, ok := root.Lookup("fresh"); ok {
		t.Errorf("local declaration leaked")
	}
	snap := child.Snapshot()
	if snap["a"] != "10" || snap["b"] != "2" || snap["fresh"] != "3" {
		t.Errorf("Snapshot = %v", snap)
	}
	// Shadowing shows inner value.
	child.Declare("a", expr.Int(99))
	if child.Snapshot()["a"] != "99" {
		t.Errorf("shadowing broken")
	}
	if root.Snapshot()["a"] != "10" {
		t.Errorf("outer scope affected by shadow")
	}
}

func BenchmarkE3ControlPatterns(b *testing.B) {
	e := newTestEngine(b)
	flow := dgl.NewFlow("mixed").
		Var("n", "0").
		SubFlow(dgl.NewFlow("loop").WhileLoop("$n < 3").
			Step("inc", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "n", "expr": "$n + 1"}))).
		SubFlow(dgl.NewFlow("par").Parallel().
			Step("a", dgl.Op(dgl.OpNoop, nil)).
			Step("b", dgl.Op(dgl.OpNoop, nil))).
		SubFlow(dgl.NewFlow("each").ForEachIn("x", "1,2,3").
			Step("touch", dgl.Op(dgl.OpNoop, nil))).Flow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := e.Run("user", flow)
		if err != nil {
			b.Fatal(err)
		}
		if err := ex.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5StepsPerFlow(b *testing.B) {
	e := newTestEngine(b)
	flowOf := func(n int) dgl.Flow {
		fb := dgl.NewFlow("scale")
		for i := 0; i < n; i++ {
			fb.Step(fmt.Sprintf("s%d", i), dgl.Op(dgl.OpNoop, nil))
		}
		return fb.Flow()
	}
	for _, n := range []int{10, 100, 1000} {
		flow := flowOf(n)
		b.Run(fmt.Sprintf("steps=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ex, err := e.Run("user", flow)
				if err != nil {
					b.Fatal(err)
				}
				if err := ex.Wait(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
