package matrix

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"datagridflow/internal/dgl"
)

// protectProcedure is the canonical stored procedure: replicate a path
// to tape and verify both copies.
func protectProcedure() Procedure {
	return Procedure{
		Name:   "protect",
		Params: []string{"target"},
		Flow: dgl.NewFlow("protect-body").
			Step("replicate", dgl.Op(dgl.OpReplicate, map[string]string{
				"path": "$target", "to": "tape",
			})).
			Step("verify", dgl.Op(dgl.OpVerify, map[string]string{
				"path": "$target",
			})).Flow(),
	}
}

func TestStoredProcedureCall(t *testing.T) {
	e := newTestEngine(t)
	g := e.Grid()
	if err := e.StoreProcedure(protectProcedure()); err != nil {
		t.Fatal(err)
	}
	if got := e.Procedures(); len(got) != 1 || got[0] != "protect" {
		t.Errorf("Procedures = %v", got)
	}
	if err := g.Ingest("user", "/grid/doc", 100, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	// Direct call.
	exec, err := e.CallProcedure("user", "protect", map[string]string{"target": "/grid/doc"})
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Err(); err != nil {
		t.Fatal(err)
	}
	reps, _ := g.Namespace().Replicas("/grid/doc")
	if len(reps) != 2 {
		t.Errorf("replicas = %d", len(reps))
	}
	// Call from within a flow via the "call" op, parameter interpolated
	// from the calling scope, invocation id captured.
	if err := g.Ingest("user", "/grid/doc2", 100, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	flow := dgl.NewFlow("caller").
		Var("f", "/grid/doc2").
		Var("procExec", "").
		Step("invoke", dgl.Op(dgl.OpCall, map[string]string{
			"procedure": "protect", "target": "$f", "resultVar": "procExec",
		})).Flow()
	ex := mustRun(t, e, flow)
	reps, _ = g.Namespace().Replicas("/grid/doc2")
	if len(reps) != 2 {
		t.Errorf("doc2 replicas = %d", len(reps))
	}
	// The invocation id resolves through the status API — stored
	// procedures are first-class executions.
	procID := ex.Vars()["procExec"]
	if !strings.HasPrefix(procID, "dgf-") {
		t.Fatalf("procExec = %q", procID)
	}
	st, err := e.Status(procID, true)
	if err != nil || st.Name != "protect-body" || st.State != string(StateSucceeded) {
		t.Errorf("procedure status = %+v, %v", st, err)
	}
}

func TestStoredProcedureErrors(t *testing.T) {
	e := newTestEngine(t)
	// Validation.
	if err := e.StoreProcedure(Procedure{Name: ""}); !errors.Is(err, dgl.ErrInvalid) {
		t.Errorf("empty name: %v", err)
	}
	bad := Procedure{Name: "p", Flow: dgl.NewFlow("f").Step("s", dgl.Op("nosuch", nil)).Flow()}
	if err := e.StoreProcedure(bad); !errors.Is(err, dgl.ErrInvalid) {
		t.Errorf("invalid body: %v", err)
	}
	dupParam := protectProcedure()
	dupParam.Params = []string{"a", "a"}
	if err := e.StoreProcedure(dupParam); !errors.Is(err, dgl.ErrInvalid) {
		t.Errorf("duplicate params: %v", err)
	}
	emptyParam := protectProcedure()
	emptyParam.Params = []string{""}
	if err := e.StoreProcedure(emptyParam); !errors.Is(err, dgl.ErrInvalid) {
		t.Errorf("empty param: %v", err)
	}
	// Duplicates and drops.
	if err := e.StoreProcedure(protectProcedure()); err != nil {
		t.Fatal(err)
	}
	if err := e.StoreProcedure(protectProcedure()); !errors.Is(err, ErrProcedureExists) {
		t.Errorf("duplicate store: %v", err)
	}
	if err := e.DropProcedure("protect"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropProcedure("protect"); !errors.Is(err, ErrNoProcedure) {
		t.Errorf("double drop: %v", err)
	}
	// Calls.
	if _, err := e.CallProcedure("user", "nope", nil); !errors.Is(err, ErrNoProcedure) {
		t.Errorf("unknown call: %v", err)
	}
	if err := e.StoreProcedure(protectProcedure()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CallProcedure("user", "protect", nil); err == nil {
		t.Errorf("missing required argument accepted")
	}
	// A failing procedure body propagates to the calling step.
	failProc := Procedure{
		Name: "doomed",
		Flow: dgl.NewFlow("body").Step("s", dgl.Op(dgl.OpFail, nil)).Flow(),
	}
	if err := e.StoreProcedure(failProc); err != nil {
		t.Fatal(err)
	}
	flow := dgl.NewFlow("caller").
		Step("invoke", dgl.Op(dgl.OpCall, map[string]string{"procedure": "doomed"})).Flow()
	ex, err := e.Run("user", flow)
	if err != nil {
		t.Fatal(err)
	}
	if werr := ex.Wait(); werr == nil || !strings.Contains(werr.Error(), "doomed") {
		t.Errorf("procedure failure not propagated: %v", werr)
	}
	// Extra call parameters pass through as variables.
	echo := Procedure{
		Name: "echo",
		Flow: dgl.NewFlow("body").
			Step("mk", dgl.Op(dgl.OpMakeCollection, map[string]string{"path": "/grid/$label"})).Flow(),
	}
	if err := e.StoreProcedure(echo); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CallProcedure("user", "echo", map[string]string{"label": "from-proc"}); err != nil {
		t.Fatal(err)
	}
	if !e.Grid().Namespace().Exists("/grid/from-proc") {
		t.Errorf("pass-through parameter lost")
	}
}

func TestStoredProcedureConcurrentCalls(t *testing.T) {
	e := newTestEngine(t)
	proc := Procedure{
		Name:   "mk",
		Params: []string{"n"},
		Flow: dgl.NewFlow("body").
			Step("mk", dgl.Op(dgl.OpMakeCollection, map[string]string{"path": "/grid/c$n"})).Flow(),
	}
	if err := e.StoreProcedure(proc); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			_, err := e.CallProcedure("user", "mk", map[string]string{"n": fmt.Sprint(i)})
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if !e.Grid().Namespace().Exists(fmt.Sprintf("/grid/c%d", i)) {
			t.Errorf("c%d missing", i)
		}
	}
}
