package matrix

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/namespace"
	"datagridflow/internal/sim"
	"datagridflow/internal/store"
	"datagridflow/internal/vfs"
)

// newStoreEngine builds a test engine with a flow-state store attached
// over dir.
func newStoreEngine(t testing.TB, dir string) (*Engine, *store.Store) {
	t.Helper()
	e := newTestEngine(t)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	e.SetStore(st)
	return e, st
}

// blockingOp registers op `name` on e: it counts runs per step and, for
// the step whose "i" parameter matches blockAt, parks on a channel
// until released (or the engine cancels it). It is the scaffolding for
// passivating an execution mid-flow at a known point.
type blockingOp struct {
	mu      sync.Mutex
	runs    map[string]int
	reached chan struct{} // closed when blockAt starts its first run
	release chan struct{}
	once    sync.Once
}

func registerBlockingOp(e *Engine, name, blockAt string) *blockingOp {
	b := &blockingOp{
		runs:    map[string]int{},
		reached: make(chan struct{}),
		release: make(chan struct{}),
	}
	e.RegisterOp(name, func(c *OpContext) error {
		i := c.Params["i"]
		b.mu.Lock()
		b.runs[i]++
		first := b.runs[i] == 1
		b.mu.Unlock()
		if i == blockAt && first {
			b.once.Do(func() { close(b.reached) })
			select {
			case <-b.release:
			case <-c.Cancel:
				return ErrCancelled
			}
		}
		return nil
	})
	return b
}

func (b *blockingOp) count(i string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.runs[i]
}

// startFlow submits flow asynchronously and returns its execution.
func startFlow(t testing.TB, e *Engine, flow dgl.Flow) *Execution {
	t.Helper()
	resp, err := e.Submit(dgl.NewAsyncRequest("user", "", flow))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if resp.Error != "" || resp.Ack == nil {
		t.Fatalf("submit response = %+v", resp)
	}
	ex, ok := e.Execution(resp.Ack.ID)
	if !ok {
		t.Fatalf("no execution for ack %+v", resp.Ack)
	}
	return ex
}

func workFlow(name string, steps int) dgl.Flow {
	fb := dgl.NewFlow(name).Var("v", "init")
	for i := 0; i < steps; i++ {
		fb.Step(fmt.Sprintf("s%d", i), dgl.Op("work", map[string]string{"i": fmt.Sprint(i)}))
	}
	return fb.Flow()
}

// TestPassivateResurrectStatus passivates an execution blocked mid-step
// and resurrects it through the status-query path: same id, completed
// steps skipped, the interrupted step re-run (at-least-once), and the
// flow runs to completion.
func TestPassivateResurrectStatus(t *testing.T) {
	e, st := newStoreEngine(t, t.TempDir())
	b := registerBlockingOp(e, "work", "2")
	ex := startFlow(t, e, workFlow("long-job", 4))
	<-b.reached // s0, s1 done; s2 parked
	id := ex.ID

	if err := e.Passivate(id); err != nil {
		t.Fatalf("passivate: %v", err)
	}
	if _, ok := e.Execution(id); ok {
		t.Fatal("passivated execution still resident")
	}
	ent, ok := st.Entry(id)
	if !ok || !ent.Passivated {
		t.Fatalf("store entry = %+v ok=%v", ent, ok)
	}
	if len(ent.Done) != 2 {
		t.Fatalf("snapshot done = %v, want s0+s1", ent.Done)
	}
	// The run goroutine unwound through cancellation without a terminal
	// record: waiting on the old handle reports the interruption, and
	// the store must NOT consider the flow ended.
	_ = ex.Wait()
	if ent, _ := st.Entry(id); ent.Ended {
		t.Fatal("passivation wrote a terminal record")
	}

	close(b.release)
	// A status query is a resurrection path. The test grid shares
	// obs.Default(), so assert on the counter's delta.
	status0 := e.Obs().Counter("store_resurrections_total", "path", "status").Value()
	if _, err := e.Status(id, false); err != nil {
		t.Fatalf("status of passivated flow: %v", err)
	}
	ex2, ok := e.Execution(id)
	if !ok {
		t.Fatal("resurrection did not register the execution")
	}
	if ex2.ID != id {
		t.Fatalf("resurrected id = %s, want %s", ex2.ID, id)
	}
	if err := ex2.Wait(); err != nil {
		t.Fatalf("resurrected run: %v", err)
	}
	// s0, s1 ran once (then skipped); s2 ran twice (interrupted run +
	// re-run); s3 once.
	for i, want := range map[string]int{"0": 1, "1": 1, "2": 2, "3": 1} {
		if got := b.count(i); got != want {
			t.Errorf("s%s ran %d times, want %d", i, got, want)
		}
	}
	if got := e.Obs().Counter("store_resurrections_total", "path", "status").Value() - status0; got != 1 {
		t.Errorf("store_resurrections_total{path=status} delta = %d", got)
	}
	st2, _ := e.Status(id, true)
	if st2.State != string(StateSucceeded) {
		t.Errorf("final state = %s", st2.State)
	}
}

// TestPassivateResurrectTrigger passivates a paused flow and wakes it
// with the resumeFlow operation — the trigger action. The flow
// resurrects paused, is resumed, and completes.
func TestPassivateResurrectTrigger(t *testing.T) {
	e, st := newStoreEngine(t, t.TempDir())
	b := registerBlockingOp(e, "work", "1")
	ex := startFlow(t, e, workFlow("sleeper", 3))
	<-b.reached
	ex.Pause()
	id := ex.ID
	if err := e.Passivate(id); err != nil {
		t.Fatalf("passivate: %v", err)
	}
	if ent, _ := st.Entry(id); !ent.Paused {
		t.Fatal("paused flag lost in passivation")
	}
	close(b.release)
	trigger0 := e.Obs().Counter("store_resurrections_total", "path", "trigger").Value()

	// A second flow fires the trigger action against the passivated id.
	wake := dgl.NewFlow("wake").
		Step("resume", dgl.Op(dgl.OpResumeFlow, map[string]string{
			"id": id, "resultVar": "woken",
		})).Flow()
	wex := startFlow(t, e, wake)
	if err := wex.Wait(); err != nil {
		t.Fatalf("wake flow: %v", err)
	}
	ex2, ok := e.Execution(id)
	if !ok {
		t.Fatal("trigger did not resurrect the flow")
	}
	if err := ex2.Wait(); err != nil {
		t.Fatalf("resurrected run: %v", err)
	}
	if got := e.Obs().Counter("store_resurrections_total", "path", "trigger").Value() - trigger0; got != 1 {
		t.Errorf("store_resurrections_total{path=trigger} delta = %d", got)
	}
}

// TestResurrectRestoresVariables passivates after a setVariable step
// mutated root-scope state and verifies the resurrected run sees the
// mutated value, not the declaration.
func TestResurrectRestoresVariables(t *testing.T) {
	e, st := newStoreEngine(t, t.TempDir())
	b := registerBlockingOp(e, "work", "0")
	var got string
	var mu sync.Mutex
	e.RegisterOp("observe", func(c *OpContext) error {
		mu.Lock()
		got = c.Params["v"]
		mu.Unlock()
		return nil
	})
	flow := dgl.NewFlow("vars").Var("v", "init").
		Step("set", dgl.Op(dgl.OpSetVariable, map[string]string{"name": "v", "value": "mutated"})).
		Step("block", dgl.Op("work", map[string]string{"i": "0"})).
		Step("observe", dgl.Op("observe", map[string]string{"v": "$v"})).Flow()
	ex := startFlow(t, e, flow)
	<-b.reached
	if err := e.Passivate(ex.ID); err != nil {
		t.Fatal(err)
	}
	ent, _ := st.Entry(ex.ID)
	if ent.Vars["v"] != "mutated" {
		t.Fatalf("snapshot vars = %v", ent.Vars)
	}
	close(b.release)
	ex2, err := e.ResurrectFor(ex.ID, "status")
	if err != nil {
		t.Fatal(err)
	}
	if err := ex2.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got != "mutated" {
		t.Errorf("resurrected run saw v=%q, want mutated", got)
	}
}

// TestPassivateIdle exercises the idle sweep: paused and parked flows
// passivate, terminal flows and flows with delegations in flight do
// not.
func TestPassivateIdle(t *testing.T) {
	e, _ := newStoreEngine(t, t.TempDir())
	b := registerBlockingOp(e, "work", "0")
	idleEx := startFlow(t, e, workFlow("idle", 2))
	<-b.reached
	doneEx := mustRun(t, e, dgl.NewFlow("done").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow())

	if got := e.PassivateIdle(time.Hour); got != 0 {
		t.Fatalf("passivated %d flows under an hour of idleness", got)
	}
	if got := e.PassivateIdle(0); got != 1 {
		t.Fatalf("PassivateIdle(0) = %d, want 1", got)
	}
	if _, ok := e.Execution(idleEx.ID); ok {
		t.Error("idle flow still resident")
	}
	if _, ok := e.Execution(doneEx.ID); !ok {
		t.Error("terminal flow was passivated")
	}
	close(b.release)
	// Resurrect and drain so the goroutine finishes before teardown.
	ex2, err := e.ResurrectFor(idleEx.ID, "status")
	if err != nil {
		t.Fatal(err)
	}
	if err := ex2.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotAllDirtyTracking verifies SnapshotAll only rewrites
// executions that progressed since their last snapshot.
func TestSnapshotAllDirtyTracking(t *testing.T) {
	e, st := newStoreEngine(t, t.TempDir())
	b := registerBlockingOp(e, "work", "2")
	ex := startFlow(t, e, workFlow("snap", 3))
	<-b.reached
	if got := e.SnapshotAll(); got != 1 {
		t.Fatalf("first SnapshotAll = %d, want 1", got)
	}
	if got := e.SnapshotAll(); got != 0 {
		t.Fatalf("second SnapshotAll = %d, want 0 (not dirty)", got)
	}
	ent, _ := st.Entry(ex.ID)
	if len(ent.Done) != 2 {
		t.Fatalf("snapshot done = %v", ent.Done)
	}
	close(b.release)
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	// Terminal executions are skipped outright.
	if got := e.SnapshotAll(); got != 0 {
		t.Fatalf("SnapshotAll after completion = %d", got)
	}
}

// TestRecoverFromStore simulates a crash: engine 1 dies mid-flow with a
// snapshot on disk; engine 2 opens the same store and resumes the run
// under the SAME id, skipping completed steps, and mints non-colliding
// ids for fresh flows.
func TestRecoverFromStore(t *testing.T) {
	dir := t.TempDir()
	e1, st1 := newStoreEngine(t, dir)
	b1 := registerBlockingOp(e1, "work", "2")
	ex := startFlow(t, e1, workFlow("crashy", 4))
	<-b1.reached
	if err := e1.SnapshotExecution(ex.ID); err != nil {
		t.Fatal(err)
	}
	id := ex.ID
	// "Crash": abandon engine 1, close its store handle.
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	close(b1.release)

	e2, _ := newStoreEngine(t, dir)
	b2 := registerBlockingOp(e2, "work", "never")
	resumed, err := e2.RecoverFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 || resumed[0].ID != id {
		t.Fatalf("resumed = %v, want [%s]", resumed, id)
	}
	if err := resumed[0].Wait(); err != nil {
		t.Fatalf("recovered run: %v", err)
	}
	// s0, s1 were snapshot-complete: only s2, s3 re-ran here.
	if b2.count("0") != 0 || b2.count("1") != 0 || b2.count("2") != 1 || b2.count("3") != 1 {
		t.Errorf("recovered runs = %v", b2.runs)
	}
	// Fresh executions never collide with recovered ids.
	fresh := mustRun(t, e2, dgl.NewFlow("fresh").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow())
	if fresh.ID == id {
		t.Fatalf("fresh execution reused recovered id %s", id)
	}
}

// TestRecoverFromStoreLeavesPassivated: a restart must NOT re-inflate
// passivated flows — bounding resident memory is the point of the
// store. They stay on disk and resurrect on demand.
func TestRecoverFromStoreLeavesPassivated(t *testing.T) {
	dir := t.TempDir()
	e1, st1 := newStoreEngine(t, dir)
	b1 := registerBlockingOp(e1, "work", "1")
	ex := startFlow(t, e1, workFlow("dormant", 3))
	<-b1.reached
	if err := e1.Passivate(ex.ID); err != nil {
		t.Fatal(err)
	}
	close(b1.release)
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, _ := newStoreEngine(t, dir)
	b2 := registerBlockingOp(e2, "work", "never")
	resumed, err := e2.RecoverFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 0 {
		t.Fatalf("restart re-inflated %d passivated flows", len(resumed))
	}
	if _, ok := e2.Execution(ex.ID); ok {
		t.Fatal("passivated flow resident after recovery")
	}
	// Still resurrectable on demand.
	ex2, err := e2.ResurrectFor(ex.ID, "status")
	if err != nil {
		t.Fatal(err)
	}
	if err := ex2.Wait(); err != nil {
		t.Fatal(err)
	}
	if b2.count("0") != 0 {
		t.Error("snapshot-complete step re-ran")
	}
}

// TestPruneTombstoneNoResurrection is the prune regression: after
// Prune + Compact + reopen, pruned flows are gone for good — recovery
// does not resume them and no path resurrects them.
func TestPruneTombstoneNoResurrection(t *testing.T) {
	dir := t.TempDir()
	e1, st1 := newStoreEngine(t, dir)
	var ids []string
	for i := 0; i < 3; i++ {
		ex := mustRun(t, e1, dgl.NewFlow(fmt.Sprintf("job-%d", i)).
			Step("s", dgl.Op(dgl.OpNoop, nil)).Flow())
		ids = append(ids, ex.ID)
	}
	if got := e1.Prune(1); got != 2 {
		t.Fatalf("pruned %d, want 2", got)
	}
	for _, id := range ids[:2] {
		ent, ok := st1.Entry(id)
		if !ok || !ent.Pruned {
			t.Fatalf("no tombstone for %s: %+v ok=%v", id, ent, ok)
		}
	}
	if _, err := st1.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, st2 := newStoreEngine(t, dir)
	resumed, err := e2.RecoverFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 0 {
		t.Fatalf("recovery resumed %d pruned/ended flows", len(resumed))
	}
	for _, id := range ids[:2] {
		if _, ok := st2.Entry(id); ok {
			t.Errorf("pruned flow %s survived compaction", id)
		}
		if _, err := e2.Status(id, false); !errors.Is(err, ErrNotFound) {
			t.Errorf("status of pruned flow %s = %v, want ErrNotFound", id, err)
		}
		if _, err := e2.ResurrectFor(id, "status"); !errors.Is(err, ErrNotFound) {
			t.Errorf("resurrect of pruned flow %s = %v, want ErrNotFound", id, err)
		}
	}
}

// TestResurrectErrors pins the failure modes: unknown ids, ended ids
// and a detached store all answer ErrNotFound (or the invalid-config
// error), never a partial resurrection.
func TestResurrectErrors(t *testing.T) {
	e, _ := newStoreEngine(t, t.TempDir())
	if _, err := e.ResurrectFor("dgf-999999", "status"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown id: %v", err)
	}
	ex := mustRun(t, e, dgl.NewFlow("f").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow())
	// Ended flows are resident, so ResurrectFor just returns them...
	if got, err := e.ResurrectFor(ex.ID, "status"); err != nil || got != ex {
		t.Errorf("resident resurrect = %v, %v", got, err)
	}
	// ...but once pruned (tombstoned, non-resident) they are NotFound.
	e.Prune(0)
	if _, err := e.ResurrectFor(ex.ID, "status"); !errors.Is(err, ErrNotFound) {
		t.Errorf("ended id: %v", err)
	}

	bare := newTestEngine(t)
	if err := bare.Passivate("x"); err == nil {
		t.Error("passivate without a store succeeded")
	}
	if _, err := bare.RecoverFromStore(); err == nil {
		t.Error("recovery without a store succeeded")
	}
	if got := bare.PassivateIdle(0); got != 0 {
		t.Errorf("PassivateIdle without store = %d", got)
	}
	if got := bare.SnapshotAll(); got != 0 {
		t.Errorf("SnapshotAll without store = %d", got)
	}
}

// newRealClockEngine builds a test engine on the wall clock — the
// test-engine default is a virtual clock, on which sleeps complete
// instantly and the interruptible-sleep path never engages.
func newRealClockEngine(t testing.TB) *Engine {
	t.Helper()
	g := dgms.New(dgms.Options{Clock: sim.RealClock{}})
	if err := g.RegisterResource(vfs.New("disk1", "sdsc", vfs.Disk, 0)); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		t.Fatal(err)
	}
	if err := g.Namespace().SetPermission("/grid", "user", namespace.PermWrite); err != nil {
		t.Fatal(err)
	}
	return NewEngine(g)
}

// TestInterruptibleSleep: a real-clock sleep unblocks promptly when the
// execution is cancelled — the mechanism that lets Passivate evict a
// flow parked in a long sleep.
func TestInterruptibleSleep(t *testing.T) {
	e := newRealClockEngine(t)
	flow := dgl.NewFlow("sleepy").
		Step("zzz", dgl.Op(dgl.OpSleep, map[string]string{"duration": "1h"})).Flow()
	ex := startFlow(t, e, flow)
	time.Sleep(20 * time.Millisecond) // let it enter the sleep
	start := time.Now()
	ex.Cancel()
	if err := ex.Wait(); err == nil {
		t.Fatal("cancelled sleep succeeded")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancel of a 1h sleep took %v", took)
	}
	st := ex.Status(true)
	if st.State != string(StateCancelled) {
		t.Errorf("state = %s, want cancelled", st.State)
	}
}

// TestPassivateSleepingFlow passivates a flow parked in a long
// real-clock sleep: the sleep interrupts, no terminal record is
// written, and resurrection re-enters the sleep step.
func TestPassivateSleepingFlow(t *testing.T) {
	e := newRealClockEngine(t)
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	e.SetStore(st)
	var mu sync.Mutex
	ran := 0
	e.RegisterOp("after", func(c *OpContext) error {
		mu.Lock()
		ran++
		mu.Unlock()
		return nil
	})
	flow := dgl.NewFlow("nap").
		Step("zzz", dgl.Op(dgl.OpSleep, map[string]string{"duration": "1h"})).
		Step("after", dgl.Op("after", nil)).Flow()
	ex := startFlow(t, e, flow)
	time.Sleep(20 * time.Millisecond)
	if err := e.Passivate(ex.ID); err != nil {
		t.Fatalf("passivate sleeping flow: %v", err)
	}
	_ = ex.Wait()
	ent, _ := st.Entry(ex.ID)
	if ent.Ended || !ent.Passivated {
		t.Fatalf("entry = %+v", ent)
	}
	mu.Lock()
	if ran != 0 {
		t.Fatal("post-sleep step ran")
	}
	mu.Unlock()
}
