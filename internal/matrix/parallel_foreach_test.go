package matrix

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"datagridflow/internal/dgl"
)

func TestForEachParallelRunsConcurrently(t *testing.T) {
	e := newTestEngine(t)
	// A true barrier: every iteration must be in flight simultaneously
	// before any may proceed — impossible under sequential execution.
	const iterations = 6
	var arrived atomic.Int32
	gate := make(chan struct{})
	var once sync.Once
	e.RegisterOp("track", func(c *OpContext) error {
		if arrived.Add(1) == iterations {
			once.Do(func() { close(gate) })
		}
		<-gate
		return nil
	})
	flow := dgl.NewFlow("par-each").
		SubFlow(dgl.NewFlow("body").
			ForEachIn("x", "a,b,c,d,e,f").
			ParallelIterations().
			Step("work", dgl.Op("track", nil))).Flow()
	ex, err := e.Run("user", flow)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	if arrived.Load() != iterations {
		t.Errorf("arrived = %d", arrived.Load())
	}
	// Status tree has one subtree per iteration with ordered ids.
	st := ex.Status(true)
	body := st.Children[0]
	if len(body.Children) != 6 {
		t.Fatalf("iterations = %d", len(body.Children))
	}
	if !strings.Contains(body.Children[3].ID, "[3]") {
		t.Errorf("iteration id = %q", body.Children[3].ID)
	}
}

func TestForEachParallelCollectsErrors(t *testing.T) {
	e := newTestEngine(t)
	e.RegisterOp("failodd", func(c *OpContext) error {
		if c.Params["x"] == "1" || c.Params["x"] == "3" {
			return errors.New("odd failure " + c.Params["x"])
		}
		return nil
	})
	flow := dgl.NewFlow("par-each").
		SubFlow(dgl.NewFlow("body").
			Repeat("i", 5).
			ParallelIterations().
			Step("work", dgl.Op("failodd", map[string]string{"x": "$i"}))).Flow()
	ex, err := e.Run("user", flow)
	if err != nil {
		t.Fatal(err)
	}
	werr := ex.Wait()
	if werr == nil || !strings.Contains(werr.Error(), "odd failure 1") || !strings.Contains(werr.Error(), "odd failure 3") {
		t.Errorf("joined errors = %v", werr)
	}
	st := ex.Status(true)
	body := st.Children[0]
	counts := body.CountByState()
	if counts[string(StateFailed)] < 2 { // 2 failed iterations (+their steps)
		t.Errorf("failed iterations = %v", counts)
	}
	if counts[string(StateSucceeded)] == 0 {
		t.Errorf("healthy iterations did not complete: %v", counts)
	}
}

func TestForEachParallelScopesIsolated(t *testing.T) {
	e := newTestEngine(t)
	// Each iteration writes an object named after its bound variable —
	// concurrent scopes must not bleed into each other.
	flow := dgl.NewFlow("iso").
		SubFlow(dgl.NewFlow("body").
			ForEachIn("name", "p,q,r,s").
			ParallelIterations().
			Step("ingest", dgl.Op(dgl.OpIngest, map[string]string{
				"path": "/grid/$name", "size": "1", "resource": "disk1",
			}))).Flow()
	ex, err := e.Run("user", flow)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"p", "q", "r", "s"} {
		if !e.Grid().Namespace().Exists("/grid/" + name) {
			t.Errorf("iteration %s lost its binding", name)
		}
	}
}

func TestPruneAndList(t *testing.T) {
	e := newTestEngine(t)
	flow := dgl.NewFlow("f").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	var last *Execution
	for i := 0; i < 5; i++ {
		ex, err := e.Run("user", flow)
		if err != nil {
			t.Fatal(err)
		}
		if err := ex.Wait(); err != nil {
			t.Fatal(err)
		}
		last = ex
	}
	rows := e.ListExecutions()
	if len(rows) != 5 || rows[0].Name != "f" || rows[0].State != StateSucceeded || rows[0].User != "user" {
		t.Fatalf("ListExecutions = %+v", rows)
	}
	// A running execution is never pruned.
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	e.RegisterOp("hold", func(*OpContext) error {
		once.Do(func() { close(started) })
		<-gate
		return nil
	})
	running, err := e.Start("user", dgl.NewFlow("long").Step("s", dgl.Op("hold", nil)).Flow())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	dropped := e.Prune(2)
	if dropped != 3 {
		t.Errorf("Prune dropped %d, want 3", dropped)
	}
	ids := e.Executions()
	if len(ids) != 3 { // 2 kept terminal + 1 running
		t.Errorf("after prune: %v", ids)
	}
	if _, ok := e.Execution(running.ID); !ok {
		t.Errorf("running execution pruned")
	}
	// Most recent terminals kept.
	if _, ok := e.Execution(last.ID); !ok {
		t.Errorf("most recent terminal pruned")
	}
	close(gate)
	if err := running.Wait(); err != nil {
		t.Fatal(err)
	}
	// Prune with negative keep clamps to zero.
	if n := e.Prune(-1); n != 3 {
		t.Errorf("final prune dropped %d", n)
	}
	if n := e.Prune(10); n != 0 {
		t.Errorf("prune under budget dropped %d", n)
	}
}
