package provenance

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"datagridflow/internal/sim"
)

func rec(action, flow string, at time.Time) Record {
	return Record{Time: at, Actor: "user", Action: action, FlowID: flow, Target: "/grid/x"}
}

func TestAppendAndSeq(t *testing.T) {
	s := NewMemory()
	for i := 1; i <= 5; i++ {
		seq, err := s.Append(rec("op", "f1", sim.Epoch))
		if err != nil {
			t.Fatal(err)
		}
		if seq != int64(i) {
			t.Errorf("seq = %d, want %d", seq, i)
		}
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
	// Default outcome is ok.
	rs := s.Query(Filter{Outcome: OutcomeOK})
	if len(rs) != 5 {
		t.Errorf("default outcome records = %d", len(rs))
	}
}

func TestQueryFilters(t *testing.T) {
	s := NewMemory()
	t0 := sim.Epoch
	appendOK := func(r Record) {
		t.Helper()
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	appendOK(Record{Time: t0, Actor: "alice", Action: "ingest", Target: "/grid/a/1", FlowID: "f1"})
	appendOK(Record{Time: t0.Add(time.Minute), Actor: "bob", Action: "replicate", Target: "/grid/a/1", FlowID: "f1", StepID: "s2"})
	appendOK(Record{Time: t0.Add(2 * time.Minute), Actor: "alice", Action: "step.start", Target: "/grid/b/2", FlowID: "f2", Outcome: OutcomeOK})
	appendOK(Record{Time: t0.Add(3 * time.Minute), Actor: "alice", Action: "step.finish", Target: "/grid/b/2", FlowID: "f2", Outcome: OutcomeError, Err: "boom"})

	if got := s.Query(Filter{FlowID: "f1"}); len(got) != 2 {
		t.Errorf("FlowID filter: %d", len(got))
	}
	if got := s.Query(Filter{Actor: "bob"}); len(got) != 1 || got[0].Action != "replicate" {
		t.Errorf("Actor filter: %v", got)
	}
	if got := s.Query(Filter{Action: "ingest"}); len(got) != 1 {
		t.Errorf("Action filter: %d", len(got))
	}
	if got := s.Query(Filter{ActionPrefix: "step."}); len(got) != 2 {
		t.Errorf("ActionPrefix filter: %d", len(got))
	}
	if got := s.Query(Filter{TargetPrefix: "/grid/a"}); len(got) != 2 {
		t.Errorf("TargetPrefix filter: %d", len(got))
	}
	if got := s.Query(Filter{Outcome: OutcomeError}); len(got) != 1 || got[0].Err != "boom" {
		t.Errorf("Outcome filter: %v", got)
	}
	if got := s.Query(Filter{Since: t0.Add(time.Minute), Until: t0.Add(3 * time.Minute)}); len(got) != 2 {
		t.Errorf("time window: %d", len(got))
	}
	if got := s.Query(Filter{Limit: 2}); len(got) != 2 {
		t.Errorf("limit: %d", len(got))
	}
	if got := s.Query(Filter{StepID: "s2"}); len(got) != 1 {
		t.Errorf("StepID filter: %d", len(got))
	}
	if n := s.Count(Filter{FlowID: "f2"}); n != 2 {
		t.Errorf("Count = %d", n)
	}
	last, ok := s.Last(Filter{FlowID: "f2"})
	if !ok || last.Action != "step.finish" {
		t.Errorf("Last = %+v, %v", last, ok)
	}
	if _, ok := s.Last(Filter{FlowID: "zzz"}); ok {
		t.Errorf("Last on empty match should report false")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prov.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Append(Record{
			Time: sim.Epoch.Add(time.Duration(i) * time.Hour), Action: "archive",
			FlowID: "ilm-2005", Target: fmt.Sprintf("/grid/obj%d", i),
			Detail: map[string]string{"bytes": "1024"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Record{Action: "late"}); err != ErrClosed {
		t.Errorf("append after close: %v", err)
	}
	if err := s.Flush(); err != ErrClosed {
		t.Errorf("flush after close: %v", err)
	}
	// "Years later": a new process opens the same log and audits the flow.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("reloaded %d records, want 10", s2.Len())
	}
	got := s2.Query(Filter{FlowID: "ilm-2005", TargetPrefix: "/grid/obj"})
	if len(got) != 10 || got[0].Detail["bytes"] != "1024" {
		t.Errorf("reloaded query: %d records", len(got))
	}
	// Sequence numbering continues after reload.
	seq, err := s2.Append(Record{Action: "post-reload"})
	if err != nil || seq != 11 {
		t.Errorf("post-reload seq = %d, %v", seq, err)
	}
	// Double close is fine.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestOpenCorruptLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Errorf("corrupt log accepted")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "nodir", "x.jsonl")); err == nil {
		t.Errorf("unopenable path accepted")
	}
}

func TestFlushMemoryStore(t *testing.T) {
	s := NewMemory()
	if err := s.Flush(); err != nil {
		t.Errorf("Flush on memory store: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close on memory store: %v", err)
	}
	// Reads still work after close.
	if s.Len() != 0 {
		t.Errorf("Len after close")
	}
}

func TestConcurrentAppend(t *testing.T) {
	s := NewMemory()
	var wg sync.WaitGroup
	const n, per = 8, 200
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := s.Append(rec("op", "f", sim.Epoch)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != n*per {
		t.Fatalf("Len = %d, want %d", s.Len(), n*per)
	}
	// All sequence numbers unique and dense.
	seen := make(map[int64]bool)
	for _, r := range s.Query(Filter{}) {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
	for i := int64(1); i <= n*per; i++ {
		if !seen[i] {
			t.Fatalf("missing seq %d", i)
		}
	}
}

// Property: Query(Filter{}) returns records in strictly increasing seq
// order regardless of append interleavings, and Count agrees with Query.
func TestQuickOrdering(t *testing.T) {
	f := func(actions []uint8) bool {
		s := NewMemory()
		for _, a := range actions {
			if _, err := s.Append(Record{Action: fmt.Sprintf("a%d", a%4), Time: sim.Epoch}); err != nil {
				return false
			}
		}
		all := s.Query(Filter{})
		for i := 1; i < len(all); i++ {
			if all[i].Seq <= all[i-1].Seq {
				return false
			}
		}
		return s.Count(Filter{Action: "a1"}) == len(s.Query(Filter{Action: "a1"}))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppendMemory(b *testing.B) {
	s := NewMemory()
	r := rec("op", "f", sim.Epoch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryLargeLog(b *testing.B) {
	s := NewMemory()
	for i := 0; i < 100000; i++ {
		if _, err := s.Append(Record{Action: "op", FlowID: fmt.Sprintf("f%d", i%100), Time: sim.Epoch}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := s.Query(Filter{FlowID: "f42"}); len(got) != 1000 {
			b.Fatalf("got %d", len(got))
		}
	}
}
