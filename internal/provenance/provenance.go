// Package provenance implements the durable audit trail a Datagridflow
// Management System must keep: every DGMS operation and every flow/step
// transition is recorded, and the records can be queried "even (years)
// after the execution" (paper §2.1). Records append to an in-memory index
// and, optionally, to a JSON-lines file that survives process restarts.
package provenance

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Outcome of a recorded operation.
const (
	// OutcomeOK marks a successful operation.
	OutcomeOK = "ok"
	// OutcomeError marks a failed operation.
	OutcomeError = "error"
	// OutcomeSkipped marks an operation elided (e.g. virtual-data hit).
	OutcomeSkipped = "skipped"
)

// Record is one provenance entry.
type Record struct {
	// Seq is assigned by the store; strictly increasing from 1.
	Seq int64 `json:"seq"`
	// Time is the (simulated) instant of the operation.
	Time time.Time `json:"time"`
	// Actor is the grid user or system component that acted.
	Actor string `json:"actor,omitempty"`
	// Action names the operation ("ingest", "replicate", "step.start", ...).
	Action string `json:"action"`
	// Target is the logical path or id acted on.
	Target string `json:"target,omitempty"`
	// FlowID and StepID tie the record to a datagridflow execution.
	FlowID string `json:"flow_id,omitempty"`
	StepID string `json:"step_id,omitempty"`
	// Outcome is OutcomeOK, OutcomeError or OutcomeSkipped.
	Outcome string `json:"outcome"`
	// Err carries the error text when Outcome is OutcomeError.
	Err string `json:"err,omitempty"`
	// Detail holds free-form key/value context (sizes, resources, ...).
	Detail map[string]string `json:"detail,omitempty"`
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("provenance: store closed")

// Store is an append-only provenance log. The zero value is not usable;
// construct with NewMemory or Open.
type Store struct {
	mu      sync.RWMutex
	records []Record
	nextSeq int64
	w       *bufio.Writer // nil for memory-only stores
	f       *os.File
	closed  bool
}

// NewMemory returns a store that keeps records only in memory.
func NewMemory() *Store {
	return &Store{nextSeq: 1}
}

// Open returns a store persisted to the JSON-lines file at path, loading
// any records already present — this is what lets an auditor query flows
// that ran in past processes.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("provenance: open %s: %w", path, err)
	}
	s := &Store{nextSeq: 1, f: f}
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var r Record
		if err := dec.Decode(&r); err != nil {
			if err == io.EOF {
				break
			}
			f.Close()
			return nil, fmt.Errorf("provenance: corrupt log %s: %w", path, err)
		}
		s.records = append(s.records, r)
		if r.Seq >= s.nextSeq {
			s.nextSeq = r.Seq + 1
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	s.w = bufio.NewWriter(f)
	return s, nil
}

// Append records r, assigning and returning its sequence number.
func (s *Store) Append(r Record) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if r.Outcome == "" {
		r.Outcome = OutcomeOK
	}
	r.Seq = s.nextSeq
	s.nextSeq++
	s.records = append(s.records, r)
	if s.w != nil {
		b, err := json.Marshal(r)
		if err != nil {
			return 0, fmt.Errorf("provenance: marshal: %w", err)
		}
		if _, err := s.w.Write(append(b, '\n')); err != nil {
			return 0, fmt.Errorf("provenance: write: %w", err)
		}
	}
	return r.Seq, nil
}

// Flush forces buffered records to the underlying file.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.w != nil {
		return s.w.Flush()
	}
	return nil
}

// Close flushes and closes the backing file (if any). The in-memory index
// stays readable after Close for final reporting, but appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.w != nil {
		if err := s.w.Flush(); err != nil {
			s.f.Close()
			return err
		}
		return s.f.Close()
	}
	return nil
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Filter selects records; zero-value fields match everything.
type Filter struct {
	FlowID       string
	StepID       string
	Actor        string
	Action       string    // exact action name
	ActionPrefix string    // e.g. "step." for all step transitions
	TargetPrefix string    // logical path subtree
	Outcome      string    // OutcomeOK / OutcomeError / OutcomeSkipped
	Since        time.Time // inclusive
	Until        time.Time // exclusive; zero means no bound
	Limit        int       // 0 = unlimited
}

func (f Filter) matches(r Record) bool {
	if f.FlowID != "" && r.FlowID != f.FlowID {
		return false
	}
	if f.StepID != "" && r.StepID != f.StepID {
		return false
	}
	if f.Actor != "" && r.Actor != f.Actor {
		return false
	}
	if f.Action != "" && r.Action != f.Action {
		return false
	}
	if f.ActionPrefix != "" && !strings.HasPrefix(r.Action, f.ActionPrefix) {
		return false
	}
	if f.TargetPrefix != "" && !strings.HasPrefix(r.Target, f.TargetPrefix) {
		return false
	}
	if f.Outcome != "" && r.Outcome != f.Outcome {
		return false
	}
	if !f.Since.IsZero() && r.Time.Before(f.Since) {
		return false
	}
	if !f.Until.IsZero() && !r.Time.Before(f.Until) {
		return false
	}
	return true
}

// Query returns matching records in sequence order.
func (s *Store) Query(f Filter) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, r := range s.records {
		if !f.matches(r) {
			continue
		}
		out = append(out, r)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Count returns the number of records matching f without materializing
// them.
func (s *Store) Count(f Filter) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, r := range s.records {
		if f.matches(r) {
			n++
		}
	}
	return n
}

// Last returns the most recent record matching f, if any.
func (s *Store) Last(f Filter) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := len(s.records) - 1; i >= 0; i-- {
		if f.matches(s.records[i]) {
			return s.records[i], true
		}
	}
	return Record{}, false
}
