// Package codec implements the DGF binary encoding: a compact,
// length-prefixed, field-tagged serialization for lifecycle records and
// wire frame payloads. It replaces encoding/json (and encoding/xml for
// DGL documents) on the hot paths — wire frames, the execution journal
// and store segments — where codec cost, not I/O, bounds throughput.
//
// The format is deliberately small: varint-framed fields identified by
// (field number, wire type) tags, a per-message string table that
// deduplicates repeated keys (flow ids, step names, record types), and
// protobuf-style unknown-field skipping so old decoders read new
// messages. Every payload starts with a 3-byte header — magic 0xDF,
// format version, message type — which is also how mixed JSON/binary
// streams are told apart: JSON and XML payloads never start with 0xDF.
//
// The byte-level specification, including a worked hex dump, lives in
// docs/CODEC.md. Wire negotiation (protocol 1.4) is in docs/WIRE.md;
// segment-encoding sniffing is in docs/STORE.md.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Magic is the first byte of every binary payload and frame. It is
// outside the ASCII range, so JSON ('{') and XML ('<') payloads are
// distinguishable by their first byte alone.
const Magic byte = 0xDF

// Version is the format version carried in every header. Decoders
// reject versions they do not know; field additions do NOT bump it
// (unknown fields are skipped), only incompatible layout changes do.
const Version byte = 1

// Message types. The header's third byte names the payload's schema so
// a decoder never applies the wrong field table.
const (
	// MsgRecord is a lifecycle Record (journal and store segments).
	MsgRecord byte = 1
	// MsgRequest is a dgl.Request (KindDGL frames).
	MsgRequest byte = 2
	// MsgResponse is a dgl.Response (KindDGL replies).
	MsgResponse byte = 3
	// MsgControl is a wire.Control (KindControl frames).
	MsgControl byte = 4
	// MsgControlResult is a wire.ControlResult (KindControl replies).
	MsgControlResult byte = 5
	// MsgBatch is a wire.Batch envelope (KindBatch frames).
	MsgBatch byte = 6
	// MsgBatchResult is a wire.BatchResult envelope (KindBatch replies).
	MsgBatchResult byte = 7
	// MsgDelegate is a wire.Delegate envelope (KindDelegate frames).
	MsgDelegate byte = 8
	// MsgDelegateResult is a wire.DelegateResult (KindDelegate replies).
	MsgDelegateResult byte = 9
	// MsgReplicate is a wire.Replicate envelope (KindReplicate frames).
	MsgReplicate byte = 10
	// MsgReplicateResult is a wire.ReplicateResult (KindReplicate
	// replies).
	MsgReplicateResult byte = 11
)

// Wire types, the low two bits of every field tag.
const (
	wtVarint byte = 0 // unsigned varint (bools are 0/1, times are zigzag)
	wtBytes  byte = 1 // uvarint length + raw bytes
	wtMsg    byte = 2 // uvarint length + nested fields (shares the string table)
	wtSym    byte = 3 // string-table entry: 0 = inline definition, n = reference
)

// ErrNotBinary reports a payload that does not start with Magic; the
// caller should fall back to the legacy (JSON/XML) decoder.
var ErrNotBinary = errors.New("codec: not a binary payload")

// ErrTorn reports a truncated trailing frame in a byte stream — the
// signature of a crash mid-write, repairable by truncating at the frame
// start (see FrameScanner.Offset).
var ErrTorn = errors.New("codec: torn trailing frame")

// IsBinary reports whether a payload or file begins with the binary
// header. One byte is enough: legacy JSON payloads start with '{' and
// DGL documents with '<'.
func IsBinary(b []byte) bool {
	return len(b) > 0 && b[0] == Magic
}

// headerLen is magic + version + message type.
const headerLen = 3

// An Encoder builds binary payloads into a reusable buffer. Encoders
// are not safe for concurrent use; pool them with GetEncoder/PutEncoder
// on hot paths. One Encoder may hold several payloads back to back
// (each Begin/BeginFrame appends a fresh header and resets the string
// table); Bytes returns everything written since the last Reset.
type Encoder struct {
	buf  []byte
	syms map[string]uint32
}

// Reset drops all buffered payloads, keeping capacity.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	clear(e.syms)
}

// Bytes returns the encoded payload(s). The slice aliases the encoder's
// buffer: it is valid until the next Reset, Begin or PutEncoder.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes buffered so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Begin starts a payload: header first, fields next. The string table
// is per payload, so Begin clears it.
func (e *Encoder) Begin(msgType byte) {
	e.buf = append(e.buf, Magic, Version, msgType)
	if e.syms == nil {
		e.syms = make(map[string]uint32, 16)
	} else {
		clear(e.syms)
	}
}

// BeginFrame starts a self-delimiting frame for append-only streams
// (store segments, the journal): header, then a uvarint body length
// that EndFrame patches in. The returned mark must be passed to the
// matching EndFrame.
func (e *Encoder) BeginFrame(msgType byte) int {
	e.Begin(msgType)
	return e.reserve()
}

// EndFrame closes a frame started with BeginFrame.
func (e *Encoder) EndFrame(mark int) { e.patch(mark) }

func (e *Encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *Encoder) tag(num int, wt byte) {
	e.uvarint(uint64(num)<<2 | uint64(wt))
}

// Uint writes an unsigned varint field. Zero is the implied default and
// is omitted.
func (e *Encoder) Uint(num int, v uint64) {
	if v == 0 {
		return
	}
	e.tag(num, wtVarint)
	e.uvarint(v)
}

// Bool writes a boolean field; false is omitted.
func (e *Encoder) Bool(num int, v bool) {
	if v {
		e.tag(num, wtVarint)
		e.uvarint(1)
	}
}

// Int writes a signed (zigzag) varint field. Unlike Uint it writes
// zeros: callers that want presence semantics (Record.Time) guard
// themselves.
func (e *Encoder) Int(num int, v int64) {
	e.tag(num, wtVarint)
	e.buf = binary.AppendVarint(e.buf, v)
}

// Str writes a length-prefixed string field; empty is omitted.
func (e *Encoder) Str(num int, s string) {
	if s == "" {
		return
	}
	e.tag(num, wtBytes)
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob writes a length-prefixed byte field; empty is omitted.
func (e *Encoder) Blob(num int, b []byte) {
	if len(b) == 0 {
		return
	}
	e.tag(num, wtBytes)
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Sym writes a string through the payload's string table: the first
// occurrence is written inline and assigned the next table index, later
// occurrences are one- or two-byte references. Use it for values that
// repeat within a payload (ids, step names, record types); empty is
// omitted.
func (e *Encoder) Sym(num int, s string) {
	if s == "" {
		return
	}
	e.tag(num, wtSym)
	if id, ok := e.syms[s]; ok {
		e.uvarint(uint64(id))
		return
	}
	e.uvarint(0)
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
	e.syms[s] = uint32(len(e.syms)) + 1
}

// Msg writes a nested message field. The nested fields share the
// payload's string table. Repeated fields are written by calling Msg
// (or any field writer) with the same number again.
func (e *Encoder) Msg(num int, fields func(*Encoder)) {
	e.tag(num, wtMsg)
	mark := e.reserve()
	fields(e)
	e.patch(mark)
}

// reserve appends a one-byte length placeholder and returns the index
// just past it (the body start).
func (e *Encoder) reserve() int {
	e.buf = append(e.buf, 0)
	return len(e.buf)
}

// patch back-fills the placeholder at mark-1 with the uvarint length of
// everything written since reserve, shifting the body right when the
// length needs more than one byte (bodies under 128 bytes — the common
// case — cost nothing).
func (e *Encoder) patch(mark int) {
	n := len(e.buf) - mark
	if n < 0x80 {
		e.buf[mark-1] = byte(n)
		return
	}
	var tmp [binary.MaxVarintLen64]byte
	ln := binary.PutUvarint(tmp[:], uint64(n))
	e.buf = append(e.buf, tmp[1:ln]...)
	copy(e.buf[mark-1+ln:], e.buf[mark:mark+n])
	copy(e.buf[mark-1:], tmp[:ln])
}

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a reset Encoder from the package pool.
func GetEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder returns an Encoder to the pool. The caller must not touch
// the encoder (or slices returned by Bytes) afterwards. Oversized
// buffers are dropped rather than pinned in the pool; the threshold
// must clear a full batch envelope (BatchSize requests with
// multi-kilobyte variable sets), or every batch reallocates and
// regrows its envelope from scratch.
func PutEncoder(e *Encoder) {
	if cap(e.buf) > 4<<20 {
		return
	}
	encoderPool.Put(e)
}

// A Decoder iterates the fields of one binary payload. The usual loop:
//
//	d, err := codec.NewDecoder(payload, codec.MsgRecord)
//	for d.Next() {
//		switch d.Field() {
//		case 1:
//			rec.Type = d.Sym()
//		default:
//			d.Skip()
//		}
//	}
//	return d.Err()
//
// Errors are sticky: the first malformed byte stops iteration and every
// later accessor returns the zero value. Decoders are values — nested
// messages decode through a child Decoder sharing the parent's string
// table — and perform no allocation beyond the strings they return.
type Decoder struct {
	data []byte
	// str is the payload copied into one string at NewDecoder time:
	// every Str/Sym result is a zero-allocation slice of it. The copy
	// also makes returned strings safe when data aliases a reused
	// buffer (FrameScanner, pooled encoders). The flip side: one
	// retained string pins the whole payload copy — fine for decoded
	// messages, whose strings are most of the payload anyway.
	str   string
	pos   int
	end   int
	field int
	wt    byte
	err   error
	syms  *[]string
}

// NewDecoder validates the 3-byte header and positions the decoder at
// the first field. A payload that does not start with Magic returns
// ErrNotBinary (fall back to JSON); a wrong version or message type is
// a hard error.
func NewDecoder(payload []byte, msgType byte) (Decoder, error) {
	d, err := NewDecoderTransient(payload, msgType)
	if err != nil {
		return d, err
	}
	d.str = string(payload)
	return d, nil
}

// NewDecoderTransient is NewDecoder without the up-front payload
// string copy: every Str/Sym result is a fresh per-value copy instead
// of a slice of one shared backing string. Use it for envelope
// messages whose bulk is Blob fields (batch frames and the like) —
// there the shared copy would duplicate megabytes of embedded payloads
// to back a handful of short strings.
func NewDecoderTransient(payload []byte, msgType byte) (Decoder, error) {
	if !IsBinary(payload) {
		return Decoder{}, ErrNotBinary
	}
	if len(payload) < headerLen {
		return Decoder{}, fmt.Errorf("codec: truncated header (%d bytes)", len(payload))
	}
	if payload[1] != Version {
		return Decoder{}, fmt.Errorf("codec: unsupported format version %d", payload[1])
	}
	if payload[2] != msgType {
		return Decoder{}, fmt.Errorf("codec: message type %d, want %d", payload[2], msgType)
	}
	syms := make([]string, 0, 16)
	return Decoder{data: payload, pos: headerLen, end: len(payload), syms: &syms}, nil
}

// MsgType reads the message type of a binary payload without decoding
// it, for dispatch on streams that interleave types.
func MsgType(payload []byte) (byte, error) {
	if !IsBinary(payload) {
		return 0, ErrNotBinary
	}
	if len(payload) < headerLen {
		return 0, fmt.Errorf("codec: truncated header (%d bytes)", len(payload))
	}
	return payload[2], nil
}

// Next advances to the next field, returning false at the end of the
// payload or on the first error.
func (d *Decoder) Next() bool {
	if d.err != nil || d.pos >= d.end {
		return false
	}
	v, n := binary.Uvarint(d.data[d.pos:d.end])
	if n <= 0 {
		d.fail("bad field tag")
		return false
	}
	d.pos += n
	d.field = int(v >> 2)
	d.wt = byte(v & 3)
	return true
}

// Field returns the current field number.
func (d *Decoder) Field() int { return d.field }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("codec: %s at offset %d", msg, d.pos)
	}
	d.pos = d.end
}

func (d *Decoder) uvarintVal() uint64 {
	v, n := binary.Uvarint(d.data[d.pos:d.end])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.pos += n
	return v
}

// Uint reads the current field as an unsigned varint.
func (d *Decoder) Uint() uint64 {
	if d.err != nil {
		return 0
	}
	if d.wt != wtVarint {
		d.fail("field is not a varint")
		return 0
	}
	return d.uvarintVal()
}

// Bool reads the current field as a boolean.
func (d *Decoder) Bool() bool { return d.Uint() != 0 }

// Int reads the current field as a signed (zigzag) varint.
func (d *Decoder) Int() int64 {
	if d.err != nil {
		return 0
	}
	if d.wt != wtVarint {
		d.fail("field is not a varint")
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:d.end])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.pos += n
	return v
}

func (d *Decoder) bytesVal() []byte {
	n := d.uvarintVal()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.end-d.pos) {
		d.fail("length beyond payload")
		return nil
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b
}

// strVal is bytesVal returning a slice of the payload string copy — no
// per-string allocation. Under a transient decoder (no shared copy)
// each value is copied individually instead.
func (d *Decoder) strVal() string {
	n := d.uvarintVal()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.end-d.pos) {
		d.fail("length beyond payload")
		return ""
	}
	var s string
	if d.str == "" {
		s = string(d.data[d.pos : d.pos+int(n)])
	} else {
		s = d.str[d.pos : d.pos+int(n)]
	}
	d.pos += int(n)
	return s
}

// Str reads the current field as a string.
func (d *Decoder) Str() string {
	if d.err != nil {
		return ""
	}
	if d.wt != wtBytes {
		d.fail("field is not bytes")
		return ""
	}
	return d.strVal()
}

// Blob reads the current field as raw bytes. The slice aliases the
// payload; copy it to retain past the payload's lifetime.
func (d *Decoder) Blob() []byte {
	if d.err != nil {
		return nil
	}
	if d.wt != wtBytes {
		d.fail("field is not bytes")
		return nil
	}
	return d.bytesVal()
}

// Sym reads the current field through the string table.
func (d *Decoder) Sym() string {
	if d.err != nil {
		return ""
	}
	if d.wt != wtSym {
		d.fail("field is not a symbol")
		return ""
	}
	return d.symVal()
}

func (d *Decoder) symVal() string {
	ref := d.uvarintVal()
	if d.err != nil {
		return ""
	}
	if ref == 0 {
		s := d.strVal()
		if d.err != nil {
			return ""
		}
		*d.syms = append(*d.syms, s)
		return s
	}
	if ref > uint64(len(*d.syms)) {
		d.fail("symbol reference out of range")
		return ""
	}
	return (*d.syms)[ref-1]
}

// Msg decodes the current field as a nested message: fields is called
// with a child decoder scoped to the nested body and sharing the string
// table. Errors in the child propagate to the parent.
func (d *Decoder) Msg(fields func(*Decoder)) {
	if d.err != nil {
		return
	}
	if d.wt != wtMsg {
		d.fail("field is not a message")
		return
	}
	n := d.uvarintVal()
	if d.err != nil {
		return
	}
	if n > uint64(d.end-d.pos) {
		d.fail("message length beyond payload")
		return
	}
	sub := Decoder{data: d.data, str: d.str, pos: d.pos, end: d.pos + int(n), syms: d.syms}
	d.pos += int(n)
	fields(&sub)
	if sub.err != nil {
		d.err = sub.err
		d.pos = d.end
	}
}

// MsgEnter narrows the decoder to the current field's nested message
// and returns the parent's end offset for MsgExit. It is the
// allocation-free form of Msg for hot loops: the caller iterates with
// Next on the same decoder, then restores the parent window:
//
//	end := d.MsgEnter()
//	for d.Next() { ... }
//	d.MsgExit(end)
//
// On error MsgEnter returns the parent end unchanged, so the
// Next/MsgExit sequence is still safe.
func (d *Decoder) MsgEnter() int {
	if d.err != nil {
		return d.end
	}
	if d.wt != wtMsg {
		d.fail("field is not a message")
		return d.end
	}
	n := d.uvarintVal()
	if d.err != nil {
		return d.end
	}
	if n > uint64(d.end-d.pos) {
		d.fail("message length beyond payload")
		return d.end
	}
	parent := d.end
	d.end = d.pos + int(n)
	return parent
}

// MsgExit restores the parent window after MsgEnter. Unread bytes of
// the nested message are skipped (fail() already parks pos at the
// nested end on error, which is <= parent end, so errors propagate
// unharmed).
func (d *Decoder) MsgExit(parentEnd int) {
	if d.pos < d.end {
		d.pos = d.end
	}
	d.end = parentEnd
}

// Skip discards the current field by wire type, so decoders built
// against an older schema read past fields they do not know. A skipped
// symbol still registers its inline definition: later references stay
// valid.
func (d *Decoder) Skip() {
	if d.err != nil {
		return
	}
	switch d.wt {
	case wtVarint:
		d.uvarintVal()
	case wtBytes, wtMsg:
		d.bytesVal()
	case wtSym:
		d.symVal()
	}
}

// A FrameScanner reads self-delimiting frames (BeginFrame/EndFrame
// layout) from an append-only stream: store segments and the journal.
// It distinguishes a clean end of stream (io.EOF), a torn trailing
// frame from a crash mid-write (ErrTorn — truncate at Offset to
// repair), and corruption (any other error).
type FrameScanner struct {
	r     io.Reader
	buf   []byte
	off   int64 // stream offset of the next unread byte
	start int64 // stream offset where the last Next began
}

// NewFrameScanner scans frames from r. Wrap r in a bufio.Reader if it
// is an *os.File; the scanner issues many small reads.
func NewFrameScanner(r io.Reader) *FrameScanner {
	return &FrameScanner{r: r}
}

// Offset returns the stream offset of the frame the last Next call
// attempted — on ErrTorn, the truncation point that repairs the stream.
func (s *FrameScanner) Offset() int64 { return s.start }

// Next reads one frame and returns its payload in Begin (non-frame)
// layout: header then fields, ready for NewDecoder. The payload aliases
// the scanner's buffer and is valid until the next call. io.EOF means a
// clean end; ErrTorn a truncated trailing frame.
func (s *FrameScanner) Next() (msgType byte, payload []byte, err error) {
	s.start = s.off
	var hdr [headerLen]byte
	n, err := io.ReadFull(s.r, hdr[:])
	s.off += int64(n)
	if err == io.EOF {
		return 0, nil, io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		return 0, nil, ErrTorn
	}
	if err != nil {
		return 0, nil, err
	}
	if hdr[0] != Magic {
		return 0, nil, fmt.Errorf("codec: bad frame magic 0x%02x at offset %d", hdr[0], s.start)
	}
	if hdr[1] != Version {
		return 0, nil, fmt.Errorf("codec: unsupported format version %d at offset %d", hdr[1], s.start)
	}
	size, err := s.readUvarint()
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, ErrTorn
		}
		return 0, nil, err
	}
	if size > uint64(16<<20) {
		return 0, nil, fmt.Errorf("codec: frame body %d bytes beyond limit at offset %d", size, s.start)
	}
	need := headerLen + int(size)
	if cap(s.buf) < need {
		s.buf = make([]byte, need)
	}
	s.buf = s.buf[:need]
	copy(s.buf, hdr[:])
	n, err = io.ReadFull(s.r, s.buf[headerLen:])
	s.off += int64(n)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return 0, nil, ErrTorn
	}
	if err != nil {
		return 0, nil, err
	}
	return hdr[2], s.buf, nil
}

// readUvarint reads a uvarint byte by byte, tracking the stream offset.
func (s *FrameScanner) readUvarint() (uint64, error) {
	var v uint64
	var shift uint
	var b [1]byte
	for i := 0; i < binary.MaxVarintLen64; i++ {
		if _, err := io.ReadFull(s.r, b[:]); err != nil {
			return 0, err
		}
		s.off++
		v |= uint64(b[0]&0x7f) << shift
		if b[0] < 0x80 {
			return v, nil
		}
		shift += 7
	}
	return 0, fmt.Errorf("codec: uvarint overflow at offset %d", s.start)
}
