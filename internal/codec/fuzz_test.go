package codec

import (
	"testing"
	"time"
)

// FuzzCodecRoundTrip drives the record codec from two directions: a
// record built from fuzzed fields must survive encode/decode exactly,
// and arbitrary bytes fed to the decoder must error or decode — never
// panic, never over-read.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add("exec.start", "dgf-000001", int64(1700000000123456789),
		"<dataGridRequest/>", "/f/s1", "peerB", "boom", "k", "v", "/f/s1", true, false,
		[]byte{Magic, Version, MsgRecord})
	f.Add(TypeExecSnap, "dgf-000042", int64(-1), "", "", "", "", "", "", "", false, true,
		[]byte("{\"type\":\"exec.start\"}"))
	f.Add("", "", int64(0), "", "", "", "", "", "", "", false, false, []byte{})

	f.Fuzz(func(t *testing.T, typ, id string, unixNano int64,
		request, node, peer, errText, varKey, varVal, done string,
		paused, passivated bool, raw []byte) {
		rec := Record{
			Type: typ, ID: id,
			Time:    time.Unix(0, unixNano),
			Request: request, Node: node, Peer: peer, Err: errText,
			Paused: paused, Passivated: passivated,
		}
		// Empty strings are encoded as absent fields, so only non-empty
		// map entries and Done elements round-trip; mirror that here.
		if varKey != "" || varVal != "" {
			rec.Vars = map[string]string{varKey: varVal}
		}
		if done != "" {
			rec.Done = []string{done}
		}
		e := GetEncoder()
		AppendRecord(e, &rec)
		got, err := DecodeRecord(e.Bytes())
		PutEncoder(e)
		if err != nil {
			t.Fatalf("decode of freshly encoded record: %v", err)
		}
		if !recordsEqual(got, rec) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
		}

		// Arbitrary input must never panic the decoder.
		_, _ = DecodeRecord(raw)
		_, _ = DecodeRequest(raw)
		_, _ = DecodeResponse(raw)
	})
}
