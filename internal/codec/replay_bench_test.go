package codec

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func benchRecs() []Record {
	now := time.Now()
	recs := make([]Record, 256)
	for i := range recs {
		vars := make(map[string]string, 10)
		for v := 0; v < 10; v++ {
			vars[fmt.Sprintf("dataset.partition.%02d", v)] =
				fmt.Sprintf("srb://vault.sdsc.edu/grid/run-%04d/part-%02d.dat", i%977, v)
		}
		done := make([]string, 12)
		for s := range done {
			done[s] = fmt.Sprintf("/lr/s%d", s)
		}
		recs[i] = Record{
			Type: TypeExecSnap,
			ID:   fmt.Sprintf("dgf-%06d", i%4096),
			Time: now,
			Request: `<dataGridRequest async="true"><userInfo><userName>bench</userName>` +
				`<virtualOrganization>sdsc</virtualOrganization></userInfo>` +
				`<dataGridFlow name="lr"><flowLogic control="sequential"/></dataGridFlow></dataGridRequest>`,
			Node: "/lr/park",
			Vars: vars,
			Done: done,
		}
	}
	return recs
}

func BenchmarkReplayJSONDecode(b *testing.B) {
	recs := benchRecs()
	lines := make([][]byte, len(recs))
	for i := range recs {
		lines[i], _ = json.Marshal(&recs[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r Record
		if err := json.Unmarshal(lines[i%len(lines)], &r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayBinaryDecode(b *testing.B) {
	recs := benchRecs()
	frames := make([][]byte, len(recs))
	for i := range recs {
		e := GetEncoder()
		AppendRecord(e, &recs[i])
		frames[i] = append([]byte(nil), e.Bytes()...)
		PutEncoder(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRecord(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
}
