package codec

import (
	"sort"
	"time"
)

// Record is one lifecycle record of the matrix journal and the
// flow-state store (internal/store aliases this type so both layers and
// their tooling share one definition). A record serializes either as
// one JSONL line (the legacy encoding, via the json tags) or as one
// binary frame (AppendRecordFrame) — a segment or journal file holds
// exactly one encoding, sniffed from its first byte.
type Record struct {
	Type string    `json:"type"`
	ID   string    `json:"id"` // execution id
	Time time.Time `json:"time"`
	// Request holds the marshaled DGL request document (exec.start,
	// exec.snap).
	Request string `json:"request,omitempty"`
	// Node is the restart-stable node path, e.g. "/pipeline/stage-in"
	// (step.done, deleg.start, deleg.done).
	Node string `json:"node,omitempty"`
	// Peer names the remote peer that completed a delegated subflow
	// (deleg.done).
	Peer string `json:"peer,omitempty"`
	// Err is the final error text, empty on success (exec.end).
	Err string `json:"err,omitempty"`
	// Vars snapshots the execution's root scope variables (exec.snap).
	Vars map[string]string `json:"vars,omitempty"`
	// Done lists the restart-stable node paths proven complete
	// (exec.snap) — steps, skipped steps, and whole delegated subtrees.
	Done []string `json:"done,omitempty"`
	// Paused records whether the execution was paused when the record
	// was written (exec.snap, exec.passivate); a resurrected execution
	// re-enters the paused state.
	Paused bool `json:"paused,omitempty"`
	// Passivated marks a compaction-merged snapshot of a passivated
	// execution (exec.snap written by Compact): one record carries both
	// the snapshot and the passivation marker.
	Passivated bool `json:"passivated,omitempty"`
}

// Record types. The first five are the journal's lifecycle types; the
// rest are store extensions. Readers must ignore types they do not
// know — old tooling skips snap/passivate/resurrect/prune lines.
const (
	TypeExecStart  = "exec.start"
	TypeStepDone   = "step.done"
	TypeDelegStart = "deleg.start"
	TypeDelegDone  = "deleg.done"
	TypeExecEnd    = "exec.end"

	// TypeExecSnap is a self-contained snapshot: Request + Vars + Done
	// (+ Paused). Replaying a snapshot supersedes every earlier record
	// of the execution.
	TypeExecSnap = "exec.snap"
	// TypeExecPassivate marks the execution as evicted from engine
	// memory; it is always preceded by a fresh exec.snap.
	TypeExecPassivate = "exec.passivate"
	// TypeExecResurrect marks a passivated execution as resident again
	// (it is running; a crash before its exec.end must resume it).
	TypeExecResurrect = "exec.resurrect"
	// TypeExecPrune is the tombstone for Engine.Prune: compaction drops
	// every record of a pruned execution, and recovery never resurrects
	// it.
	TypeExecPrune = "exec.prune"
)

// Record field numbers (MsgRecord). Frozen: new fields append, existing
// numbers are never reused (docs/CODEC.md, "Versioning").
const (
	recType       = 1  // sym
	recID         = 2  // sym
	recTime       = 3  // zigzag varint, UnixNano; absent = zero time
	recRequest    = 4  // bytes
	recNode       = 5  // sym
	recPeer       = 6  // sym
	recErr        = 7  // bytes
	recVar        = 8  // repeated msg {1: key sym, 2: value bytes}
	recDone       = 9  // repeated sym
	recPaused     = 10 // varint bool
	recPassivated = 11 // varint bool
)

// AppendRecord encodes rec as a standalone payload (Begin layout).
func AppendRecord(e *Encoder, rec *Record) {
	e.Begin(MsgRecord)
	recordFields(e, rec)
}

// AppendRecordFrame encodes rec as a self-delimiting frame for
// append-only streams (store segments, the journal). Frames accumulate:
// several calls on one encoder build one contiguous block, written (and
// fsynced) in a single vectored append.
func AppendRecordFrame(e *Encoder, rec *Record) {
	mark := e.BeginFrame(MsgRecord)
	recordFields(e, rec)
	e.EndFrame(mark)
}

func recordFields(e *Encoder, rec *Record) {
	e.Sym(recType, rec.Type)
	e.Sym(recID, rec.ID)
	if !rec.Time.IsZero() {
		e.Int(recTime, rec.Time.UnixNano())
	}
	e.Str(recRequest, rec.Request)
	e.Sym(recNode, rec.Node)
	e.Sym(recPeer, rec.Peer)
	e.Str(recErr, rec.Err)
	if len(rec.Vars) > 0 {
		keys := make([]string, 0, len(rec.Vars))
		for k := range rec.Vars {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			k := k
			e.Msg(recVar, func(e *Encoder) {
				e.Sym(1, k)
				e.Str(2, rec.Vars[k])
			})
		}
	}
	for _, n := range rec.Done {
		e.Sym(recDone, n)
	}
	e.Bool(recPaused, rec.Paused)
	e.Bool(recPassivated, rec.Passivated)
}

// DecodeRecord decodes a MsgRecord payload (Begin layout, as returned
// by FrameScanner.Next).
func DecodeRecord(payload []byte) (Record, error) {
	d, err := NewDecoder(payload, MsgRecord)
	if err != nil {
		return Record{}, err
	}
	var rec Record
	for d.Next() {
		switch d.Field() {
		case recType:
			rec.Type = d.Sym()
		case recID:
			rec.ID = d.Sym()
		case recTime:
			rec.Time = time.Unix(0, d.Int())
		case recRequest:
			rec.Request = d.Str()
		case recNode:
			rec.Node = d.Sym()
		case recPeer:
			rec.Peer = d.Sym()
		case recErr:
			rec.Err = d.Str()
		case recVar:
			// MsgEnter over the closure form: replay decodes millions of
			// these and the escaping sub-decoder dominates its allocations.
			var k, v string
			end := d.MsgEnter()
			for d.Next() {
				switch d.Field() {
				case 1:
					k = d.Sym()
				case 2:
					v = d.Str()
				default:
					d.Skip()
				}
			}
			d.MsgExit(end)
			if rec.Vars == nil {
				rec.Vars = make(map[string]string, 8)
			}
			rec.Vars[k] = v
		case recDone:
			rec.Done = append(rec.Done, d.Sym())
		case recPaused:
			rec.Paused = d.Bool()
		case recPassivated:
			rec.Passivated = d.Bool()
		default:
			d.Skip()
		}
	}
	return rec, d.Err()
}
