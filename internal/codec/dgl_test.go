package codec

import (
	"testing"

	"datagridflow/internal/dgl"
)

// testRequest builds a request exercising every DGL construct the codec
// encodes: nested flows, iteration with a namespace query, rules with
// actions, step attributes, variables and parameters.
func testRequest() *dgl.Request {
	return &dgl.Request{
		Async: true,
		Metadata: dgl.DocumentMeta{
			CreatedBy:   "alice",
			CreatedAt:   "2026-08-08T00:00:00Z",
			Description: "codec round-trip fixture",
		},
		User: dgl.GridUser{Name: "alice", VO: "cms"},
		Flow: &dgl.Flow{
			Name: "pipeline",
			Variables: []dgl.Variable{
				{Name: "src", Value: "/grid/data/in"},
				{Name: "dst", Value: "/grid/data/out"},
			},
			Logic: dgl.FlowLogic{Control: dgl.Sequential},
			Flows: []dgl.Flow{{
				Name: "fanout",
				Logic: dgl.FlowLogic{
					Control: dgl.ForEach,
					Iterate: &dgl.Iterate{
						Var:      "chunk",
						Parallel: true,
						Times:    3,
						Query: &dgl.NSQuery{
							Scope:       "/grid/data/in",
							ObjectsOnly: true,
							Conditions:  []dgl.QueryCond{{Attr: "size", Op: "gt", Value: "0"}},
						},
					},
					Rules: []dgl.Rule{{
						Name:      "onBigChunk",
						Condition: "${size} > 1024",
						Actions: []dgl.Action{{
							Name:      "log",
							Operation: &dgl.Operation{Type: "noop"},
						}},
					}},
				},
				Steps: []dgl.Step{{
					Name:      "transfer",
					OnError:   "retry",
					Retries:   2,
					Backoff:   "10ms",
					Timeout:   "1s",
					Variables: []dgl.Variable{{Name: "tmp", Value: "${chunk}.part"}},
					Operation: dgl.Operation{
						Type: "copyFile",
						Params: []dgl.Param{
							{Name: "source", Value: "${chunk}"},
							{Name: "target", Value: "${dst}/${chunk}"},
						},
					},
				}},
			}},
			Steps: []dgl.Step{{
				Name:      "cleanup",
				Operation: dgl.Operation{Type: "removeDirectory", Params: []dgl.Param{{Name: "path", Value: "${src}"}}},
			}},
		},
	}
}

// TestRequestRoundTrip compares the XML rendering before and after a
// binary round trip — XML equality is exactly the fidelity the server
// needs, since journaling and federation re-marshal to XML.
func TestRequestRoundTrip(t *testing.T) {
	for _, req := range []*dgl.Request{
		testRequest(),
		dgl.NewStatusRequest("bob", "dgf-000007", true),
		{User: dgl.GridUser{Name: "x"}},
	} {
		e := GetEncoder()
		AppendRequest(e, req)
		got, err := DecodeRequest(e.Bytes())
		PutEncoder(e)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		wantXML, err := dgl.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		gotXML, err := dgl.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotXML) != string(wantXML) {
			t.Errorf("XML mismatch after round trip:\n got: %s\nwant: %s", gotXML, wantXML)
		}
	}
}

// TestResponseRoundTrip covers acks, deep status trees and error
// responses.
func TestResponseRoundTrip(t *testing.T) {
	for _, resp := range []*dgl.Response{
		{Ack: &dgl.Ack{ID: "dgf-000042", Status: "accepted", Valid: true}},
		{Error: "resource_down: peer unreachable"},
		{Status: &dgl.FlowStatus{
			ID: "dgf-000042", Name: "pipeline", Kind: "flow", State: "running",
			Started: "2026-08-08T01:02:03Z",
			Children: []dgl.FlowStatus{
				{ID: "dgf-000042/n1", Name: "stage-in", Kind: "step", State: "completed",
					Started: "2026-08-08T01:02:03Z", Finished: "2026-08-08T01:02:04Z"},
				{ID: "dgf-000042/n2", Name: "fanout", Kind: "flow", State: "running",
					Delegated: "peerB:dgf-000099",
					Children: []dgl.FlowStatus{
						{ID: "dgf-000042/n2/c0", Name: "transfer", Kind: "step", State: "failed",
							Error: "exec_failed: no such file"},
					}},
			},
		}},
	} {
		e := GetEncoder()
		AppendResponse(e, resp)
		got, err := DecodeResponse(e.Bytes())
		PutEncoder(e)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		wantXML, _ := dgl.Marshal(resp)
		gotXML, _ := dgl.Marshal(got)
		if string(gotXML) != string(wantXML) {
			t.Errorf("XML mismatch:\n got: %s\nwant: %s", gotXML, wantXML)
		}
	}
}

// BenchmarkRequestBinary/XML size up the codec win on the submit path.
func BenchmarkRequestBinary(b *testing.B) {
	req := testRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := GetEncoder()
		AppendRequest(e, req)
		if _, err := DecodeRequest(e.Bytes()); err != nil {
			b.Fatal(err)
		}
		PutEncoder(e)
	}
}

func BenchmarkRequestXML(b *testing.B) {
	req := testRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := dgl.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dgl.DecodeRequest(data); err != nil {
			b.Fatal(err)
		}
	}
}
