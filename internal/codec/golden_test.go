package codec

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenRecords is the fixture stream pinned in testdata/segment_v1.bin.
// Do not edit: changing it (or the encoder's byte layout) invalidates
// every binary segment already on disk. The fixture times are fixed
// UTC instants so the files are byte-stable across machines.
func goldenRecords() []Record {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return []Record{
		{
			Type: TypeExecStart, ID: "dgf-000042", Time: t0,
			Request: "<dataGridRequest async=\"true\"></dataGridRequest>",
		},
		{
			Type: TypeStepDone, ID: "dgf-000042", Time: t0.Add(time.Second),
			Node: "/pipeline/stage-in",
		},
		{
			Type: TypeExecSnap, ID: "dgf-000042", Time: t0.Add(2 * time.Second),
			Request: "<dataGridRequest async=\"true\"></dataGridRequest>",
			Vars:    map[string]string{"chunk": "/grid/data/chunk-07"},
			Done:    []string{"/pipeline/stage-in"},
			Paused:  false, Passivated: true,
		},
	}
}

func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("testdata", name)
}

func writeOrCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(t, name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/codec -run Golden -update` after an intentional format change)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: encoded bytes diverge from the pinned on-disk layout.\n got: %x\nwant: %x\n"+
			"This breaks replay of existing binary segments; if the change is intentional, "+
			"bump codec.Version and regenerate with -update.", name, got, want)
	}
}

// TestGoldenRecordLayout pins the exact bytes of a single encoded
// record payload (testdata/record_v1.bin) and of a three-frame segment
// stream (testdata/segment_v1.bin). The worked hex dump in
// docs/CODEC.md is record_v1.bin.
func TestGoldenRecordLayout(t *testing.T) {
	recs := goldenRecords()

	e := GetEncoder()
	defer PutEncoder(e)
	AppendRecord(e, &recs[2])
	writeOrCompare(t, "record_v1.bin", e.Bytes())

	e2 := GetEncoder()
	defer PutEncoder(e2)
	for i := range recs {
		AppendRecordFrame(e2, &recs[i])
	}
	writeOrCompare(t, "segment_v1.bin", e2.Bytes())
}

// TestGoldenDecode reads the committed files back — proving today's
// decoder still understands yesterday's bytes, independent of the
// encoder.
func TestGoldenDecode(t *testing.T) {
	if *update {
		t.Skip("updating")
	}
	payload, err := os.ReadFile(goldenPath(t, "record_v1.bin"))
	if err != nil {
		t.Fatal(err)
	}
	want := goldenRecords()
	got, err := DecodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(got, want[2]) {
		t.Fatalf("record_v1.bin decodes to %+v, want %+v", got, want[2])
	}

	f, err := os.Open(goldenPath(t, "segment_v1.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := NewFrameScanner(f)
	for i := range want {
		_, payload, err := sc.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !recordsEqual(got, want[i]) {
			t.Fatalf("frame %d decodes to %+v, want %+v", i, got, want[i])
		}
	}
	if _, _, err := sc.Next(); err != io.EOF {
		t.Fatalf("trailing data after pinned frames: %v", err)
	}
}
