package codec

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"
)

func testRecord() Record {
	return Record{
		Type:    TypeExecSnap,
		ID:      "dgf-000042",
		Time:    time.Unix(0, 1700000000123456789),
		Request: "<dataGridRequest async=\"true\"></dataGridRequest>",
		Node:    "/pipeline/stage-in",
		Peer:    "peerB",
		Err:     "",
		Vars: map[string]string{
			"chunk":  "/grid/data/chunk-07",
			"target": "/grid/out",
		},
		Done:       []string{"/pipeline/stage-in", "/pipeline/transfer", "/pipeline/stage-in"},
		Paused:     true,
		Passivated: true,
	}
}

// TestRecordRoundTrip pushes a fully-populated record and a minimal one
// through encode/decode and wants structural equality.
func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range []Record{
		testRecord(),
		{Type: TypeExecStart, ID: "dgf-000001", Time: time.Unix(12, 34)},
	} {
		e := GetEncoder()
		AppendRecord(e, &rec)
		got, err := DecodeRecord(e.Bytes())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !recordsEqual(got, rec) {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
		}
		PutEncoder(e)
	}
}

func recordsEqual(a, b Record) bool {
	if !a.Time.Equal(b.Time) {
		return false
	}
	a.Time, b.Time = time.Time{}, time.Time{}
	return reflect.DeepEqual(a, b)
}

// TestSymbolTableDeduplicates checks that a repeated string costs a
// short reference the second time, not a second copy.
func TestSymbolTableDeduplicates(t *testing.T) {
	long := strings.Repeat("step-with-a-long-name", 3)
	rec := Record{Type: TypeStepDone, ID: long, Node: long, Done: []string{long, long}}
	e := GetEncoder()
	defer PutEncoder(e)
	AppendRecord(e, &rec)
	if n, want := len(e.Bytes()), 2*len(long); n >= want {
		t.Fatalf("payload %d bytes, want < %d (symbol table did not deduplicate)", n, want)
	}
	got, err := DecodeRecord(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != long || got.Node != long || len(got.Done) != 2 || got.Done[1] != long {
		t.Fatalf("decode after dedup = %+v", got)
	}
}

// TestNestedMessageLengthPatch exercises the slow patch path: a nested
// message over 127 bytes forces the placeholder to grow in place.
func TestNestedMessageLengthPatch(t *testing.T) {
	big := strings.Repeat("x", 4000)
	rec := Record{Type: TypeExecSnap, ID: "dgf-1", Vars: map[string]string{"k": big}}
	e := GetEncoder()
	defer PutEncoder(e)
	AppendRecord(e, &rec)
	got, err := DecodeRecord(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Vars["k"] != big {
		t.Fatalf("large nested value corrupted: got %d bytes", len(got.Vars["k"]))
	}
}

// TestUnknownFieldSkip appends fields a MsgRecord decoder has never
// heard of — every wire type, including an inline symbol definition
// that a later known field references — and wants the known fields
// back untouched.
func TestUnknownFieldSkip(t *testing.T) {
	e := GetEncoder()
	defer PutEncoder(e)
	e.Begin(MsgRecord)
	e.Sym(1, TypeExecEnd)
	e.Uint(90, 12345)                                 // unknown varint
	e.Str(91, "future bytes")                         // unknown bytes
	e.Msg(92, func(e *Encoder) { e.Str(1, "inner") }) // unknown message
	e.Sym(93, "shared-symbol")                        // unknown symbol: defines table entry
	e.Sym(2, "shared-symbol")                         // known field referencing it
	e.Bool(10, true)

	got, err := DecodeRecord(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeExecEnd || got.ID != "shared-symbol" || !got.Paused {
		t.Fatalf("decode with unknown fields = %+v", got)
	}
}

// TestDecoderRejectsGarbage feeds truncations and corruptions; all must
// error, none may panic.
func TestDecoderRejectsGarbage(t *testing.T) {
	e := GetEncoder()
	defer PutEncoder(e)
	rec := testRecord()
	AppendRecord(e, &rec)
	good := e.Bytes()
	for i := range good {
		if _, err := DecodeRecord(good[:i]); err == nil && i < 3 {
			t.Fatalf("truncation at %d decoded without error", i)
		}
		// Truncations past the header may decode cleanly if they fall on
		// a field boundary — that is fine; we only require no panic.
		_, _ = DecodeRecord(good[:i])
	}
	if _, err := DecodeRecord([]byte("{json}")); !errors.Is(err, ErrNotBinary) {
		t.Fatalf("JSON payload error = %v, want ErrNotBinary", err)
	}
	bad := append([]byte(nil), good...)
	bad[1] = 99
	if _, err := DecodeRecord(bad); err == nil {
		t.Fatal("future format version decoded without error")
	}
	bad = append([]byte(nil), good...)
	bad[2] = MsgControl
	if _, err := DecodeRecord(bad); err == nil {
		t.Fatal("wrong message type decoded without error")
	}
}

// TestFrameScanner writes three frames, reads them back, and then
// checks torn-tail detection at every truncation point of the last
// frame.
func TestFrameScanner(t *testing.T) {
	recs := []Record{
		{Type: TypeExecStart, ID: "dgf-1", Request: "<dataGridRequest/>"},
		{Type: TypeStepDone, ID: "dgf-1", Node: "/f/s1"},
		testRecord(),
	}
	e := GetEncoder()
	defer PutEncoder(e)
	for i := range recs {
		AppendRecordFrame(e, &recs[i])
	}
	stream := append([]byte(nil), e.Bytes()...)

	sc := NewFrameScanner(bytes.NewReader(stream))
	for i := range recs {
		mt, payload, err := sc.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if mt != MsgRecord {
			t.Fatalf("frame %d type = %d", i, mt)
		}
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("frame %d decode: %v", i, err)
		}
		if !recordsEqual(got, recs[i]) {
			t.Fatalf("frame %d mismatch: %+v", i, got)
		}
	}
	if _, _, err := sc.Next(); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}

	// Find the offset of the last frame by re-scanning.
	sc = NewFrameScanner(bytes.NewReader(stream))
	var lastStart int64
	for {
		_, _, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		lastStart = sc.Offset()
	}
	for cut := int(lastStart) + 1; cut < len(stream); cut++ {
		sc := NewFrameScanner(bytes.NewReader(stream[:cut]))
		var err error
		for {
			_, _, err = sc.Next()
			if err != nil {
				break
			}
		}
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("cut at %d: err = %v, want ErrTorn", cut, err)
		}
		if sc.Offset() != lastStart {
			t.Fatalf("cut at %d: torn offset = %d, want %d", cut, sc.Offset(), lastStart)
		}
	}

	// Corruption (bad magic mid-stream) is an error, not a torn tail.
	bad := append([]byte(nil), stream...)
	bad[lastStart] = '{'
	sc = NewFrameScanner(bytes.NewReader(bad))
	var err error
	for {
		_, _, err = sc.Next()
		if err != nil {
			break
		}
	}
	if err == nil || errors.Is(err, ErrTorn) || err == io.EOF {
		t.Fatalf("corrupt magic err = %v, want hard error", err)
	}
}

// TestEncoderAccumulatesFrames checks that one encoder can hold many
// frames back to back (the vectored-write path) with independent
// string tables.
func TestEncoderAccumulatesFrames(t *testing.T) {
	e := GetEncoder()
	defer PutEncoder(e)
	a := Record{Type: TypeExecStart, ID: "dgf-1"}
	b := Record{Type: TypeExecEnd, ID: "dgf-2"}
	AppendRecordFrame(e, &a)
	n := e.Len()
	AppendRecordFrame(e, &b)
	sc := NewFrameScanner(bytes.NewReader(e.Bytes()))
	for _, want := range []Record{a, b} {
		_, payload, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != want.ID || got.Type != want.Type {
			t.Fatalf("got %+v want %+v", got, want)
		}
	}
	if e.Len() <= n {
		t.Fatal("second frame did not append")
	}
}
