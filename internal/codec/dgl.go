package codec

import "datagridflow/internal/dgl"

// Binary codecs for DGL documents — the payloads of KindDGL frames and
// the per-item bodies inside batch envelopes. Replacing encoding/xml on
// the submit path is where most of the wire win comes from: an XML
// round trip (MarshalIndent + Unmarshal) costs an order of magnitude
// more than these field loops, and the string table collapses the
// repeated names (step names, variable names, operation types) a real
// flow document is mostly made of.
//
// Field numbers are frozen per docs/CODEC.md: new fields append, old
// numbers are never reused, decoders skip what they do not know.

// Request field numbers (MsgRequest).
const (
	reqAsync = 1 // varint bool
	reqMeta  = 2 // msg {1: createdBy sym, 2: createdAt sym, 3: description bytes}
	reqUser  = 3 // msg {1: name sym, 2: vo sym}
	reqFlow  = 4 // msg (flow)
	reqQuery = 5 // msg {1: id sym, 2: detail bool}
	reqRoute = 6 // sym ("auto"/"local"), sharded-routing preference
	reqToken = 7 // bytes, tenant bearer token (wire 1.7; high-entropy, never symed)
)

// Flow field numbers (nested).
const (
	flowName = 1 // sym
	flowVar  = 2 // repeated msg {1: name sym, 2: value bytes}
	flowLgc  = 3 // msg (flowLogic)
	flowSub  = 4 // repeated msg (flow)
	flowStep = 5 // repeated msg (step)
)

// FlowLogic field numbers.
const (
	lgcControl = 1 // sym
	lgcCond    = 2 // bytes
	lgcIterate = 3 // msg
	lgcRule    = 4 // repeated msg (rule)
)

// Iterate field numbers.
const (
	iterVar      = 1 // sym
	iterParallel = 2 // varint bool
	iterIn       = 3 // bytes
	iterTimes    = 4 // zigzag varint
	iterQuery    = 5 // msg (nsQuery)
)

// NSQuery field numbers.
const (
	nsqScope   = 1 // sym
	nsqObjects = 2 // varint bool
	nsqCond    = 3 // repeated msg {1: attr sym, 2: op sym, 3: value bytes}
)

// Rule field numbers.
const (
	ruleName   = 1 // sym
	ruleCond   = 2 // bytes
	ruleAction = 3 // repeated msg {1: name sym, 2: operation msg}
)

// Step field numbers.
const (
	stepName       = 1  // sym
	stepOnError    = 2  // sym
	stepRetries    = 3  // zigzag varint
	stepBackoff    = 4  // sym
	stepMaxBackoff = 5  // sym
	stepTimeout    = 6  // sym
	stepVar        = 7  // repeated msg {1: name sym, 2: value bytes}
	stepRule       = 8  // repeated msg (rule)
	stepOp         = 9  // msg (operation)
	stepPure       = 10 // varint bool
	stepOutputs    = 11 // sym
)

// Operation field numbers.
const (
	opType  = 1 // sym
	opParam = 2 // repeated msg {1: name sym, 2: value bytes}
)

// Response field numbers (MsgResponse).
const (
	respAck    = 1 // msg {1: id sym, 2: status sym, 3: valid bool, 4: message bytes}
	respStatus = 2 // msg (flowStatus)
	respErr    = 3 // bytes
)

// FlowStatus field numbers.
const (
	fsID        = 1 // sym
	fsName      = 2 // sym
	fsKind      = 3 // sym
	fsState     = 4 // sym
	fsStarted   = 5 // sym
	fsFinished  = 6 // sym
	fsDelegated = 7 // sym
	fsErr       = 8 // bytes
	fsChild     = 9 // repeated msg (flowStatus)
)

// AppendRequest encodes a dgl.Request as a standalone payload.
func AppendRequest(e *Encoder, req *dgl.Request) {
	e.Begin(MsgRequest)
	e.Bool(reqAsync, req.Async)
	if req.Metadata != (dgl.DocumentMeta{}) {
		e.Msg(reqMeta, func(e *Encoder) {
			e.Sym(1, req.Metadata.CreatedBy)
			e.Sym(2, req.Metadata.CreatedAt)
			e.Str(3, req.Metadata.Description)
		})
	}
	if req.User != (dgl.GridUser{}) {
		e.Msg(reqUser, func(e *Encoder) {
			e.Sym(1, req.User.Name)
			e.Sym(2, req.User.VO)
		})
	}
	if req.Flow != nil {
		e.Msg(reqFlow, func(e *Encoder) { flowFields(e, req.Flow) })
	}
	if req.StatusQuery != nil {
		e.Msg(reqQuery, func(e *Encoder) {
			e.Sym(1, req.StatusQuery.ID)
			e.Bool(2, req.StatusQuery.Detail)
		})
	}
	e.Sym(reqRoute, req.Route)
	e.Str(reqToken, req.Token)
}

func flowFields(e *Encoder, f *dgl.Flow) {
	e.Sym(flowName, f.Name)
	for i := range f.Variables {
		v := &f.Variables[i]
		e.Msg(flowVar, func(e *Encoder) {
			e.Sym(1, v.Name)
			e.Str(2, v.Value)
		})
	}
	e.Msg(flowLgc, func(e *Encoder) { logicFields(e, &f.Logic) })
	for i := range f.Flows {
		sub := &f.Flows[i]
		e.Msg(flowSub, func(e *Encoder) { flowFields(e, sub) })
	}
	for i := range f.Steps {
		st := &f.Steps[i]
		e.Msg(flowStep, func(e *Encoder) { stepFields(e, st) })
	}
}

func logicFields(e *Encoder, l *dgl.FlowLogic) {
	e.Sym(lgcControl, string(l.Control))
	e.Str(lgcCond, l.Condition)
	if l.Iterate != nil {
		it := l.Iterate
		e.Msg(lgcIterate, func(e *Encoder) {
			e.Sym(iterVar, it.Var)
			e.Bool(iterParallel, it.Parallel)
			e.Str(iterIn, it.In)
			if it.Times != 0 {
				e.Int(iterTimes, int64(it.Times))
			}
			if it.Query != nil {
				e.Msg(iterQuery, func(e *Encoder) { queryFields(e, it.Query) })
			}
		})
	}
	for i := range l.Rules {
		r := &l.Rules[i]
		e.Msg(lgcRule, func(e *Encoder) { ruleFields(e, r) })
	}
}

func queryFields(e *Encoder, q *dgl.NSQuery) {
	e.Sym(nsqScope, q.Scope)
	e.Bool(nsqObjects, q.ObjectsOnly)
	for i := range q.Conditions {
		c := &q.Conditions[i]
		e.Msg(nsqCond, func(e *Encoder) {
			e.Sym(1, c.Attr)
			e.Sym(2, c.Op)
			e.Str(3, c.Value)
		})
	}
}

func ruleFields(e *Encoder, r *dgl.Rule) {
	e.Sym(ruleName, r.Name)
	e.Str(ruleCond, r.Condition)
	for i := range r.Actions {
		a := &r.Actions[i]
		e.Msg(ruleAction, func(e *Encoder) {
			e.Sym(1, a.Name)
			if a.Operation != nil {
				e.Msg(2, func(e *Encoder) { opFields(e, a.Operation) })
			}
		})
	}
}

func stepFields(e *Encoder, st *dgl.Step) {
	e.Sym(stepName, st.Name)
	e.Sym(stepOnError, st.OnError)
	if st.Retries != 0 {
		e.Int(stepRetries, int64(st.Retries))
	}
	e.Sym(stepBackoff, st.Backoff)
	e.Sym(stepMaxBackoff, st.MaxBackoff)
	e.Sym(stepTimeout, st.Timeout)
	for i := range st.Variables {
		v := &st.Variables[i]
		e.Msg(stepVar, func(e *Encoder) {
			e.Sym(1, v.Name)
			e.Str(2, v.Value)
		})
	}
	for i := range st.Rules {
		r := &st.Rules[i]
		e.Msg(stepRule, func(e *Encoder) { ruleFields(e, r) })
	}
	e.Msg(stepOp, func(e *Encoder) { opFields(e, &st.Operation) })
	if st.Pure {
		e.Bool(stepPure, st.Pure)
	}
	e.Sym(stepOutputs, st.Outputs)
}

func opFields(e *Encoder, op *dgl.Operation) {
	e.Sym(opType, op.Type)
	for i := range op.Params {
		p := &op.Params[i]
		e.Msg(opParam, func(e *Encoder) {
			e.Sym(1, p.Name)
			e.Str(2, p.Value)
		})
	}
}

// DecodeRequest decodes a MsgRequest payload.
func DecodeRequest(payload []byte) (*dgl.Request, error) {
	d, err := NewDecoder(payload, MsgRequest)
	if err != nil {
		return nil, err
	}
	req := &dgl.Request{}
	for d.Next() {
		switch d.Field() {
		case reqAsync:
			req.Async = d.Bool()
		case reqMeta:
			d.Msg(func(d *Decoder) {
				for d.Next() {
					switch d.Field() {
					case 1:
						req.Metadata.CreatedBy = d.Sym()
					case 2:
						req.Metadata.CreatedAt = d.Sym()
					case 3:
						req.Metadata.Description = d.Str()
					default:
						d.Skip()
					}
				}
			})
		case reqUser:
			d.Msg(func(d *Decoder) {
				for d.Next() {
					switch d.Field() {
					case 1:
						req.User.Name = d.Sym()
					case 2:
						req.User.VO = d.Sym()
					default:
						d.Skip()
					}
				}
			})
		case reqFlow:
			f := &dgl.Flow{}
			d.Msg(func(d *Decoder) { decodeFlow(d, f) })
			req.Flow = f
		case reqQuery:
			q := &dgl.StatusQuery{}
			d.Msg(func(d *Decoder) {
				for d.Next() {
					switch d.Field() {
					case 1:
						q.ID = d.Sym()
					case 2:
						q.Detail = d.Bool()
					default:
						d.Skip()
					}
				}
			})
			req.StatusQuery = q
		case reqRoute:
			req.Route = d.Sym()
		case reqToken:
			req.Token = d.Str()
		default:
			d.Skip()
		}
	}
	return req, d.Err()
}

func decodeFlow(d *Decoder, f *dgl.Flow) {
	for d.Next() {
		switch d.Field() {
		case flowName:
			f.Name = d.Sym()
		case flowVar:
			var v dgl.Variable
			d.Msg(func(d *Decoder) { decodeVariable(d, &v) })
			f.Variables = append(f.Variables, v)
		case flowLgc:
			d.Msg(func(d *Decoder) { decodeLogic(d, &f.Logic) })
		case flowSub:
			var sub dgl.Flow
			d.Msg(func(d *Decoder) { decodeFlow(d, &sub) })
			f.Flows = append(f.Flows, sub)
		case flowStep:
			var st dgl.Step
			d.Msg(func(d *Decoder) { decodeStep(d, &st) })
			f.Steps = append(f.Steps, st)
		default:
			d.Skip()
		}
	}
}

func decodeVariable(d *Decoder, v *dgl.Variable) {
	for d.Next() {
		switch d.Field() {
		case 1:
			v.Name = d.Sym()
		case 2:
			v.Value = d.Str()
		default:
			d.Skip()
		}
	}
}

func decodeLogic(d *Decoder, l *dgl.FlowLogic) {
	for d.Next() {
		switch d.Field() {
		case lgcControl:
			l.Control = dgl.Control(d.Sym())
		case lgcCond:
			l.Condition = d.Str()
		case lgcIterate:
			it := &dgl.Iterate{}
			d.Msg(func(d *Decoder) {
				for d.Next() {
					switch d.Field() {
					case iterVar:
						it.Var = d.Sym()
					case iterParallel:
						it.Parallel = d.Bool()
					case iterIn:
						it.In = d.Str()
					case iterTimes:
						it.Times = int(d.Int())
					case iterQuery:
						q := &dgl.NSQuery{}
						d.Msg(func(d *Decoder) { decodeQuery(d, q) })
						it.Query = q
					default:
						d.Skip()
					}
				}
			})
			l.Iterate = it
		case lgcRule:
			var r dgl.Rule
			d.Msg(func(d *Decoder) { decodeRule(d, &r) })
			l.Rules = append(l.Rules, r)
		default:
			d.Skip()
		}
	}
}

func decodeQuery(d *Decoder, q *dgl.NSQuery) {
	for d.Next() {
		switch d.Field() {
		case nsqScope:
			q.Scope = d.Sym()
		case nsqObjects:
			q.ObjectsOnly = d.Bool()
		case nsqCond:
			var c dgl.QueryCond
			d.Msg(func(d *Decoder) {
				for d.Next() {
					switch d.Field() {
					case 1:
						c.Attr = d.Sym()
					case 2:
						c.Op = d.Sym()
					case 3:
						c.Value = d.Str()
					default:
						d.Skip()
					}
				}
			})
			q.Conditions = append(q.Conditions, c)
		default:
			d.Skip()
		}
	}
}

func decodeRule(d *Decoder, r *dgl.Rule) {
	for d.Next() {
		switch d.Field() {
		case ruleName:
			r.Name = d.Sym()
		case ruleCond:
			r.Condition = d.Str()
		case ruleAction:
			var a dgl.Action
			d.Msg(func(d *Decoder) {
				for d.Next() {
					switch d.Field() {
					case 1:
						a.Name = d.Sym()
					case 2:
						op := &dgl.Operation{}
						d.Msg(func(d *Decoder) { decodeOp(d, op) })
						a.Operation = op
					default:
						d.Skip()
					}
				}
			})
			r.Actions = append(r.Actions, a)
		default:
			d.Skip()
		}
	}
}

func decodeStep(d *Decoder, st *dgl.Step) {
	for d.Next() {
		switch d.Field() {
		case stepName:
			st.Name = d.Sym()
		case stepOnError:
			st.OnError = d.Sym()
		case stepRetries:
			st.Retries = int(d.Int())
		case stepBackoff:
			st.Backoff = d.Sym()
		case stepMaxBackoff:
			st.MaxBackoff = d.Sym()
		case stepTimeout:
			st.Timeout = d.Sym()
		case stepVar:
			var v dgl.Variable
			d.Msg(func(d *Decoder) { decodeVariable(d, &v) })
			st.Variables = append(st.Variables, v)
		case stepRule:
			var r dgl.Rule
			d.Msg(func(d *Decoder) { decodeRule(d, &r) })
			st.Rules = append(st.Rules, r)
		case stepOp:
			d.Msg(func(d *Decoder) { decodeOp(d, &st.Operation) })
		case stepPure:
			st.Pure = d.Bool()
		case stepOutputs:
			st.Outputs = d.Sym()
		default:
			d.Skip()
		}
	}
}

func decodeOp(d *Decoder, op *dgl.Operation) {
	for d.Next() {
		switch d.Field() {
		case opType:
			op.Type = d.Sym()
		case opParam:
			var p dgl.Param
			d.Msg(func(d *Decoder) {
				for d.Next() {
					switch d.Field() {
					case 1:
						p.Name = d.Sym()
					case 2:
						p.Value = d.Str()
					default:
						d.Skip()
					}
				}
			})
			op.Params = append(op.Params, p)
		default:
			d.Skip()
		}
	}
}

// AppendResponse encodes a dgl.Response as a standalone payload.
func AppendResponse(e *Encoder, resp *dgl.Response) {
	e.Begin(MsgResponse)
	if resp.Ack != nil {
		a := resp.Ack
		e.Msg(respAck, func(e *Encoder) {
			e.Sym(1, a.ID)
			e.Sym(2, a.Status)
			e.Bool(3, a.Valid)
			e.Str(4, a.Message)
		})
	}
	if resp.Status != nil {
		st := resp.Status
		e.Msg(respStatus, func(e *Encoder) { statusFields(e, st) })
	}
	e.Str(respErr, resp.Error)
}

func statusFields(e *Encoder, st *dgl.FlowStatus) {
	e.Sym(fsID, st.ID)
	e.Sym(fsName, st.Name)
	e.Sym(fsKind, st.Kind)
	e.Sym(fsState, st.State)
	e.Sym(fsStarted, st.Started)
	e.Sym(fsFinished, st.Finished)
	e.Sym(fsDelegated, st.Delegated)
	e.Str(fsErr, st.Error)
	for i := range st.Children {
		c := &st.Children[i]
		e.Msg(fsChild, func(e *Encoder) { statusFields(e, c) })
	}
}

// DecodeResponse decodes a MsgResponse payload.
func DecodeResponse(payload []byte) (*dgl.Response, error) {
	d, err := NewDecoder(payload, MsgResponse)
	if err != nil {
		return nil, err
	}
	resp := &dgl.Response{}
	for d.Next() {
		switch d.Field() {
		case respAck:
			a := &dgl.Ack{}
			d.Msg(func(d *Decoder) {
				for d.Next() {
					switch d.Field() {
					case 1:
						a.ID = d.Sym()
					case 2:
						a.Status = d.Sym()
					case 3:
						a.Valid = d.Bool()
					case 4:
						a.Message = d.Str()
					default:
						d.Skip()
					}
				}
			})
			resp.Ack = a
		case respStatus:
			st := &dgl.FlowStatus{}
			d.Msg(func(d *Decoder) { decodeStatus(d, st) })
			resp.Status = st
		case respErr:
			resp.Error = d.Str()
		default:
			d.Skip()
		}
	}
	return resp, d.Err()
}

func decodeStatus(d *Decoder, st *dgl.FlowStatus) {
	for d.Next() {
		switch d.Field() {
		case fsID:
			st.ID = d.Sym()
		case fsName:
			st.Name = d.Sym()
		case fsKind:
			st.Kind = d.Sym()
		case fsState:
			st.State = d.Sym()
		case fsStarted:
			st.Started = d.Sym()
		case fsFinished:
			st.Finished = d.Sym()
		case fsDelegated:
			st.Delegated = d.Sym()
		case fsErr:
			st.Error = d.Str()
		case fsChild:
			var c dgl.FlowStatus
			d.Msg(func(d *Decoder) { decodeStatus(d, &c) })
			st.Children = append(st.Children, c)
		default:
			d.Skip()
		}
	}
}
