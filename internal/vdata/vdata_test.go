package vdata

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"datagridflow/internal/obs"
)

func TestKeyCanonicalization(t *testing.T) {
	a := Key("fft", []string{"/in/a", "/in/b"}, map[string]string{"w": "512", "bins": "64"}, "alice")
	b := Key("fft", []string{"/in/b", "/in/a"}, map[string]string{"bins": "64", "w": "512"}, "alice")
	if a != b {
		t.Fatal("input/param order changed the derivation key")
	}
	if Key("fft", []string{"/in/a", "/in/b"}, map[string]string{"w": "512", "bins": "64"}, "bob") == a {
		t.Fatal("different tenants hashed to the same key")
	}
	if Key("fft", []string{"/in/a", "/in/b"}, map[string]string{"w": "1024", "bins": "64"}, "alice") == a {
		t.Fatal("different bindings hashed to the same key")
	}
	if Key("wavelet", []string{"/in/a", "/in/b"}, map[string]string{"w": "512", "bins": "64"}, "alice") == a {
		t.Fatal("different transformations hashed to the same key")
	}
	if len(a) != 32 {
		t.Fatalf("key length %d, want 32 hex chars", len(a))
	}
}

func TestPublishLookupTenantScoped(t *testing.T) {
	c, err := Open("", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	k := Key("fft", []string{"/in/raw"}, nil, "alice")
	if err := c.Publish(Entry{Key: k, Tenant: "alice", Op: "fft", Outputs: []string{"/out/s"}, Result: "done:fft"}); err != nil {
		t.Fatal(err)
	}
	e, ok := c.Lookup("alice", k)
	if !ok || e.Result != "done:fft" {
		t.Fatalf("lookup miss for published entry: %+v %v", e, ok)
	}
	// A stolen key must not cross the tenant boundary.
	if _, ok := c.Lookup("bob", k); ok {
		t.Fatal("cross-tenant lookup succeeded")
	}
	if _, ok := c.Lookup("alice", "no-such-key"); ok {
		t.Fatal("lookup hit for unknown key")
	}
	if err := c.Publish(Entry{}); err == nil {
		t.Fatal("publish with empty key succeeded")
	}
}

func TestInvalidateByKeyAndOutput(t *testing.T) {
	c, err := Open("", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	k1 := Key("fft", []string{"/in/a"}, nil, "alice")
	k2 := Key("wavelet", []string{"/in/b"}, nil, "alice")
	k3 := Key("fft", []string{"/in/c"}, nil, "bob")
	must := func(e Entry) {
		t.Helper()
		if err := c.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	must(Entry{Key: k1, Tenant: "alice", Op: "fft", Outputs: []string{"/out/shared"}})
	must(Entry{Key: k2, Tenant: "alice", Op: "wavelet", Outputs: []string{"/out/shared"}})
	must(Entry{Key: k3, Tenant: "bob", Op: "fft", Outputs: []string{"/out/shared"}})

	// Invalidation by output drops every one of the tenant's
	// derivations for that path — and only that tenant's.
	n, err := c.Invalidate("alice", "/out/shared")
	if err != nil || n != 2 {
		t.Fatalf("invalidate by output dropped %d (err %v), want 2", n, err)
	}
	if _, ok := c.Lookup("alice", k1); ok {
		t.Fatal("k1 survived output invalidation")
	}
	if _, ok := c.Lookup("alice", k2); ok {
		t.Fatal("k2 survived output invalidation")
	}
	if _, ok := c.Lookup("bob", k3); !ok {
		t.Fatal("bob's derivation was invalidated by alice")
	}

	// Invalidation by key.
	if n, _ := c.Invalidate("bob", k3); n != 1 {
		t.Fatalf("invalidate by key dropped %d, want 1", n)
	}
	if c.Len() != 0 {
		t.Fatalf("catalog not empty: %d", c.Len())
	}
	// Idempotent on unknown targets.
	if n, _ := c.Invalidate("alice", "/out/never"); n != 0 {
		t.Fatalf("invalidate of unknown target dropped %d", n)
	}
}

func TestRepublishRetiresStaleOutputs(t *testing.T) {
	c, err := Open("", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	k := Key("fft", []string{"/in/a"}, nil, "alice")
	if err := c.Publish(Entry{Key: k, Tenant: "alice", Outputs: []string{"/out/v1"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(Entry{Key: k, Tenant: "alice", Outputs: []string{"/out/v2"}}); err != nil {
		t.Fatal(err)
	}
	// Invalidating the retired path must not kill the live entry.
	if n, _ := c.Invalidate("alice", "/out/v1"); n != 0 {
		t.Fatalf("stale output invalidation dropped %d entries", n)
	}
	if _, ok := c.Lookup("alice", k); !ok {
		t.Fatal("live derivation lost to stale-path invalidation")
	}
}

func TestDurabilityAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	c.SetPeer("peer-a")
	if c.Peer() != "peer-a" {
		t.Fatal("peer name not set")
	}
	keys := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		k := Key("fft", []string{fmt.Sprintf("/in/%d", i)}, nil, "alice")
		keys = append(keys, k)
		if err := c.Publish(Entry{Key: k, Tenant: "alice", Op: "fft",
			Outputs: []string{fmt.Sprintf("/out/%d", i)}, Result: "done"}); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := c.Invalidate("alice", keys[0]); n != 1 {
		t.Fatal("invalidate failed")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 4 {
		t.Fatalf("replayed %d entries, want 4", c2.Len())
	}
	if _, ok := c2.Lookup("alice", keys[0]); ok {
		t.Fatal("invalidated entry resurrected by replay")
	}
	e, ok := c2.Lookup("alice", keys[3])
	if !ok || e.Peer != "peer-a" {
		t.Fatalf("replayed entry lost fields: %+v %v", e, ok)
	}
	st := c2.Stats()
	if !st.Durable || st.Entries != 4 || st.ReplayRecords != 6 {
		t.Fatalf("stats after replay: %+v", st)
	}
	if got := len(c2.Keys()); got != 4 {
		t.Fatalf("Keys returned %d, want 4", got)
	}
	// Output index must be rebuilt by replay too.
	if n, _ := c2.Invalidate("alice", "/out/2"); n != 1 {
		t.Fatal("output index not rebuilt on replay")
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	k := Key("fft", []string{"/in/a"}, nil, "alice")
	if err := c.Publish(Entry{Key: k, Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage with no trailing newline.
	f, err := os.OpenFile(filepath.Join(dir, LogName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","entry":{"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := Open(dir, obs.NewRegistry())
	if err != nil {
		t.Fatalf("torn tail broke replay: %v", err)
	}
	defer c2.Close()
	if _, ok := c2.Lookup("alice", k); !ok {
		t.Fatal("complete record lost behind torn tail")
	}
	if c2.Len() != 1 {
		t.Fatalf("torn tail materialized: %d entries", c2.Len())
	}
	// And the catalog keeps accepting durable publishes after the tear.
	k2 := Key("fft", []string{"/in/b"}, nil, "alice")
	if err := c2.Publish(Entry{Key: k2, Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPublishLookup(t *testing.T) {
	c, err := Open(t.TempDir(), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				k := Key("op", []string{fmt.Sprintf("/in/%d/%d", w, i)}, nil, "t")
				if err := c.Publish(Entry{Key: k, Tenant: "t", Outputs: []string{fmt.Sprintf("/out/%d/%d", w, i)}}); err != nil {
					t.Error(err)
					return
				}
				if _, ok := c.Lookup("t", k); !ok {
					t.Errorf("published entry not visible")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != 200 {
		t.Fatalf("expected 200 entries, got %d", c.Len())
	}
}
