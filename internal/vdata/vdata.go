// Package vdata is the distributed virtual-data plane: a durable,
// tenant-scoped catalog of memoized derivations (docs/VDATA.md).
//
// The paper's §2.3 virtual-data scenario — "if the required output data
// is already available, it need not be derived again" — is realized
// here for the real engine: a pure DGL step's (transformation, sorted
// inputs, parameter bindings, tenant) tuple hashes to a derivation key;
// the first execution publishes the step's result under that key, and
// every later execution of the same derivation skips the work and
// grafts the memoized result. Entries persist through the store's
// group-committed writer (store.GroupFile) and survive restart; over
// wire 1.8 any peer's derivation is visible fleet-wide (docs/WIRE.md).
package vdata

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"datagridflow/internal/obs"
	"datagridflow/internal/store"
)

// Entry is one memoized derivation: the canonical key, the tuple it
// hashes, the declared outputs, and the step result value the engine
// grafts on a hit.
type Entry struct {
	Key     string            `json:"key"`
	Tenant  string            `json:"tenant"`
	Op      string            `json:"op"`
	Inputs  []string          `json:"inputs,omitempty"`
	Params  map[string]string `json:"params,omitempty"`
	Outputs []string          `json:"outputs,omitempty"`
	Result  string            `json:"result,omitempty"`
	// Peer names the peer that first derived the entry, so a grafted
	// cross-peer hit keeps its provenance and vdata-locality placement
	// can route future pure subflows to the holder.
	Peer string `json:"peer,omitempty"`
	Unix int64  `json:"unix,omitempty"`
}

// Key derives the canonical derivation key for (transformation, inputs,
// parameter bindings, tenant). Input order is irrelevant — the same
// data through the same code under the same bindings is the same
// derivation — and the tenant is part of the tuple, so no tenant can
// ever observe (or poison) another tenant's derivations.
func Key(op string, inputs []string, params map[string]string, tenant string) string {
	sorted := append([]string(nil), inputs...)
	sort.Strings(sorted)
	kvs := make([]string, 0, len(params))
	for k, v := range params {
		kvs = append(kvs, k+"\x01"+v)
	}
	sort.Strings(kvs)
	h := sha256.Sum256([]byte(op + "\x00" + tenant + "\x00" +
		strings.Join(sorted, "\x00") + "\x00\x02" + strings.Join(kvs, "\x00")))
	return hex.EncodeToString(h[:16])
}

// record is one line of the catalog log: a publish ("put") or an
// invalidation ("del").
type record struct {
	Op    string `json:"op"`
	Entry *Entry `json:"entry,omitempty"`
	Key   string `json:"key,omitempty"`
}

// Stats is the catalog's shape, served by the wire "vdata" verb and
// printed by `dgfctl vdata stats`.
type Stats struct {
	Entries       int    `json:"entries"`
	Tenants       int    `json:"tenants"`
	Publishes     uint64 `json:"publishes"`
	Invalidations uint64 `json:"invalidations"`
	ReplayRecords int    `json:"replay_records"`
	Durable       bool   `json:"durable"`
}

// Catalog is the derivation catalog. All reads and writes are safe for
// concurrent use; a durable catalog appends every mutation through a
// group-committed log and replays it on open.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	// byOutput maps tenant-scoped output paths to the keys that derived
	// them, for invalidation by path. A set per output: two derivations
	// may share an output path (see internal/scheduler/virtualdata.go).
	byOutput map[string]map[string]struct{}

	log  *store.GroupFile // nil: memory-only (1.7 degradation, tests)
	reg  *obs.Registry
	peer string
	// announce, when set (SetAnnounce), is called after each successful
	// Publish with the new derivation key — the hook the wire peer uses
	// to advertise holdings to the lookup registry.
	announce func(key string)

	publishes     uint64
	invalidations uint64
	replayed      int
}

// LogName is the catalog log's file name inside its directory.
const LogName = "vdata.log"

// Open opens (creating if needed) the catalog in dir, replaying its
// log. An empty dir opens a memory-only catalog — memoization without
// durability, the same degradation a 1.7-only fleet gets.
func Open(dir string, reg *obs.Registry) (*Catalog, error) {
	if reg == nil {
		reg = obs.Default()
	}
	c := &Catalog{
		entries:  make(map[string]*Entry),
		byOutput: make(map[string]map[string]struct{}),
		reg:      reg,
	}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vdata: %w", err)
	}
	path := filepath.Join(dir, LogName)
	if err := c.replay(path); err != nil {
		return nil, err
	}
	log, err := store.OpenGroupFile(path)
	if err != nil {
		return nil, err
	}
	log.SetObs(reg)
	c.log = log
	c.gauge()
	return c, nil
}

// replay loads the catalog log, applying puts and dels in order. A
// torn tail (crash mid-append) is tolerated: the partial line is
// skipped and the next append overwrites nothing — the log is
// append-only, so the torn bytes are simply dead.
func (c *Catalog) replay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("vdata: replay %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var r record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			continue // torn or foreign line: skip, keep replaying
		}
		switch r.Op {
		case "put":
			if r.Entry != nil && r.Entry.Key != "" {
				c.applyPut(r.Entry)
			}
		case "del":
			c.applyDel(r.Key)
		}
		c.replayed++
	}
	return sc.Err()
}

// SetPeer names this catalog's peer; published entries carry it so
// remote grafts keep their origin.
func (c *Catalog) SetPeer(name string) {
	c.mu.Lock()
	c.peer = name
	c.mu.Unlock()
}

// SetAnnounce installs a hook called (outside the catalog lock) after
// each successful Publish with the new derivation key. The wire layer
// uses it to announce holdings fleet-wide (docs/VDATA.md); nil removes
// the hook.
func (c *Catalog) SetAnnounce(fn func(key string)) {
	c.mu.Lock()
	c.announce = fn
	c.mu.Unlock()
}

// Peer returns the configured peer name.
func (c *Catalog) Peer() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.peer
}

func outputKey(tenant, output string) string { return tenant + "\x00" + output }

// applyPut updates the in-memory index only (replay and Publish share
// it). Caller holds mu or is single-threaded (replay).
func (c *Catalog) applyPut(e *Entry) {
	if old := c.entries[e.Key]; old != nil {
		for _, out := range old.Outputs {
			ok := outputKey(old.Tenant, out)
			if set := c.byOutput[ok]; set != nil {
				delete(set, e.Key)
				if len(set) == 0 {
					delete(c.byOutput, ok)
				}
			}
		}
	}
	cp := *e
	c.entries[e.Key] = &cp
	for _, out := range e.Outputs {
		ok := outputKey(e.Tenant, out)
		set := c.byOutput[ok]
		if set == nil {
			set = make(map[string]struct{})
			c.byOutput[ok] = set
		}
		set[e.Key] = struct{}{}
	}
}

func (c *Catalog) applyDel(key string) {
	e := c.entries[key]
	if e == nil {
		return
	}
	for _, out := range e.Outputs {
		ok := outputKey(e.Tenant, out)
		if set := c.byOutput[ok]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(c.byOutput, ok)
			}
		}
	}
	delete(c.entries, key)
}

// Lookup returns the entry for key if it is recorded for tenant. A key
// recorded under a different tenant is invisible: the tenant is part of
// the key derivation, but the check here makes cross-tenant probing of
// stolen keys fail too.
func (c *Catalog) Lookup(tenant, key string) (Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e := c.entries[key]
	if e == nil || e.Tenant != tenant {
		return Entry{}, false
	}
	return *e, true
}

// Publish records a derivation durably (when the catalog has a log) and
// indexes it. The entry's Peer defaults to the catalog's peer name.
func (c *Catalog) Publish(e Entry) error {
	if e.Key == "" {
		return fmt.Errorf("vdata: publish: empty key")
	}
	c.mu.Lock()
	if e.Peer == "" {
		e.Peer = c.peer
	}
	line, err := json.Marshal(record{Op: "put", Entry: &e})
	if err != nil {
		c.mu.Unlock()
		return err
	}
	log := c.log
	announce := c.announce
	c.applyPut(&e)
	c.publishes++
	c.reg.Counter("vdata_publishes_total").Inc()
	c.gaugeLocked()
	c.mu.Unlock()
	if log != nil {
		if err := log.Append(line); err != nil {
			return fmt.Errorf("vdata: publish: %w", err)
		}
	}
	if announce != nil {
		announce(e.Key)
	}
	return nil
}

// Invalidate removes derivations for tenant by key or by output path
// (every derivation that declared the path), returning how many were
// dropped. Each drop is logged durably, so invalidations survive
// restart too.
func (c *Catalog) Invalidate(tenant, target string) (int, error) {
	c.mu.Lock()
	var keys []string
	if e := c.entries[target]; e != nil && e.Tenant == tenant {
		keys = append(keys, target)
	}
	for k := range c.byOutput[outputKey(tenant, target)] {
		if e := c.entries[k]; e != nil && e.Tenant == tenant {
			keys = append(keys, k)
		}
	}
	var lines [][]byte
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		line, err := json.Marshal(record{Op: "del", Key: k})
		if err != nil {
			c.mu.Unlock()
			return 0, err
		}
		lines = append(lines, line)
		c.applyDel(k)
		c.invalidations++
		c.reg.Counter("vdata_invalidations_total").Inc()
	}
	log := c.log
	c.gaugeLocked()
	c.mu.Unlock()
	for _, line := range lines {
		if log != nil {
			if err := log.Append(line); err != nil {
				return len(lines), fmt.Errorf("vdata: invalidate: %w", err)
			}
		}
	}
	return len(lines), nil
}

// Stats returns the catalog's shape.
func (c *Catalog) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tenants := make(map[string]struct{}, 8)
	for _, e := range c.entries {
		tenants[e.Tenant] = struct{}{}
	}
	return Stats{
		Entries:       len(c.entries),
		Tenants:       len(tenants),
		Publishes:     c.publishes,
		Invalidations: c.invalidations,
		ReplayRecords: c.replayed,
		Durable:       c.log != nil,
	}
}

// Len returns the number of recorded derivations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Keys returns every recorded derivation key (for registry
// re-announcement after restart).
func (c *Catalog) Keys() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (c *Catalog) gauge() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.gaugeLocked()
}

func (c *Catalog) gaugeLocked() {
	c.reg.Gauge("vdata_entries").Set(int64(len(c.entries)))
}

// Close syncs and closes the catalog log.
func (c *Catalog) Close() error {
	c.mu.Lock()
	log := c.log
	c.log = nil
	c.mu.Unlock()
	if log != nil {
		return log.Close()
	}
	return nil
}
