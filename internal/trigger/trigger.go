// Package trigger implements datagrid triggers (paper §2.2): mappings
// from events in the logical namespace to processes initiated in
// response. A trigger has the three components the paper names —
//
//   - Event: any change in the datagrid namespace (ingest, replicate,
//     delete, metadata update, ...), deliverable before or after the
//     change completes;
//   - Condition: an expression over the event's attributes (and the
//     triggering user/path), in the same language as DGL tConditions;
//   - Actions: datagrid operations or whole DGL flows executed when the
//     condition holds.
//
// Before-phase triggers are synchronous and may veto the operation
// (retention policies). After-phase trigger actions run asynchronously on
// a worker pool — datagrid processes are non-transactional (paper §2.2),
// so actions observe, rather than participate in, the triggering
// operation. Flush drains the queue for deterministic tests and
// experiments.
//
// The paper flags multi-user trigger ordering as an open research issue;
// the firing log this package keeps, combined with the event bus's
// pluggable delivery order, is what experiment E8 uses to measure outcome
// divergence under different orderings.
package trigger

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/expr"
	"datagridflow/internal/matrix"
)

// Errors returned by the manager.
var (
	// ErrExists reports a duplicate trigger name.
	ErrExists = errors.New("trigger: already defined")
	// ErrNotFound reports an unknown trigger name.
	ErrNotFound = errors.New("trigger: not found")
	// ErrClosed reports use of a closed manager.
	ErrClosed = errors.New("trigger: manager closed")
	// ErrQueueFull reports that the firing queue overflowed; the firing
	// is dropped and logged.
	ErrQueueFull = errors.New("trigger: firing queue full")
)

// Trigger is one event-condition-action definition.
type Trigger struct {
	// Name identifies the trigger grid-wide.
	Name string
	// Owner is the grid user who defined the trigger; actions execute
	// with the owner's identity and permissions.
	Owner string
	// Events selects the namespace event types to match (empty = all).
	Events []dgms.EventType
	// Phase selects before- or after-event delivery.
	Phase dgms.Phase
	// Condition is an expression over the event environment: $path,
	// $user, $type, plus every event detail key (e.g. $resource, $size,
	// $attr, $value). Empty means "always".
	Condition string
	// Veto, valid only for Before triggers, rejects the operation when
	// the condition matches.
	Veto bool
	// VetoMessage is the error text for vetoed operations.
	VetoMessage string
	// Operations run in order when the condition matches (After phase).
	// Parameters interpolate against the event environment.
	Operations []dgl.Operation
	// Flow, if set, is launched as a full DGL execution when the
	// condition matches (After phase). The event environment is injected
	// as flow variables ("event_path", "event_user", ...).
	Flow *dgl.Flow
}

// Firing records one trigger activation for audit and experiments.
type Firing struct {
	Trigger string
	Event   dgms.Event
	At      time.Time
	// Vetoed is set when a before-trigger rejected the operation.
	Vetoed bool
	// Err records an action failure (nil firings succeeded).
	Err error
}

// Manager owns trigger definitions and their subscriptions on one grid.
type Manager struct {
	grid   *dgms.Grid
	engine *matrix.Engine

	mu       sync.Mutex
	closed   bool
	triggers map[string]*registered
	firings  []Firing

	queue chan work
	wg    sync.WaitGroup
	idle  sync.Cond // signalled when pending returns to zero
	pend  int
}

type registered struct {
	def   Trigger
	cond  *expr.Expr // nil = always
	subID int64
	fired int64
}

type work struct {
	trig *registered
	ev   dgms.Event
}

// NewManager creates a trigger manager over the grid, executing actions
// through the given engine with `workers` concurrent action runners
// (default 4) and a bounded queue of `queueCap` pending firings (default
// 1024).
func NewManager(grid *dgms.Grid, engine *matrix.Engine, workers, queueCap int) *Manager {
	if workers <= 0 {
		workers = 4
	}
	if queueCap <= 0 {
		queueCap = 1024
	}
	m := &Manager{
		grid:     grid,
		engine:   engine,
		triggers: make(map[string]*registered),
		queue:    make(chan work, queueCap),
	}
	m.idle.L = &m.mu
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Define validates and registers a trigger.
func (m *Manager) Define(t Trigger) error {
	if t.Name == "" {
		return fmt.Errorf("trigger: empty name")
	}
	if t.Owner == "" {
		return fmt.Errorf("trigger %q: empty owner", t.Name)
	}
	if t.Veto && t.Phase != dgms.Before {
		return fmt.Errorf("trigger %q: veto requires the before phase", t.Name)
	}
	if t.Phase == dgms.Before && (len(t.Operations) > 0 || t.Flow != nil) {
		return fmt.Errorf("trigger %q: before-phase triggers may only veto; attach actions to an after trigger", t.Name)
	}
	var cond *expr.Expr
	if t.Condition != "" {
		var err error
		cond, err = expr.Parse(t.Condition)
		if err != nil {
			return fmt.Errorf("trigger %q: condition: %w", t.Name, err)
		}
	}
	known := m.engine.KnownOps()
	for i := range t.Operations {
		op := t.Operations[i]
		if !known[op.Type] {
			return fmt.Errorf("trigger %q: unknown operation %q", t.Name, op.Type)
		}
	}
	if t.Flow != nil {
		if err := dgl.ValidateFlow(t.Flow, known); err != nil {
			return fmt.Errorf("trigger %q: %w", t.Name, err)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if _, ok := m.triggers[t.Name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, t.Name)
	}
	reg := &registered{def: t, cond: cond}
	reg.subID = m.grid.Bus().Subscribe(t.Phase, func(ev dgms.Event) error {
		return m.dispatch(reg, ev)
	}, t.Events...)
	m.triggers[t.Name] = reg
	return nil
}

// Remove unregisters a trigger.
func (m *Manager) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	reg, ok := m.triggers[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	m.grid.Bus().Unsubscribe(reg.subID)
	delete(m.triggers, name)
	return nil
}

// Names lists defined triggers, sorted.
func (m *Manager) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.triggers))
	for n := range m.triggers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FireCount returns how many times the named trigger has matched.
func (m *Manager) FireCount(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if reg, ok := m.triggers[name]; ok {
		return reg.fired
	}
	return 0
}

// Firings returns a copy of the firing log.
func (m *Manager) Firings() []Firing {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Firing(nil), m.firings...)
}

// eventEnv builds the expression environment for an event. Besides the
// event's own fields and details, conditions can probe the simulated
// instant ($hour, $weekday) — enough to window-gate a trigger ("only
// archive outside working hours") without an external scheduler.
func eventEnv(ev dgms.Event) expr.MapEnv {
	env := expr.MapEnv{
		"path":    expr.String(ev.Path),
		"user":    expr.String(ev.User),
		"type":    expr.String(string(ev.Type)),
		"phase":   expr.String(ev.Phase.String()),
		"hour":    expr.Int(int64(ev.Time.Hour())),
		"weekday": expr.String(ev.Time.Weekday().String()),
	}
	for k, v := range ev.Detail {
		env[k] = expr.String(v)
	}
	return env
}

// dispatch runs on the event publisher's goroutine. Before-phase matches
// may veto; after-phase matches enqueue their actions.
func (m *Manager) dispatch(reg *registered, ev dgms.Event) error {
	// Ignore events caused by this trigger's own actions to break direct
	// self-recursion (ingest-trigger ingests a file, ...).
	if ev.User == reg.def.Owner && reg.def.Phase == dgms.After && ev.Detail["trigger"] == reg.def.Name {
		return nil
	}
	if reg.cond != nil {
		ok, err := reg.cond.EvalBool(eventEnv(ev))
		if err != nil || !ok {
			return nil // condition errors are treated as non-matches
		}
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	reg.fired++
	m.grid.Obs().Counter("trigger_firings_total", "trigger", reg.def.Name).Inc()
	if reg.def.Phase == dgms.Before {
		firing := Firing{Trigger: reg.def.Name, Event: ev, At: m.grid.Clock().Now(), Vetoed: reg.def.Veto}
		m.firings = append(m.firings, firing)
		m.mu.Unlock()
		if reg.def.Veto {
			m.grid.Obs().Counter("trigger_vetoes_total", "trigger", reg.def.Name).Inc()
			msg := reg.def.VetoMessage
			if msg == "" {
				msg = "operation vetoed by trigger " + reg.def.Name
			}
			return errors.New(msg)
		}
		return nil
	}
	m.pend++
	m.mu.Unlock()
	select {
	case m.queue <- work{trig: reg, ev: ev}:
		return nil
	default:
		m.grid.Obs().Counter("trigger_queue_drops_total").Inc()
		m.mu.Lock()
		m.pend--
		m.firings = append(m.firings, Firing{
			Trigger: reg.def.Name, Event: ev, At: m.grid.Clock().Now(),
			Err: ErrQueueFull,
		})
		m.mu.Unlock()
		return nil
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for w := range m.queue {
		err := m.runActions(w.trig, w.ev)
		if err != nil {
			m.grid.Obs().Counter("trigger_action_errors_total", "trigger", w.trig.def.Name).Inc()
		}
		m.mu.Lock()
		m.firings = append(m.firings, Firing{
			Trigger: w.trig.def.Name, Event: w.ev,
			At: m.grid.Clock().Now(), Err: err,
		})
		m.pend--
		if m.pend == 0 {
			m.idle.Broadcast()
		}
		m.mu.Unlock()
	}
}

// runActions executes a matched trigger's operations/flow through the
// engine, as the trigger owner, wrapped in a synthetic one-shot flow so
// provenance and status tracking apply.
func (m *Manager) runActions(reg *registered, ev dgms.Event) error {
	env := eventEnv(ev)
	if len(reg.def.Operations) > 0 {
		b := dgl.NewFlow("trigger:" + reg.def.Name)
		for k, v := range envStrings(env) {
			b.Var("event_"+k, v)
		}
		for i, op := range reg.def.Operations {
			interp := dgl.Operation{Type: op.Type}
			for _, p := range op.Params {
				val, err := expr.Interpolate(p.Value, env)
				if err != nil {
					return err
				}
				interp.Params = append(interp.Params, dgl.Param{Name: p.Name, Value: val})
			}
			b.Step(fmt.Sprintf("action%d", i), interp)
		}
		ex, err := m.engine.Run(reg.def.Owner, b.Flow())
		if err != nil {
			return err
		}
		if err := ex.Wait(); err != nil {
			return err
		}
	}
	if reg.def.Flow != nil {
		f := *reg.def.Flow
		for k, v := range envStrings(env) {
			f.Variables = append(f.Variables, dgl.Variable{Name: "event_" + k, Value: v})
		}
		ex, err := m.engine.Run(reg.def.Owner, f)
		if err != nil {
			return err
		}
		if err := ex.Wait(); err != nil {
			return err
		}
	}
	return nil
}

func envStrings(env expr.MapEnv) map[string]string {
	out := make(map[string]string, len(env))
	for k, v := range env {
		out[k] = v.AsString()
	}
	return out
}

// Flush blocks until every queued firing has been processed.
func (m *Manager) Flush() {
	m.mu.Lock()
	for m.pend > 0 {
		m.idle.Wait()
	}
	m.mu.Unlock()
}

// Close drains the queue and stops the workers. Triggers stop firing.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for name, reg := range m.triggers {
		m.grid.Bus().Unsubscribe(reg.subID)
		delete(m.triggers, name)
	}
	m.mu.Unlock()
	close(m.queue)
	m.wg.Wait()
}
