package trigger

// xml.go gives trigger definitions an interoperable XML form, matching
// the paper's call for a language describing "triggers with respect to
// files, the metadata that are associated with those files, data
// collections, data storage resources" — the same DGL operation and
// parameter vocabulary is reused for trigger actions, so one document
// format covers both flows and triggers.

import (
	"encoding/xml"
	"errors"
	"fmt"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
)

// ErrInvalidDoc wraps trigger-document validation failures.
var ErrInvalidDoc = errors.New("trigger: invalid definition document")

// Definitions is a document holding any number of trigger definitions.
type Definitions struct {
	XMLName  xml.Name     `xml:"datagridTriggers"`
	Triggers []TriggerDoc `xml:"trigger"`
}

// TriggerDoc is the XML form of one trigger.
type TriggerDoc struct {
	Name  string `xml:"name,attr"`
	Owner string `xml:"owner,attr"`
	// Phase is "before" or "after" (default "after").
	Phase string `xml:"phase,attr,omitempty"`
	// Events lists the event types to match (empty = all).
	Events []string `xml:"event,omitempty"`
	// Condition is the tCondition over the event environment.
	Condition string `xml:"condition,omitempty"`
	// Veto (before phase only) rejects matching operations.
	Veto        bool   `xml:"veto,omitempty"`
	VetoMessage string `xml:"vetoMessage,omitempty"`
	// Actions are DGL operations executed on match (after phase).
	Actions []dgl.Operation `xml:"operation,omitempty"`
	// Flow, if present, is launched as a full DGL flow on match.
	Flow *dgl.Flow `xml:"flow,omitempty"`
}

// ParseDefinitions decodes a trigger-definition document.
func ParseDefinitions(data []byte) (*Definitions, error) {
	var doc Definitions
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trigger: parse definitions: %w", err)
	}
	if len(doc.Triggers) == 0 {
		return nil, fmt.Errorf("%w: no triggers", ErrInvalidDoc)
	}
	return &doc, nil
}

// Marshal renders the definitions as indented XML.
func (d *Definitions) Marshal() ([]byte, error) {
	b, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), b...), nil
}

// knownEvents validates event names in documents.
var knownEvents = map[string]dgms.EventType{
	string(dgms.EventIngest):     dgms.EventIngest,
	string(dgms.EventReplicate):  dgms.EventReplicate,
	string(dgms.EventMigrate):    dgms.EventMigrate,
	string(dgms.EventTrim):       dgms.EventTrim,
	string(dgms.EventDelete):     dgms.EventDelete,
	string(dgms.EventCollection): dgms.EventCollection,
	string(dgms.EventMetaSet):    dgms.EventMetaSet,
	string(dgms.EventMove):       dgms.EventMove,
	string(dgms.EventAccess):     dgms.EventAccess,
}

// Build converts the document form into a Trigger ready for
// Manager.Define (which performs the full semantic validation).
func (d *TriggerDoc) Build() (Trigger, error) {
	t := Trigger{
		Name:        d.Name,
		Owner:       d.Owner,
		Condition:   d.Condition,
		Veto:        d.Veto,
		VetoMessage: d.VetoMessage,
		Operations:  d.Actions,
		Flow:        d.Flow,
	}
	switch d.Phase {
	case "", "after":
		t.Phase = dgms.After
	case "before":
		t.Phase = dgms.Before
	default:
		return Trigger{}, fmt.Errorf("%w: trigger %q: unknown phase %q", ErrInvalidDoc, d.Name, d.Phase)
	}
	for _, ev := range d.Events {
		typ, ok := knownEvents[ev]
		if !ok {
			return Trigger{}, fmt.Errorf("%w: trigger %q: unknown event %q", ErrInvalidDoc, d.Name, ev)
		}
		t.Events = append(t.Events, typ)
	}
	return t, nil
}

// DefineAll builds and registers every trigger in the document,
// returning the names defined. On the first error, previously defined
// triggers from this document are removed again (all-or-nothing).
func (m *Manager) DefineAll(doc *Definitions) ([]string, error) {
	var defined []string
	for i := range doc.Triggers {
		t, err := doc.Triggers[i].Build()
		if err == nil {
			err = m.Define(t)
		}
		if err != nil {
			for _, name := range defined {
				_ = m.Remove(name)
			}
			return nil, err
		}
		defined = append(defined, t.Name)
	}
	return defined, nil
}
