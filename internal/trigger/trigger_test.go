package trigger

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/vfs"
)

func setup(t testing.TB) (*dgms.Grid, *matrix.Engine, *Manager) {
	t.Helper()
	g := dgms.New(dgms.Options{})
	for _, r := range []*vfs.Resource{
		vfs.New("disk1", "sdsc", vfs.Disk, 0),
		vfs.New("tape", "archive", vfs.Archive, 0),
	} {
		if err := g.RegisterResource(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid/in"); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"user", "robot"} {
		if err := g.Namespace().SetPermission("/grid", u, namespace.PermWrite); err != nil {
			t.Fatal(err)
		}
	}
	e := matrix.NewEngine(g)
	m := NewManager(g, e, 2, 64)
	t.Cleanup(m.Close)
	return g, e, m
}

func TestMetadataOnIngest(t *testing.T) {
	g, _, m := setup(t)
	// The paper's first simple use-case: "creating metadata when a file
	// is created".
	err := m.Define(Trigger{
		Name: "tag-dat-files", Owner: "robot",
		Events: []dgms.EventType{dgms.EventIngest}, Phase: dgms.After,
		Condition: "endsWith($path, '.dat')",
		Operations: []dgl.Operation{
			dgl.Op(dgl.OpSetMeta, map[string]string{"path": "$path", "attr": "kind", "value": "waveform"}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Ingest("user", "/grid/in/w1.dat", 100, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Ingest("user", "/grid/in/readme.txt", 10, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	v, ok, _ := g.Namespace().GetMeta("/grid/in/w1.dat", "kind")
	if !ok || v != "waveform" {
		t.Errorf("trigger metadata = %q, %v", v, ok)
	}
	if _, ok, _ := g.Namespace().GetMeta("/grid/in/readme.txt", "kind"); ok {
		t.Errorf("condition did not filter")
	}
	if m.FireCount("tag-dat-files") != 1 {
		t.Errorf("FireCount = %d", m.FireCount("tag-dat-files"))
	}
	firings := m.Firings()
	if len(firings) != 1 || firings[0].Err != nil || firings[0].Trigger != "tag-dat-files" {
		t.Errorf("firings = %+v", firings)
	}
}

func TestAutoReplicationTrigger(t *testing.T) {
	g, _, m := setup(t)
	// "automating replication of certain data based on their meta-data":
	// here, replicate big ingests to tape.
	err := m.Define(Trigger{
		Name: "replicate-big", Owner: "robot",
		Events: []dgms.EventType{dgms.EventIngest}, Phase: dgms.After,
		Condition: "num($size) >= 1048576",
		Operations: []dgl.Operation{
			dgl.Op(dgl.OpReplicate, map[string]string{"path": "$path", "to": "tape"}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Ingest("user", "/grid/in/big", 2<<20, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Ingest("user", "/grid/in/small", 10, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	reps, _ := g.Namespace().Replicas("/grid/in/big")
	if len(reps) != 2 {
		t.Errorf("big file replicas = %d", len(reps))
	}
	reps, _ = g.Namespace().Replicas("/grid/in/small")
	if len(reps) != 1 {
		t.Errorf("small file replicas = %d", len(reps))
	}
}

func TestVetoTrigger(t *testing.T) {
	g, _, m := setup(t)
	err := m.Define(Trigger{
		Name: "retention", Owner: "robot",
		Events: []dgms.EventType{dgms.EventDelete}, Phase: dgms.Before,
		Condition:   "startsWith($path, '/grid/in/archive')",
		Veto:        true,
		VetoMessage: "archived data is immutable",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Ingest("user", "/grid/in/archive-x", 10, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Ingest("user", "/grid/in/scratch", 10, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	err = g.Delete("user", "/grid/in/archive-x")
	if !errors.Is(err, dgms.ErrVetoed) || !strings.Contains(err.Error(), "immutable") {
		t.Errorf("veto: %v", err)
	}
	if !g.Namespace().Exists("/grid/in/archive-x") {
		t.Errorf("vetoed delete removed the object")
	}
	// Unmatched paths delete normally.
	if err := g.Delete("user", "/grid/in/scratch"); err != nil {
		t.Errorf("unmatched delete: %v", err)
	}
	f := m.Firings()
	if len(f) != 1 || !f[0].Vetoed {
		t.Errorf("veto firing log = %+v", f)
	}
}

func TestFlowAction(t *testing.T) {
	g, _, m := setup(t)
	// A trigger can launch a whole DGL flow; event fields arrive as
	// event_* variables.
	flow := dgl.NewFlow("post-ingest").
		Step("tag", dgl.Op(dgl.OpSetMeta, map[string]string{
			"path": "$event_path", "attr": "ingested-by", "value": "$event_user",
		})).Flow()
	err := m.Define(Trigger{
		Name: "pipeline", Owner: "robot",
		Events: []dgms.EventType{dgms.EventIngest}, Phase: dgms.After,
		Flow: &flow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Ingest("user", "/grid/in/f", 10, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	v, ok, _ := g.Namespace().GetMeta("/grid/in/f", "ingested-by")
	if !ok || v != "user" {
		t.Errorf("flow action meta = %q, %v", v, ok)
	}
}

func TestDefineValidation(t *testing.T) {
	_, _, m := setup(t)
	cases := []Trigger{
		{Name: "", Owner: "u"},
		{Name: "t", Owner: ""},
		{Name: "t", Owner: "u", Phase: dgms.After, Veto: true},
		{Name: "t", Owner: "u", Phase: dgms.Before,
			Operations: []dgl.Operation{dgl.Op(dgl.OpNoop, nil)}},
		{Name: "t", Owner: "u", Condition: "((", Phase: dgms.After},
		{Name: "t", Owner: "u", Phase: dgms.After,
			Operations: []dgl.Operation{{Type: "bogus"}}},
	}
	for i, tr := range cases {
		if err := m.Define(tr); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Invalid flow action.
	bad := dgl.Flow{Name: "x"} // no control
	if err := m.Define(Trigger{Name: "t", Owner: "u", Phase: dgms.After, Flow: &bad}); err == nil {
		t.Errorf("invalid flow accepted")
	}
	// Duplicate name.
	ok := Trigger{Name: "dup", Owner: "u", Phase: dgms.After}
	if err := m.Define(ok); err != nil {
		t.Fatal(err)
	}
	if err := m.Define(ok); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestRemove(t *testing.T) {
	g, _, m := setup(t)
	err := m.Define(Trigger{
		Name: "once", Owner: "robot",
		Events: []dgms.EventType{dgms.EventIngest}, Phase: dgms.After,
		Operations: []dgl.Operation{
			dgl.Op(dgl.OpSetMeta, map[string]string{"path": "$path", "attr": "seen", "value": "1"}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Names(); len(got) != 1 || got[0] != "once" {
		t.Errorf("Names = %v", got)
	}
	if err := m.Remove("once"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("once"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
	if err := g.Ingest("user", "/grid/in/after-remove", 10, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	if _, ok, _ := g.Namespace().GetMeta("/grid/in/after-remove", "seen"); ok {
		t.Errorf("removed trigger still fired")
	}
	if m.FireCount("once") != 0 {
		t.Errorf("FireCount after remove = %d", m.FireCount("once"))
	}
}

func TestMultiTriggerOrderingDivergence(t *testing.T) {
	// Two users' triggers write the same attribute on the same event: the
	// final value depends on delivery order — the open issue the paper
	// calls out, measured in E8.
	run := func(order dgms.DeliveryOrder) string {
		g, _, m := setup(t)
		defer m.Close()
		g.Bus().SetDeliveryOrder(order, 1)
		for _, who := range []string{"alice", "bob"} {
			if err := g.Namespace().SetPermission("/grid", who, namespace.PermWrite); err != nil {
				t.Fatal(err)
			}
			err := m.Define(Trigger{
				Name: "classify-" + who, Owner: who,
				Events: []dgms.EventType{dgms.EventIngest}, Phase: dgms.After,
				Operations: []dgl.Operation{
					dgl.Op(dgl.OpSetMeta, map[string]string{"path": "$path", "attr": "class", "value": who}),
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := g.Ingest("user", "/grid/in/contested", 10, nil, "disk1"); err != nil {
			t.Fatal(err)
		}
		m.Flush()
		v, _, _ := g.Namespace().GetMeta("/grid/in/contested", "class")
		return v
	}
	fwd := run(dgms.OrderSubscription)
	rev := run(dgms.OrderReverse)
	if fwd == "" || rev == "" {
		t.Fatalf("triggers did not fire: %q / %q", fwd, rev)
	}
	if fwd == rev {
		t.Errorf("delivery order had no observable effect (%q / %q)", fwd, rev)
	}
}

func TestSelfRecursionSuppression(t *testing.T) {
	g, _, m := setup(t)
	// A trigger that re-ingests on every ingest would loop forever
	// without the queue cap; verify the system stays bounded. The copy
	// target doesn't match the condition, breaking the loop at depth 1.
	err := m.Define(Trigger{
		Name: "copy-incoming", Owner: "robot",
		Events: []dgms.EventType{dgms.EventIngest}, Phase: dgms.After,
		Condition: "startsWith($path, '/grid/in/')",
		Operations: []dgl.Operation{
			dgl.Op(dgl.OpIngest, map[string]string{
				"path": "/grid/copy-of-$event", "resource": "disk1", "size": "1",
			}),
		},
	})
	// $event is unbound → interpolates to a constant path; second firing
	// would collide and fail rather than loop.
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Ingest("user", "/grid/in/seed", 10, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	if !g.Namespace().Exists("/grid/copy-of-") {
		t.Errorf("trigger copy missing")
	}
	if m.FireCount("copy-incoming") != 1 {
		t.Errorf("FireCount = %d (runaway recursion?)", m.FireCount("copy-incoming"))
	}
}

func TestQueueOverflow(t *testing.T) {
	g, e, _ := setup(t)
	m := NewManager(g, e, 1, 1)
	defer m.Close()
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	e.RegisterOp("slowop", func(c *matrix.OpContext) error {
		started <- struct{}{}
		<-block
		return nil
	})
	// The engine validates against registered ops, but trigger.Define
	// checks builtins only — use a builtin op but a slow path instead:
	// block the single worker with a flow action.
	flow := dgl.NewFlow("slow").Step("s", dgl.Op("slowop", nil)).Flow()
	err := m.Define(Trigger{
		Name: "slow", Owner: "robot",
		Events: []dgms.EventType{dgms.EventIngest}, Phase: dgms.After,
		Flow: &flow,
	})
	if err != nil {
		t.Fatal(err)
	}
	// First ingest occupies the worker, second fills the queue, third
	// overflows and is dropped with ErrQueueFull.
	for i := 0; i < 3; i++ {
		if err := g.Ingest("user", fmt.Sprintf("/grid/in/q%d", i), 1, nil, "disk1"); err != nil {
			t.Fatal(err)
		}
	}
	<-started
	dropped := false
	for _, f := range m.Firings() {
		if errors.Is(f.Err, ErrQueueFull) {
			dropped = true
		}
	}
	close(block)
	m.Flush()
	if !dropped {
		t.Errorf("no overflow recorded; firings = %+v", m.Firings())
	}
}

func TestActionFailureLogged(t *testing.T) {
	g, _, m := setup(t)
	err := m.Define(Trigger{
		Name: "doomed", Owner: "robot",
		Events: []dgms.EventType{dgms.EventIngest}, Phase: dgms.After,
		Operations: []dgl.Operation{
			dgl.Op(dgl.OpReplicate, map[string]string{"path": "$path", "to": "no-such-resource"}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Ingest("user", "/grid/in/x", 10, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	f := m.Firings()
	if len(f) != 1 || f[0].Err == nil {
		t.Errorf("failed action not logged: %+v", f)
	}
}

func TestCloseIdempotentAndRejects(t *testing.T) {
	g, e, _ := setup(t)
	m := NewManager(g, e, 0, 0) // defaults kick in
	m.Close()
	m.Close() // idempotent
	if err := m.Define(Trigger{Name: "late", Owner: "u", Phase: dgms.After}); !errors.Is(err, ErrClosed) {
		t.Errorf("define after close: %v", err)
	}
}

func BenchmarkE8TriggerMatching(b *testing.B) {
	g, e, _ := setup(b)
	m := NewManager(g, e, 4, 4096)
	defer m.Close()
	for i := 0; i < 20; i++ {
		err := m.Define(Trigger{
			Name: fmt.Sprintf("t%d", i), Owner: "robot",
			Events: []dgms.EventType{dgms.EventIngest}, Phase: dgms.After,
			Condition: fmt.Sprintf("endsWith($path, '.%03d')", i),
			Operations: []dgl.Operation{
				dgl.Op(dgl.OpSetMeta, map[string]string{"path": "$path", "attr": "t", "value": fmt.Sprint(i)}),
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/grid/in/f%d.%03d", i, i%20)
		if err := g.Ingest("user", path, 1, nil, "disk1"); err != nil {
			b.Fatal(err)
		}
	}
	m.Flush()
}

func TestTimeGatedCondition(t *testing.T) {
	g, _, m := setup(t)
	// Only archive during the night shift: the condition reads $hour from
	// the simulated clock.
	err := m.Define(Trigger{
		Name: "night-archive", Owner: "robot",
		Events: []dgms.EventType{dgms.EventIngest}, Phase: dgms.After,
		Condition: "$hour >= 20 || $hour < 6",
		Operations: []dgl.Operation{
			dgl.Op(dgl.OpReplicate, map[string]string{"path": "$path", "to": "tape"}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// sim.Epoch is midnight: inside the window.
	if err := g.Ingest("user", "/grid/in/night", 10, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	reps, _ := g.Namespace().Replicas("/grid/in/night")
	if len(reps) != 2 {
		t.Errorf("night ingest not archived: %d replicas", len(reps))
	}
	// Midday: outside the window.
	g.Clock().Sleep(12 * time.Hour)
	if err := g.Ingest("user", "/grid/in/noon", 10, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	reps, _ = g.Namespace().Replicas("/grid/in/noon")
	if len(reps) != 1 {
		t.Errorf("noon ingest archived despite window: %d replicas", len(reps))
	}
	if m.FireCount("night-archive") != 1 {
		t.Errorf("FireCount = %d", m.FireCount("night-archive"))
	}
}
