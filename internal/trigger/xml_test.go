package trigger

import (
	"errors"
	"strings"
	"testing"

	"datagridflow/internal/dgms"
)

func sampleTriggersXML() string {
	return `<?xml version="1.0" encoding="UTF-8"?>
<datagridTriggers>
  <trigger name="tag-waveforms" owner="robot" phase="after">
    <event>ingest</event>
    <condition>endsWith($path, '.dat')</condition>
    <operation type="setMeta">
      <param name="path">$path</param>
      <param name="attr">kind</param>
      <param name="value">waveform</param>
    </operation>
  </trigger>
  <trigger name="retention" owner="robot" phase="before">
    <event>delete</event>
    <condition>contains($path, '/archive-')</condition>
    <veto>true</veto>
    <vetoMessage>archived data is immutable</vetoMessage>
  </trigger>
</datagridTriggers>`
}

func TestParseDefinitionsAndDefineAll(t *testing.T) {
	g, _, m := setup(t)
	doc, err := ParseDefinitions([]byte(sampleTriggersXML()))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Triggers) != 2 {
		t.Fatalf("triggers = %d", len(doc.Triggers))
	}
	names, err := m.DefineAll(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "tag-waveforms" {
		t.Errorf("names = %v", names)
	}
	// The after trigger fires from a real ingest.
	if err := g.Ingest("user", "/grid/in/w.dat", 10, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	v, ok, _ := g.Namespace().GetMeta("/grid/in/w.dat", "kind")
	if !ok || v != "waveform" {
		t.Errorf("xml-defined trigger did not fire: %q %v", v, ok)
	}
	// The before trigger vetoes.
	if err := g.Ingest("user", "/grid/in/archive-a", 10, nil, "disk1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Delete("user", "/grid/in/archive-a"); !errors.Is(err, dgms.ErrVetoed) {
		t.Errorf("xml veto: %v", err)
	}
	// Round trip.
	out, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDefinitions(out)
	if err != nil || len(back.Triggers) != 2 {
		t.Errorf("round trip: %v, %v", back, err)
	}
	if !strings.Contains(string(out), `name="retention"`) {
		t.Errorf("marshal output:\n%s", out)
	}
}

func TestDefinitionsErrors(t *testing.T) {
	if _, err := ParseDefinitions([]byte("<bad")); err == nil {
		t.Errorf("bad XML accepted")
	}
	if _, err := ParseDefinitions([]byte("<datagridTriggers></datagridTriggers>")); !errors.Is(err, ErrInvalidDoc) {
		t.Errorf("empty doc: %v", err)
	}
	// Unknown phase.
	bad := TriggerDoc{Name: "x", Owner: "u", Phase: "during"}
	if _, err := bad.Build(); !errors.Is(err, ErrInvalidDoc) {
		t.Errorf("bad phase: %v", err)
	}
	// Unknown event.
	bad = TriggerDoc{Name: "x", Owner: "u", Events: []string{"teleport"}}
	if _, err := bad.Build(); !errors.Is(err, ErrInvalidDoc) {
		t.Errorf("bad event: %v", err)
	}
	// Default phase is after.
	ok := TriggerDoc{Name: "x", Owner: "u", Events: []string{"access"}}
	tr, err := ok.Build()
	if err != nil || tr.Phase != dgms.After || tr.Events[0] != dgms.EventAccess {
		t.Errorf("default phase build = %+v, %v", tr, err)
	}
}

func TestDefineAllRollsBack(t *testing.T) {
	_, _, m := setup(t)
	doc := &Definitions{Triggers: []TriggerDoc{
		{Name: "good", Owner: "robot", Events: []string{"ingest"}},
		{Name: "bad", Owner: "robot", Events: []string{"nope"}},
	}}
	if _, err := m.DefineAll(doc); err == nil {
		t.Fatal("bad document accepted")
	}
	if len(m.Names()) != 0 {
		t.Errorf("partial definitions left behind: %v", m.Names())
	}
}
