// Package vfs simulates the physical storage resources a datagrid
// federates: spinning disk, parallel file systems and tape archives.
//
// Each Resource is a flat blob store with a performance/cost profile.
// Operations return the simulated duration they would take on that class
// of hardware, which callers charge to a sim.Clock or sim.Meter. Objects
// may carry real bytes (examples, checksum tests) or be synthetic —
// size-only records standing in for the multi-terabyte files of the
// paper's production deployments that we obviously cannot materialize.
package vfs

import (
	"crypto/md5"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"datagridflow/internal/dgferr"
)

// Class identifies the kind of physical storage system a resource models.
type Class int

// Storage classes, ordered roughly by access speed.
const (
	// Memory models a RAM cache or staging buffer.
	Memory Class = iota
	// ParallelFS models a high-performance parallel file system (GPFS/Lustre).
	ParallelFS
	// Disk models commodity spinning disk.
	Disk
	// Archive models a tape silo or deep archive with long mount latency.
	Archive
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Memory:
		return "memory"
	case ParallelFS:
		return "parallel-fs"
	case Disk:
		return "disk"
	case Archive:
		return "archive"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Profile is the performance and cost model of a storage class.
type Profile struct {
	// ReadBW and WriteBW are sustained bandwidths in bytes/second.
	ReadBW, WriteBW float64
	// Latency is the fixed per-operation cost (seek, tape mount, ...).
	Latency time.Duration
	// DollarsPerGBMonth is the retention cost used by ILM policies.
	DollarsPerGBMonth float64
}

// DefaultProfile returns the built-in profile for a class. The figures are
// 2005-era: commodity disk ~60 MB/s, GPFS-class parallel FS ~400 MB/s,
// tape ~30 MB/s with a 30 s mount penalty but 20× cheaper retention.
func DefaultProfile(c Class) Profile {
	switch c {
	case Memory:
		return Profile{ReadBW: 2 << 30, WriteBW: 2 << 30, Latency: 100 * time.Microsecond, DollarsPerGBMonth: 50}
	case ParallelFS:
		return Profile{ReadBW: 500 << 20, WriteBW: 400 << 20, Latency: 2 * time.Millisecond, DollarsPerGBMonth: 3}
	case Disk:
		return Profile{ReadBW: 80 << 20, WriteBW: 60 << 20, Latency: 5 * time.Millisecond, DollarsPerGBMonth: 1}
	case Archive:
		return Profile{ReadBW: 20 << 20, WriteBW: 30 << 20, Latency: 30 * time.Second, DollarsPerGBMonth: 0.05}
	default:
		return Profile{ReadBW: 1 << 20, WriteBW: 1 << 20, Latency: time.Second, DollarsPerGBMonth: 1}
	}
}

// Sentinel errors returned by Resource operations. Each wraps its dgferr
// class so callers can match against the public taxonomy.
var (
	// ErrNotFound reports a missing object.
	ErrNotFound = dgferr.Mark(dgferr.ErrNotFound, "vfs: object not found")
	// ErrExists reports an id collision on Put.
	ErrExists = dgferr.Mark(dgferr.ErrExists, "vfs: object already exists")
	// ErrCapacity reports that the resource is full.
	ErrCapacity = dgferr.Mark(dgferr.ErrCapacity, "vfs: resource capacity exceeded")
	// ErrOffline reports an operation against a resource taken offline.
	// Transient (dgferr.ErrResourceDown): retry policies wait it out.
	ErrOffline = dgferr.Mark(dgferr.ErrResourceDown, "vfs: resource offline")
)

// ObjectInfo describes a stored object.
type ObjectInfo struct {
	ID        string
	Size      int64
	Synthetic bool // true when no real bytes are held
	StoredAt  time.Time
}

type object struct {
	info      ObjectInfo
	data      []byte // nil for synthetic objects
	checksum  string // computed lazily
	corrupted bool   // synthetic bit-rot marker
}

// Resource is one simulated physical storage system. It is safe for
// concurrent use.
type Resource struct {
	name    string
	domain  string
	class   Class
	profile Profile

	mu       sync.RWMutex
	offline  bool
	capacity int64
	used     int64
	objects  map[string]*object
	reads    int64
	writes   int64
}

// New creates a resource with the default profile for its class.
// capacity <= 0 means unlimited.
func New(name, domain string, class Class, capacity int64) *Resource {
	return &Resource{
		name:     name,
		domain:   domain,
		class:    class,
		profile:  DefaultProfile(class),
		capacity: capacity,
		objects:  make(map[string]*object),
	}
}

// NewWithProfile creates a resource with an explicit profile.
func NewWithProfile(name, domain string, class Class, capacity int64, p Profile) *Resource {
	r := New(name, domain, class, capacity)
	r.profile = p
	return r
}

// Name returns the resource's unique name.
func (r *Resource) Name() string { return r.name }

// Domain returns the administrative domain that owns the resource.
func (r *Resource) Domain() string { return r.domain }

// Class returns the storage class.
func (r *Resource) Class() Class { return r.class }

// Profile returns the performance/cost profile.
func (r *Resource) Profile() Profile { return r.profile }

// Capacity returns the configured capacity in bytes (0 = unlimited).
func (r *Resource) Capacity() int64 { return r.capacity }

// Used returns the bytes currently stored.
func (r *Resource) Used() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.used
}

// Free returns remaining capacity; for unlimited resources it returns a
// very large number so comparisons still work.
func (r *Resource) Free() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.capacity <= 0 {
		return 1 << 62
	}
	return r.capacity - r.used
}

// SetOffline marks the resource offline (true) or online (false);
// operations against an offline resource fail with ErrOffline. Experiments
// use this for failure injection.
func (r *Resource) SetOffline(off bool) {
	r.mu.Lock()
	r.offline = off
	r.mu.Unlock()
}

// Offline reports whether the resource is offline.
func (r *Resource) Offline() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.offline
}

func (r *Resource) writeTime(size int64) time.Duration {
	return r.profile.Latency + time.Duration(float64(size)/r.profile.WriteBW*float64(time.Second))
}

func (r *Resource) readTime(size int64) time.Duration {
	return r.profile.Latency + time.Duration(float64(size)/r.profile.ReadBW*float64(time.Second))
}

// ReadTime predicts the duration of reading size bytes without touching
// any object — schedulers use it to price candidate placements.
func (r *Resource) ReadTime(size int64) time.Duration { return r.readTime(size) }

// WriteTime predicts the duration of writing size bytes.
func (r *Resource) WriteTime(size int64) time.Duration { return r.writeTime(size) }

// Put stores an object. data may be nil, in which case the object is
// synthetic and only size is tracked. When data is non-nil its length must
// equal size. The returned duration is the simulated write time.
func (r *Resource) Put(id string, size int64, data []byte, now time.Time) (time.Duration, error) {
	if size < 0 {
		return 0, fmt.Errorf("vfs: negative size %d for %q", size, id)
	}
	if data != nil && int64(len(data)) != size {
		return 0, fmt.Errorf("vfs: size %d does not match data length %d for %q", size, len(data), id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.offline {
		return 0, fmt.Errorf("%w: %s", ErrOffline, r.name)
	}
	if _, ok := r.objects[id]; ok {
		return 0, fmt.Errorf("%w: %s on %s", ErrExists, id, r.name)
	}
	if r.capacity > 0 && r.used+size > r.capacity {
		return 0, fmt.Errorf("%w: %s needs %d, free %d", ErrCapacity, r.name, size, r.capacity-r.used)
	}
	var stored []byte
	if data != nil {
		stored = make([]byte, len(data))
		copy(stored, data)
	}
	r.objects[id] = &object{
		info: ObjectInfo{ID: id, Size: size, Synthetic: data == nil, StoredAt: now},
		data: stored,
	}
	r.used += size
	r.writes++
	return r.writeTime(size), nil
}

// Get retrieves an object's bytes (nil for synthetic objects) plus the
// simulated read time.
func (r *Resource) Get(id string) ([]byte, time.Duration, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.offline {
		return nil, 0, fmt.Errorf("%w: %s", ErrOffline, r.name)
	}
	o, ok := r.objects[id]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s on %s", ErrNotFound, id, r.name)
	}
	var out []byte
	if o.data != nil {
		out = make([]byte, len(o.data))
		copy(out, o.data)
	}
	r.reads++
	return out, r.readTime(o.info.Size), nil
}

// Delete removes an object; the simulated duration is one latency unit.
func (r *Resource) Delete(id string) (time.Duration, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.offline {
		return 0, fmt.Errorf("%w: %s", ErrOffline, r.name)
	}
	o, ok := r.objects[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s on %s", ErrNotFound, id, r.name)
	}
	delete(r.objects, id)
	r.used -= o.info.Size
	return r.profile.Latency, nil
}

// Stat returns metadata about an object without charging read time.
func (r *Resource) Stat(id string) (ObjectInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	o, ok := r.objects[id]
	if !ok {
		return ObjectInfo{}, false
	}
	return o.info, true
}

// Checksum returns the MD5 of the object's content as a hex string, plus
// the simulated time of the full read it implies. Synthetic objects get a
// deterministic pseudo-checksum derived from (id, size), which preserves
// the fixity-verification behaviour (same object ⇒ same digest; a
// different replica id or size ⇒ different digest).
func (r *Resource) Checksum(id string) (string, time.Duration, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.offline {
		return "", 0, fmt.Errorf("%w: %s", ErrOffline, r.name)
	}
	o, ok := r.objects[id]
	if !ok {
		return "", 0, fmt.Errorf("%w: %s on %s", ErrNotFound, id, r.name)
	}
	if o.checksum == "" {
		o.checksum = computeChecksum(o)
	}
	r.reads++
	return o.checksum, r.readTime(o.info.Size), nil
}

func computeChecksum(o *object) string {
	h := md5.New()
	if o.data != nil {
		h.Write(o.data)
	} else {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(o.info.Size))
		h.Write([]byte(o.info.ID))
		h.Write(buf[:])
		if o.corrupted {
			h.Write([]byte("corrupted"))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Corrupt silently damages the stored object — the bit-rot failure mode
// fixity verification exists to catch. Real data has its first byte
// flipped; synthetic objects are marked corrupted, which perturbs their
// pseudo-digest. Any cached checksum is invalidated so the next Checksum
// reflects the damage.
func (r *Resource) Corrupt(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	o, ok := r.objects[id]
	if !ok {
		return fmt.Errorf("%w: %s on %s", ErrNotFound, id, r.name)
	}
	if o.data != nil {
		o.data[0] ^= 0xFF
	} else {
		o.corrupted = true
	}
	o.checksum = ""
	return nil
}

// List returns the ids of all stored objects, sorted.
func (r *Resource) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.objects))
	for id := range r.objects {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of stored objects.
func (r *Resource) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.objects)
}

// Stats reports cumulative read/write operation counts.
func (r *Resource) Stats() (reads, writes int64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.reads, r.writes
}

// RetentionCost returns the dollars charged for keeping the currently
// stored bytes for the given duration, using the class's $/GB-month rate.
// ILM policies compare this across classes when deciding migrations.
func (r *Resource) RetentionCost(d time.Duration) float64 {
	const gbMonth = float64(30*24) * float64(time.Hour)
	r.mu.RLock()
	used := float64(r.used)
	r.mu.RUnlock()
	return used / float64(1<<30) * r.profile.DollarsPerGBMonth * (float64(d) / gbMonth)
}
