package vfs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"datagridflow/internal/sim"
)

func TestPutGetDelete(t *testing.T) {
	r := New("disk1", "sdsc", Disk, 0)
	data := []byte("hello datagrid")
	d, err := r.Put("obj1", int64(len(data)), data, sim.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if d < DefaultProfile(Disk).Latency {
		t.Errorf("write time %v below latency", d)
	}
	got, rd, err := r.Get("obj1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("Get = %q", got)
	}
	if rd <= 0 {
		t.Errorf("read time %v", rd)
	}
	// Returned slice must be a copy.
	got[0] = 'X'
	again, _, _ := r.Get("obj1")
	if string(again) != string(data) {
		t.Errorf("Get returned aliased storage")
	}
	if r.Used() != int64(len(data)) || r.Count() != 1 {
		t.Errorf("Used=%d Count=%d", r.Used(), r.Count())
	}
	if _, err := r.Delete("obj1"); err != nil {
		t.Fatal(err)
	}
	if r.Used() != 0 || r.Count() != 0 {
		t.Errorf("after delete: Used=%d Count=%d", r.Used(), r.Count())
	}
	if _, _, err := r.Get("obj1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete: %v", err)
	}
	if _, err := r.Delete("obj1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestPutErrors(t *testing.T) {
	r := New("d", "x", Disk, 100)
	if _, err := r.Put("a", -1, nil, sim.Epoch); err == nil {
		t.Errorf("negative size accepted")
	}
	if _, err := r.Put("a", 5, []byte("four"), sim.Epoch); err == nil {
		t.Errorf("size/data mismatch accepted")
	}
	if _, err := r.Put("a", 60, nil, sim.Epoch); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("a", 10, nil, sim.Epoch); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate id: %v", err)
	}
	if _, err := r.Put("b", 50, nil, sim.Epoch); !errors.Is(err, ErrCapacity) {
		t.Errorf("over capacity: %v", err)
	}
	if _, err := r.Put("b", 40, nil, sim.Epoch); err != nil {
		t.Errorf("exact fit rejected: %v", err)
	}
	if r.Free() != 0 {
		t.Errorf("Free = %d, want 0", r.Free())
	}
}

func TestSyntheticObjects(t *testing.T) {
	r := New("tape", "archive.org", Archive, 0)
	const size = int64(5 << 30) // 5 GiB — never materialized
	if _, err := r.Put("big", size, nil, sim.Epoch); err != nil {
		t.Fatal(err)
	}
	info, ok := r.Stat("big")
	if !ok || !info.Synthetic || info.Size != size {
		t.Fatalf("Stat = %+v, %v", info, ok)
	}
	data, d, err := r.Get("big")
	if err != nil || data != nil {
		t.Fatalf("synthetic Get = %v, %v", data, err)
	}
	// 5 GiB at 20 MiB/s ≈ 256 s plus 30 s mount.
	if d < 250*time.Second {
		t.Errorf("archive read time suspiciously low: %v", d)
	}
}

func TestChecksum(t *testing.T) {
	r := New("d", "x", Disk, 0)
	if _, err := r.Put("real", 3, []byte("abc"), sim.Epoch); err != nil {
		t.Fatal(err)
	}
	sum, d, err := r.Checksum("real")
	if err != nil {
		t.Fatal(err)
	}
	// md5("abc")
	if sum != "900150983cd24fb0d6963f7d28e17f72" {
		t.Errorf("md5 = %s", sum)
	}
	if d <= 0 {
		t.Errorf("checksum should cost read time")
	}
	// Deterministic and stable for synthetic objects too.
	if _, err := r.Put("syn", 1000, nil, sim.Epoch); err != nil {
		t.Fatal(err)
	}
	s1, _, _ := r.Checksum("syn")
	s2, _, _ := r.Checksum("syn")
	if s1 != s2 || len(s1) != 32 {
		t.Errorf("synthetic checksum unstable: %s vs %s", s1, s2)
	}
	// Two synthetic objects with different ids differ.
	if _, err := r.Put("syn2", 1000, nil, sim.Epoch); err != nil {
		t.Fatal(err)
	}
	s3, _, _ := r.Checksum("syn2")
	if s3 == s1 {
		t.Errorf("distinct synthetic objects share checksum")
	}
	if _, _, err := r.Checksum("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Checksum(missing): %v", err)
	}
}

func TestOffline(t *testing.T) {
	r := New("d", "x", Disk, 0)
	if _, err := r.Put("a", 1, nil, sim.Epoch); err != nil {
		t.Fatal(err)
	}
	r.SetOffline(true)
	if !r.Offline() {
		t.Fatalf("Offline() = false")
	}
	if _, err := r.Put("b", 1, nil, sim.Epoch); !errors.Is(err, ErrOffline) {
		t.Errorf("Put offline: %v", err)
	}
	if _, _, err := r.Get("a"); !errors.Is(err, ErrOffline) {
		t.Errorf("Get offline: %v", err)
	}
	if _, err := r.Delete("a"); !errors.Is(err, ErrOffline) {
		t.Errorf("Delete offline: %v", err)
	}
	if _, _, err := r.Checksum("a"); !errors.Is(err, ErrOffline) {
		t.Errorf("Checksum offline: %v", err)
	}
	r.SetOffline(false)
	if _, _, err := r.Get("a"); err != nil {
		t.Errorf("Get after recovery: %v", err)
	}
}

func TestListAndStats(t *testing.T) {
	r := New("d", "x", ParallelFS, 0)
	for _, id := range []string{"c", "a", "b"} {
		if _, err := r.Put(id, 1, nil, sim.Epoch); err != nil {
			t.Fatal(err)
		}
	}
	list := r.List()
	if strings.Join(list, ",") != "a,b,c" {
		t.Errorf("List = %v", list)
	}
	_, _, _ = r.Get("a")
	_, _, _ = r.Get("b")
	reads, writes := r.Stats()
	if reads != 2 || writes != 3 {
		t.Errorf("Stats = %d reads, %d writes", reads, writes)
	}
}

func TestProfilesOrdering(t *testing.T) {
	// Faster classes must have higher bandwidth and lower latency; cheaper
	// classes must cost less to retain. These orderings drive every ILM
	// decision, so pin them down.
	mem, pfs, disk, tape := DefaultProfile(Memory), DefaultProfile(ParallelFS), DefaultProfile(Disk), DefaultProfile(Archive)
	if !(mem.ReadBW > pfs.ReadBW && pfs.ReadBW > disk.ReadBW && disk.ReadBW > tape.ReadBW) {
		t.Errorf("read bandwidth ordering violated")
	}
	if !(mem.Latency < pfs.Latency && pfs.Latency < disk.Latency && disk.Latency < tape.Latency) {
		t.Errorf("latency ordering violated")
	}
	if !(tape.DollarsPerGBMonth < disk.DollarsPerGBMonth && disk.DollarsPerGBMonth < pfs.DollarsPerGBMonth) {
		t.Errorf("retention cost ordering violated")
	}
	if DefaultProfile(Class(99)).ReadBW <= 0 {
		t.Errorf("unknown class should still get a usable profile")
	}
	for _, c := range []Class{Memory, ParallelFS, Disk, Archive, Class(99)} {
		if c.String() == "" {
			t.Errorf("empty class name for %d", int(c))
		}
	}
}

func TestRetentionCost(t *testing.T) {
	disk := New("d", "x", Disk, 0)
	tape := New("t", "x", Archive, 0)
	const month = 30 * 24 * time.Hour
	if _, err := disk.Put("a", 10<<30, nil, sim.Epoch); err != nil {
		t.Fatal(err)
	}
	if _, err := tape.Put("a", 10<<30, nil, sim.Epoch); err != nil {
		t.Fatal(err)
	}
	cd, ct := disk.RetentionCost(month), tape.RetentionCost(month)
	if cd <= ct {
		t.Errorf("disk retention (%f) should exceed tape (%f)", cd, ct)
	}
	// 10 GB on disk at $1/GB-month ≈ $10.
	if cd < 9.9 || cd > 10.1 {
		t.Errorf("disk cost = %f, want ≈10", cd)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := New("d", "x", Disk, 0)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				id := fmt.Sprintf("w%d-%d", i, j)
				if _, err := r.Put(id, 10, nil, sim.Epoch); err != nil {
					errs <- err
					return
				}
				if _, ok := r.Stat(id); !ok {
					errs <- fmt.Errorf("stat %s missing", id)
					return
				}
				if _, err := r.Delete(id); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if r.Used() != 0 {
		t.Errorf("Used = %d after balanced put/delete", r.Used())
	}
}

// Property: used bytes always equals the sum of stored object sizes.
func TestQuickUsedAccounting(t *testing.T) {
	f := func(sizes []uint16) bool {
		r := New("d", "x", Disk, 0)
		var want int64
		for i, s := range sizes {
			if _, err := r.Put(fmt.Sprintf("o%d", i), int64(s), nil, sim.Epoch); err != nil {
				return false
			}
			want += int64(s)
		}
		if r.Used() != want {
			return false
		}
		// Delete half.
		for i := 0; i < len(sizes); i += 2 {
			if _, err := r.Delete(fmt.Sprintf("o%d", i)); err != nil {
				return false
			}
			want -= int64(sizes[i])
		}
		return r.Used() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: write time is monotone in object size for every class.
func TestQuickWriteTimeMonotone(t *testing.T) {
	classes := []Class{Memory, ParallelFS, Disk, Archive}
	f := func(a, b uint32, ci uint8) bool {
		r := New("d", "x", classes[int(ci)%len(classes)], 0)
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		dx, err1 := r.Put("x", x, nil, sim.Epoch)
		dy, err2 := r.Put("y", y, nil, sim.Epoch)
		return err1 == nil && err2 == nil && dx <= dy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPutSynthetic(b *testing.B) {
	r := New("d", "x", Disk, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Put(fmt.Sprintf("o%d", i), 1<<20, nil, sim.Epoch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksumReal(b *testing.B) {
	r := New("d", "x", Disk, 0)
	data := make([]byte, 1<<16)
	if _, err := r.Put("o", int64(len(data)), data, sim.Epoch); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Checksum("o"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCorrupt(t *testing.T) {
	r := New("d", "x", Disk, 0)
	if _, err := r.Put("real", 3, []byte("abc"), sim.Epoch); err != nil {
		t.Fatal(err)
	}
	before, _, _ := r.Checksum("real")
	if err := r.Corrupt("real"); err != nil {
		t.Fatal(err)
	}
	after, _, _ := r.Checksum("real")
	if before == after {
		t.Errorf("corruption not visible in checksum")
	}
	// Synthetic corruption also perturbs the pseudo-digest.
	if _, err := r.Put("syn", 100, nil, sim.Epoch); err != nil {
		t.Fatal(err)
	}
	sb, _, _ := r.Checksum("syn")
	if err := r.Corrupt("syn"); err != nil {
		t.Fatal(err)
	}
	sa, _, _ := r.Checksum("syn")
	if sb == sa {
		t.Errorf("synthetic corruption not visible")
	}
	if err := r.Corrupt("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Corrupt(missing) = %v", err)
	}
}
