package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/sim"
	"datagridflow/internal/vfs"
)

func noopFlow(name string) dgl.Flow {
	return dgl.NewFlow(name).Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
}

// newRealClockEngine builds an engine whose sleep op blocks in real
// time — the default test grid runs a virtual clock, under which
// OpSleep returns instantly and cannot hold requests in flight.
func newRealClockEngine(t testing.TB) *matrix.Engine {
	t.Helper()
	g := dgms.New(dgms.Options{Clock: sim.RealClock{}})
	if err := g.RegisterResource(vfs.New("disk", "sdsc", vfs.Disk, 0)); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		t.Fatal(err)
	}
	if err := g.Namespace().SetPermission("/grid", "user", namespace.PermWrite); err != nil {
		t.Fatal(err)
	}
	return matrix.NewEngine(g)
}

func sleepFlow(name, dur string) dgl.Flow {
	return dgl.NewFlow(name).
		Step("z", dgl.Op(dgl.OpSleep, map[string]string{"duration": dur})).Flow()
}

// dialMux connects and negotiates the multiplexed protocol.
func dialMux(t testing.TB, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	proto, err := c.Hello()
	if err != nil {
		t.Fatalf("hello: %v", err)
	}
	if !c.Muxed() {
		t.Fatalf("session not muxed after hello (server proto %s)", proto)
	}
	return c
}

func TestMuxFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMuxFrame(&buf, KindDGL, 42, []byte("<x/>")); err != nil {
		t.Fatal(err)
	}
	kind, id, payload, err := ReadMuxFrame(&buf)
	if err != nil || kind != KindDGL || id != 42 || string(payload) != "<x/>" {
		t.Errorf("round trip = %d %d %q %v", kind, id, payload, err)
	}
	// Oversized length prefix is corruption.
	buf.Reset()
	buf.Write([]byte{KindDGL, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 1})
	if _, _, _, err := ReadMuxFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversize err = %v, want ErrFrameTooLarge", err)
	}
}

// TestHelloUpgradesToMux negotiates 1.2 and exercises requests over the
// multiplexed session, including many concurrent submitters on one
// connection.
func TestHelloUpgradesToMux(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c := dialMux(t, addr)

	// Sequential requests still work after the upgrade.
	id, err := c.SubmitAsync("user", noopFlow("one"))
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty execution id")
	}
	// Control verbs multiplex too.
	if _, err := c.List(); err != nil {
		t.Fatalf("list over mux: %v", err)
	}
	// 32 goroutines pipelining over the single connection.
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.SubmitAsyncContext(context.Background(), "user", noopFlow(fmt.Sprintf("f%d", i))); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("pipelined submit: %v", err)
	}
}

// TestNewClientOldServerFallsBack pins the server to the serial
// protocol: the 1.2 client's hello succeeds, the session stays serial,
// and every API — including SubmitBatch via its sequential fallback —
// still works.
func TestNewClientOldServerFallsBack(t *testing.T) {
	e := newEngine(t, "")
	s := NewServerConfig(e, ServerConfig{SerialOnly: true})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	proto, err := c.Hello()
	if err != nil {
		t.Fatalf("hello against serial server: %v", err)
	}
	if proto != "1.1" {
		t.Fatalf("serial server proto = %s, want 1.1", proto)
	}
	if c.Muxed() {
		t.Fatal("client upgraded against a serial-only server")
	}
	if _, err := c.SubmitAsync("user", noopFlow("serial")); err != nil {
		t.Fatalf("serial submit after fallback: %v", err)
	}
	// Batch falls back to one round trip per item.
	reqs := []*dgl.Request{
		dgl.NewAsyncRequest("user", "", noopFlow("b0")),
		dgl.NewAsyncRequest("user", "", noopFlow("b1")),
	}
	resps, err := c.SubmitBatch(context.Background(), "user", reqs)
	if err != nil {
		t.Fatalf("batch fallback: %v", err)
	}
	if len(resps) != 2 || resps[0].Ack == nil || resps[1].Ack == nil {
		t.Fatalf("batch fallback responses = %+v", resps)
	}
}

// TestOldClientNewServerStaysSerial drives the server with raw serial
// frames and no hello — the pre-1.2 client behaviour — and checks the
// 1.2 server answers serially.
func TestOldClientNewServerStaysSerial(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// No Hello: the session must stay serial.
	for i := 0; i < 3; i++ {
		if _, err := c.SubmitAsync("user", noopFlow(fmt.Sprintf("old%d", i))); err != nil {
			t.Fatalf("serial submit %d: %v", i, err)
		}
	}
	// A 1.1 hello must not upgrade the session either.
	res, err := c.controlMsg(context.Background(), Control{Op: "hello", Proto: "1.1"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proto != ProtoVersion(ProtoMajor, ProtoMinor) {
		t.Fatalf("server proto = %s", res.Proto)
	}
	if c.Muxed() {
		t.Fatal("1.1 hello upgraded the session")
	}
	if _, err := c.List(); err != nil {
		t.Fatalf("serial list after 1.1 hello: %v", err)
	}
}

// TestMuxConnDropFailsInflight severs the connection while requests are
// in flight and checks every one fails with a typed resource-down
// error rather than hanging.
func TestMuxConnDropFailsInflight(t *testing.T) {
	e := newRealClockEngine(t)
	// Pool of 1: a slow flow occupies it, so followers queue in
	// admission server-side while the connection dies under them.
	s := NewServerConfig(e, ServerConfig{MaxInflight: 1})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			// Synchronous submits so requests are held in flight.
			flow := sleepFlow(fmt.Sprintf("w%d", i), "600ms")
			_, err := c.SubmitContext(context.Background(), dgl.NewRequest("user", "", flow))
			errs <- err
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // let the requests reach the server
	c.conn.Close()                     // sever mid-stream
	for i := 0; i < 8; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("in-flight request survived a dropped connection")
			}
			if !errors.Is(err, dgferr.ErrResourceDown) && !errors.Is(err, dgferr.ErrCancelled) {
				t.Fatalf("in-flight error = %v, want resource-down class", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("in-flight request hung after connection drop")
		}
	}
	// New requests on the dead client fail fast and typed.
	if _, err := c.List(); !errors.Is(err, dgferr.ErrResourceDown) && !errors.Is(err, dgferr.ErrCancelled) {
		t.Fatalf("post-drop request error = %v, want typed", err)
	}
}

// TestBatchSubmit exercises KindBatch end to end, including per-item
// errors: one malformed flow must not poison its neighbours.
func TestBatchSubmit(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c := dialMux(t, addr)

	good0 := dgl.NewAsyncRequest("user", "", noopFlow("g0"))
	// Invalid: references an unregistered operation type.
	bad := dgl.NewAsyncRequest("user", "", dgl.NewFlow("bad").
		Step("x", dgl.Op("no-such-op", nil)).Flow())
	good1 := dgl.NewAsyncRequest("user", "", noopFlow("g1"))

	resps, err := c.SubmitBatch(context.Background(), "user", []*dgl.Request{good0, bad, good1})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(resps) != 3 {
		t.Fatalf("batch returned %d items, want 3", len(resps))
	}
	if resps[0].Ack == nil || !resps[0].Ack.Valid {
		t.Fatalf("item 0 = %+v, want ack", resps[0])
	}
	if resps[1].Error == "" {
		t.Fatal("invalid item reported no error")
	}
	if derr := dgferr.Decode(resps[1].Error); !errors.Is(derr, dgferr.ErrInvalid) {
		t.Fatalf("item 1 error = %v, want invalid class", derr)
	}
	if resps[2].Ack == nil || !resps[2].Ack.Valid {
		t.Fatalf("item 2 = %+v, want ack (batch aborted after bad item?)", resps[2])
	}
}

// TestSetTimeoutRace hammers SetTimeout from one goroutine while others
// run round trips — the -race regression test for the unsynchronized
// timeout write.
func TestSetTimeoutRace(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c := dialMux(t, addr)

	stop := make(chan struct{})
	churnDone := make(chan struct{})
	var wg sync.WaitGroup
	go func() {
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.SetTimeout(time.Duration(i%5) * time.Second)
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := c.List(); err != nil {
					t.Errorf("list under SetTimeout churn: %v", err)
					return
				}
			}
		}()
	}
	// Serial-mode clients race the same way.
	cs, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 25; j++ {
			cs.SetTimeout(time.Duration(j%3) * time.Second)
			if _, err := cs.List(); err != nil {
				t.Errorf("serial list under SetTimeout churn: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-churnDone
}

// TestMuxRequestContextCancel abandons one pipelined request and checks
// its neighbours are untouched.
func TestMuxRequestContextCancel(t *testing.T) {
	e := newRealClockEngine(t)
	_, addr := startServer(t, e)
	c := dialMux(t, addr)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.SubmitContext(ctx, dgl.NewRequest("user", "", sleepFlow("slow", "1s")))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, dgferr.ErrCancelled) {
			t.Fatalf("cancelled request error = %v, want cancelled class", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request did not return")
	}
	// The connection is still healthy for other requests.
	if _, err := c.SubmitAsync("user", noopFlow("after")); err != nil {
		t.Fatalf("request after cancel: %v", err)
	}
}

// TestAdmissionRejectionOverWire fills one user's admission queue and
// checks the overflow request comes back as a typed capacity error.
func TestAdmissionRejectionOverWire(t *testing.T) {
	e := newRealClockEngine(t)
	s := NewServerConfig(e, ServerConfig{MaxInflight: 1, MaxUserQueue: 1})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c := dialMux(t, addr)

	results := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			req := dgl.NewRequest("user", "", sleepFlow(fmt.Sprintf("s%d", i), "600ms"))
			resp, err := c.SubmitContext(context.Background(), req)
			if err == nil && resp.Error != "" {
				err = dgferr.Decode(resp.Error)
			}
			results <- err
		}(i)
		time.Sleep(50 * time.Millisecond) // deterministic arrival order
	}
	var rejected int
	for i := 0; i < 3; i++ {
		select {
		case err := <-results:
			if errors.Is(err, dgferr.ErrCapacity) {
				rejected++
			} else if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("request hung")
		}
	}
	if rejected != 1 {
		t.Fatalf("rejected = %d, want exactly 1 (pool 1 + queue 1 + shed 1)", rejected)
	}
}
