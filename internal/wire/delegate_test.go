package wire

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/matrix"
	"datagridflow/internal/provenance"
)

func delegatePayload(t *testing.T, user string, flow dgl.Flow) Delegate {
	t.Helper()
	doc, err := dgl.Marshal(dgl.NewAsyncRequest(user, "", flow))
	if err != nil {
		t.Fatal(err)
	}
	return Delegate{
		User:       user,
		Request:    string(doc),
		Origin:     "origin-peer",
		ParentExec: "origin-peer:dgf-000001",
		ParentNode: "origin-peer:dgf-000001/parent/sub",
	}
}

func TestDelegateRoundTrip(t *testing.T) {
	e := newEngine(t, "remote:")
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	if !c.CanDelegate() {
		major, minor := c.ServerProto()
		t.Fatalf("CanDelegate = false after hello (server %d.%d)", major, minor)
	}

	flow := dgl.NewFlow("sub").
		Step("ingest", dgl.Op(dgl.OpIngest, map[string]string{
			"path": "/grid/deleg.dat", "size": "64", "resource": "diskremote:",
		})).Flow()
	res, err := c.Delegate(context.Background(), delegatePayload(t, "user", flow))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || !strings.HasPrefix(res.ID, "remote:") {
		t.Fatalf("result = %+v", res)
	}
	st, err := dgl.ParseFlowStatus([]byte(res.Status))
	if err != nil || st.State != "succeeded" {
		t.Fatalf("status = %+v, %v", st, err)
	}
	if !e.Grid().Namespace().Exists("/grid/deleg.dat") {
		t.Errorf("delegated ingest missing on remote")
	}
	// The serving peer records the delegation in provenance.
	prov := e.Grid().Provenance().Query(provenance.Filter{})
	found := false
	for _, rec := range prov {
		if rec.Action == "deleg.serve" && rec.Actor == "origin-peer" {
			found = true
		}
	}
	if !found {
		t.Errorf("no deleg.serve provenance record: %+v", prov)
	}
}

func TestDelegateRemoteFlowFailure(t *testing.T) {
	e := newEngine(t, "remote:")
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	flow := dgl.NewFlow("boom").Step("s", dgl.Op(dgl.OpFail, nil)).Flow()
	res, err := c.Delegate(context.Background(), delegatePayload(t, "user", flow))
	if err == nil {
		t.Fatal("remote failure returned nil error")
	}
	// A non-nil result distinguishes "the flow failed over there" from a
	// transport failure.
	if res == nil || res.OK {
		t.Fatalf("result = %+v", res)
	}
	if res.ID == "" {
		t.Errorf("failed delegation lost its remote id: %+v", res)
	}
	if st, perr := dgl.ParseFlowStatus([]byte(res.Status)); perr != nil || st.State != "failed" {
		t.Errorf("status = %q (%v)", res.Status, perr)
	}
}

func TestDelegateInvalidPayloads(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	// Unparseable request document.
	res, err := c.Delegate(context.Background(), Delegate{User: "user", Request: "not xml"})
	if err == nil || res == nil || !errors.Is(err, dgferr.ErrInvalid) {
		t.Errorf("bad request: res=%+v err=%v", res, err)
	}
	// Request with no flow.
	doc, _ := dgl.Marshal(dgl.NewAsyncRequest("user", "", dgl.Flow{}))
	res, err = c.Delegate(context.Background(), Delegate{User: "user", Request: string(doc)})
	if err == nil || !errors.Is(err, dgferr.ErrInvalid) {
		t.Errorf("flowless request: res=%+v err=%v", res, err)
	}
}

func TestDelegateRefusedByOldServer(t *testing.T) {
	e := newEngine(t, "")
	s := NewServerConfig(e, ServerConfig{ProtoMinor: 2}) // mux yes, delegate no
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	// The client learns the server's feature level from hello and never
	// sends the frame.
	if c.CanDelegate() {
		t.Fatal("CanDelegate = true against a 1.2 server")
	}
	flow := dgl.NewFlow("f").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	if _, err := c.Delegate(context.Background(), delegatePayload(t, "user", flow)); !errors.Is(err, dgferr.ErrProtocol) {
		t.Errorf("Delegate against 1.2 server = %v", err)
	}
}

func TestDelegateOnSerialConnection(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// No Hello: the session never upgrades, so delegate is unavailable.
	flow := dgl.NewFlow("f").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	if _, err := c.Delegate(context.Background(), delegatePayload(t, "user", flow)); !errors.Is(err, dgferr.ErrProtocol) {
		t.Errorf("Delegate without hello = %v", err)
	}
}

// TestDelegateServerShutdownMidFlight covers the deterministic-shutdown
// bugfix: closing the server with a delegation in flight must cancel the
// delegated execution (bounded by DelegateGrace) rather than leak it,
// and the client must see a transport-class failure.
func TestDelegateServerShutdownMidFlight(t *testing.T) {
	e := newEngine(t, "remote:")
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	e.RegisterOp("gate", func(c *matrix.OpContext) error {
		entered <- struct{}{}
		select {
		case <-release:
		case <-time.After(10 * time.Second):
		}
		return nil
	})
	s := NewServerConfig(e, ServerConfig{DelegateGrace: 200 * time.Millisecond})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	// Two steps: cancellation is cooperative, so the in-flight gate step
	// finishes, and the checkpoint before the second step observes it.
	flow := dgl.NewFlow("held").
		Step("s", dgl.Op("gate", nil)).
		Step("after", dgl.Op(dgl.OpNoop, nil)).Flow()
	var wg sync.WaitGroup
	wg.Add(1)
	var res *DelegateResult
	var derr error
	go func() {
		defer wg.Done()
		res, derr = c.Delegate(context.Background(), delegatePayload(t, "user", flow))
	}()
	<-entered
	// Close must return even though the delegated execution is stuck in
	// an op handler: the connection context cancels the delegation,
	// DelegateGrace bounds the wait, and the handler goroutine unwinds.
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("server Close hung on an in-flight delegation")
	}
	wg.Wait()
	if derr == nil || res != nil {
		t.Fatalf("shutdown mid-delegation: res=%+v err=%v", res, derr)
	}
	// The server cancelled the execution before Close returned; once the
	// gate releases, it must settle as cancelled, not keep running.
	close(release)
	ids := e.Executions()
	if len(ids) != 1 {
		t.Fatalf("executions = %v", ids)
	}
	ex, _ := e.Execution(ids[0])
	select {
	case <-ex.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("delegated execution never settled after server close")
	}
	if err := ex.Err(); !errors.Is(err, dgferr.ErrCancelled) {
		t.Errorf("delegated execution err = %v, want cancelled", err)
	}
}

func TestDelegateContextCancel(t *testing.T) {
	e := newEngine(t, "remote:")
	entered := make(chan struct{}, 1)
	e.RegisterOp("gate2", func(c *matrix.OpContext) error {
		entered <- struct{}{}
		time.Sleep(50 * time.Millisecond)
		return nil
	})
	s := NewServerConfig(e, ServerConfig{DelegateGrace: time.Second})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	flow := dgl.NewFlow("held").Step("s", dgl.Op("gate2", nil)).Flow()
	done := make(chan error, 1)
	go func() {
		_, err := c.Delegate(ctx, delegatePayload(t, "user", flow))
		done <- err
	}()
	<-entered
	cancel()
	if err := <-done; err == nil {
		t.Error("cancelled delegation returned nil error")
	}
}
