package wire

import (
	"context"
	"errors"
	"time"

	"datagridflow/internal/replica"
)

// Replicated lifecycle stores (docs/REPLICATION.md).
//
// A replicating peer streams its flow-state store's record log to
// follower peers over kind-6 replicate frames (wire 1.6) and holds
// replicas of the peers it follows. When the registry declares an owner
// dead, the owner's ring successor promotes its replica: the live
// entries are adopted into the successor's engine — re-persisted, so
// they are durable there and re-replicated onward — and takeover costs
// O(live flows), not a full journal replay, with zero acknowledged-
// record loss in quorum mode. The pieces:
//
//   - EnableReplication: wires a replica.Sender to the store tap and a
//     replica.Receiver to the server's kind-6 handler.
//   - replDeliver: the shared transport callback (sender sends, the
//     receiver's chain hop forwards) over the pooled peer clients.
//   - refreshReplication: follower placement + dead-owner promotion,
//     driven from the same heartbeat/rebalance cycle as shard leases.

// ReplicationConfig configures EnableReplication.
type ReplicationConfig struct {
	// Followers is how many follower peers back this owner (1–2
	// typical; `-repl-followers`). Placement is the peer's ring
	// successors in the live member set — deterministically anti-affine
	// to the owner.
	Followers int
	// Mode is the ack mode (`-repl-ack`): quorum, chain or async.
	Mode replica.AckMode
	// Dir is the replica root; each followed source gets a full replica
	// store under <Dir>/<source> (`-repl-dir`).
	Dir string
	// Binary selects the replica stores' segment encoding; incoming
	// blocks are sniffed per block, so it is independent of what the
	// owners send (mixed-codec replication).
	Binary bool
	// AckTimeout bounds quorum/chain waits (default 2s).
	AckTimeout time.Duration
}

// EnableReplication turns this peer into a replicating node: its store's
// durable record stream fans out to follower peers, and the kind-6
// handler accepts (and re-persists) other owners' streams. Call after
// the engine's store is attached and before Start.
func (p *Peer) EnableReplication(cfg ReplicationConfig) error {
	engine := p.server.Engine()
	st := engine.Store()
	if st == nil {
		return errors.New("wire: replication needs the engine's flow-state store (-store)")
	}
	if cfg.Followers <= 0 {
		cfg.Followers = 1
	}
	recv, err := replica.NewReceiver(replica.ReceiverConfig{
		Dir:     cfg.Dir,
		Binary:  cfg.Binary,
		Forward: p.replDeliver,
		Obs:     engine.Obs(),
	})
	if err != nil {
		return err
	}
	p.replCfg = cfg
	p.replReceiver = recv
	p.replSender = replica.NewSender(replica.SenderConfig{
		Source:     p.Name,
		Mode:       cfg.Mode,
		Binary:     cfg.Binary,
		AckTimeout: cfg.AckTimeout,
		Send:       p.replDeliver,
		Snapshot: func() (Replicate, error) {
			recs, seq := st.SnapshotRecords()
			block, err := replica.EncodeBlock(recs, cfg.Binary)
			if err != nil {
				return Replicate{}, err
			}
			return Replicate{Seq: seq, Count: len(recs), Block: block}, nil
		},
		Obs: engine.Obs(),
	})
	p.server.replHandler = recv.Apply
	p.server.replResolver = p.replInfo
	st.SetTap(p.replSender.Replicate)
	return nil
}

// Replicating reports whether EnableReplication has been called.
func (p *Peer) Replicating() bool { return p.replSender != nil }

// replDeliver carries one replicate frame to a named peer over the
// pooled clients — the Sender's transport and the Receiver's chain hop.
// A follower that predates wire 1.6 cannot hold a replica: the frame is
// skipped with a vacuous ack (repl_skipped_peers_total) so a mixed-
// version federation keeps flowing — that follower simply provides no
// protection until it upgrades, the same availability-over-placement
// trade shard routing makes for pre-1.5 owners.
func (p *Peer) replDeliver(peerName string, f Replicate) (ReplicateResult, error) {
	client, err := p.clientFor(peerName)
	if err != nil {
		return ReplicateResult{}, err
	}
	if !client.CanReplicate() {
		p.server.Engine().Obs().Counter("repl_skipped_peers_total", "peer", peerName).Inc()
		end := f.Seq
		if f.Count > 0 {
			end = f.Seq + uint64(f.Count) - 1
		}
		return ReplicateResult{OK: true, AckSeq: end}, nil
	}
	res, err := client.Replicate(context.Background(), f)
	if err != nil {
		// Transport failure: the follower may be dead. Drop the pooled
		// connection so the next attempt re-resolves and re-dials.
		p.DropClient(peerName)
		return ReplicateResult{}, err
	}
	return *res, nil
}

// refreshReplication reconciles replication with the live member set:
// follower placement follows the ring, and a followed source missing
// from the member set — dead as far as the registry's TTL is concerned —
// is promoted by its ring successor. Driven from the same heartbeat
// gossip that renews shard leases, so ownership and replica takeover
// move together.
func (p *Peer) refreshReplication(members []string) {
	if p.replSender == nil {
		return
	}
	p.replSender.SetFollowers(replica.SelectFollowers(p.Name, members, p.replCfg.Followers))
	live := make(map[string]bool, len(members)+1)
	live[p.Name] = true
	for _, m := range members {
		live[m] = true
	}
	for _, src := range p.replReceiver.Sources() {
		if src.Promoted || live[src.Source] {
			continue
		}
		// Exactly one survivor promotes: the dead owner's first ring
		// successor among the live members. Every peer computes the same
		// successor from the same gossip, so replicas held by the other
		// followers stay parked (and heal by snapshot if the flow set
		// moves on).
		succ := replica.SelectFollowers(src.Source, append(append([]string(nil), members...), p.Name), 1)
		if len(succ) == 0 || succ[0] != p.Name {
			continue
		}
		p.promoteSource(src.Source)
	}
}

// promoteSource takes over one dead owner's replica: its live entries
// are adopted into this peer's engine (persisted here, resumed or left
// parked), and — on a sharded peer — adopted flows whose shards this
// peer owns are tracked for drain hand-off.
func (p *Peer) promoteSource(source string) {
	engine := p.server.Engine()
	entries, err := p.replReceiver.Promote(source)
	if err != nil || entries == nil {
		return
	}
	flows := engine.AdoptEntries(entries, source)
	engine.Obs().Counter("repl_promoted_flows_total", "source", source).Add(int64(len(flows)))
	if p.shardMgr == nil {
		return
	}
	for _, f := range flows {
		if sh := p.shardMgr.ShardOf(RoutingKey(f.User, f.Flow)); p.shardMgr.Owns(sh) {
			p.shardMgr.Track(f.ID, sh)
		}
	}
}

// replInfo services the "repl" control verb: this peer's replication
// role — its own stream position and follower set, and the sources it
// holds replicas for.
func (p *Peer) replInfo() *ReplInfo {
	info := &ReplInfo{Mode: string(p.replCfg.Mode)}
	if info.Mode == "" {
		info.Mode = string(replica.ModeQuorum)
	}
	if st := p.server.Engine().Store(); st != nil {
		info.Seq = st.ReplSeq()
	}
	for _, f := range p.replSender.Status() {
		info.Followers = append(info.Followers, ReplFollowerInfo{Peer: f.Peer, AckedSeq: f.AckedSeq})
	}
	for _, s := range p.replReceiver.Sources() {
		info.Sources = append(info.Sources, ReplSourceInfo{
			Source: s.Source, LastSeq: s.LastSeq, Live: s.Live, Promoted: s.Promoted,
		})
	}
	return info
}

// closeReplication detaches the tap and stops the sender and receiver.
func (p *Peer) closeReplication() {
	if p.replSender == nil {
		return
	}
	if st := p.server.Engine().Store(); st != nil {
		st.SetTap(nil)
	}
	p.replSender.Close()
	p.replReceiver.Close()
}
