package wire

import (
	"context"
	"errors"
	"testing"

	"datagridflow/internal/codec"
	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
)

// TestBinaryNegotiation pins the hello matrix for 1.4: a current client
// against a current server negotiates binary; against a 1.3 server it
// stays on the text encodings — and both sessions serve requests.
func TestBinaryNegotiation(t *testing.T) {
	cases := []struct {
		name       string
		serverCfg  ServerConfig
		disable    bool
		wantBinary bool
	}{
		{"1.4 both", ServerConfig{}, false, true},
		{"1.3 server", ServerConfig{ProtoMinor: 3}, false, false},
		{"client opt-out", ServerConfig{}, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newEngine(t, "")
			s := NewServerConfig(e, tc.serverCfg)
			addr, err := s.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(s.Close)
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if tc.disable {
				c.DisableBinary()
			}
			// The default test grid shares the process-wide obs registry:
			// assert on deltas, not absolutes.
			enc0 := e.Obs().Counter("codec_encode_bytes_total").Value()
			fb0 := e.Obs().Counter("codec_fallback_total", "kind", "dgl").Value()
			if _, err := c.Hello(); err != nil {
				t.Fatal(err)
			}
			if got := c.Binary(); got != tc.wantBinary {
				t.Fatalf("Binary() = %v, want %v", got, tc.wantBinary)
			}
			// The session must work either way: sync submit, async +
			// status, and a control verb.
			resp, err := c.SubmitFlow("user", noopFlow("neg"))
			if err != nil || resp.Status == nil || resp.Status.State != "succeeded" {
				t.Fatalf("submit over negotiated session: %+v, %v", resp, err)
			}
			id, err := c.SubmitAsync("user", noopFlow("neg2"))
			if err != nil || id == "" {
				t.Fatalf("async submit: %q, %v", id, err)
			}
			if _, err := c.List(); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Status("user", id, true); err != nil {
				t.Fatal(err)
			}
			// Binary sessions are accounted; legacy dgl payloads against a
			// binary-capable server count as fallbacks.
			encoded := e.Obs().Counter("codec_encode_bytes_total").Value() - enc0
			fellBack := e.Obs().Counter("codec_fallback_total", "kind", "dgl").Value() - fb0
			if tc.wantBinary && (encoded == 0 || fellBack != 0) {
				t.Fatalf("binary session: encode_bytes=%v fallback=%v", encoded, fellBack)
			}
			if !tc.wantBinary && encoded != 0 {
				t.Fatalf("text session produced binary responses: encode_bytes=%v", encoded)
			}
			if tc.name == "client opt-out" && fellBack == 0 {
				t.Fatal("opted-out client not counted as codec fallback")
			}
		})
	}
}

// TestBinaryBatchRoundTrip drives SubmitBatch over a binary session:
// the envelope and every item ride the codec, the reply is positional,
// and per-item failures stay independent.
func TestBinaryBatchRoundTrip(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	if !c.Binary() {
		t.Fatal("expected binary session")
	}
	reqs := []*dgl.Request{
		dgl.NewRequest("user", "", noopFlow("b0")),
		dgl.NewStatusRequest("user", "dgf-missing", false), // fails per-item
		dgl.NewRequest("user", "", noopFlow("b2")),
	}
	resps, err := c.SubmitBatch(context.Background(), "user", reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 3 {
		t.Fatalf("got %d responses, want 3", len(resps))
	}
	if resps[0].Status == nil || resps[0].Status.State != "succeeded" {
		t.Fatalf("item 0: %+v", resps[0])
	}
	if resps[1].Error == "" || !errors.Is(dgferr.Decode(resps[1].Error), dgferr.ErrNotFound) {
		t.Fatalf("item 1 error = %q", resps[1].Error)
	}
	if resps[2].Status == nil || resps[2].Status.State != "succeeded" {
		t.Fatalf("item 2: %+v", resps[2])
	}
}

// TestBinaryControlVerbs runs the store/metrics control surface over a
// binary session — the nested StoreInfo/metrics-blob encodings.
func TestBinaryControlVerbs(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	if !c.Binary() {
		t.Fatal("expected binary session")
	}
	snap, err := c.Metrics()
	if err != nil || len(snap.Counters) == 0 {
		t.Fatalf("metrics over binary: %+v, %v", snap, err)
	}
	// Typed errors survive the binary encoding.
	if _, err := c.StoreStats(); !errors.Is(err, dgferr.ErrInvalid) {
		t.Fatalf("store verb without a store = %v, want ErrInvalid", err)
	}
	if err := c.Pause("dgf-none"); !errors.Is(err, dgferr.ErrNotFound) {
		t.Fatalf("pause unknown = %v, want ErrNotFound", err)
	}
}

// TestBinaryPayloadRefusedByOldServer sends a raw binary DGL frame to a
// server pinned below 1.4: the server must answer with a protocol-class
// error in the legacy encoding, not sever or misparse.
func TestBinaryPayloadRefusedByOldServer(t *testing.T) {
	e := newEngine(t, "")
	s := NewServerConfig(e, ServerConfig{ProtoMinor: 3})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	// A well-behaved 1.4 client never does this after the 1.3 hello; a
	// buggy one must still get a typed answer.
	enc := codec.GetEncoder()
	defer codec.PutEncoder(enc)
	codec.AppendRequest(enc, dgl.NewRequest("user", "", noopFlow("rogue")))
	kind, payload, err := c.roundTrip(context.Background(), KindDGL, enc.Bytes())
	if err != nil || kind != KindDGL {
		t.Fatalf("round trip = %d, %v", kind, err)
	}
	resp, err := parseResponsePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" || !errors.Is(dgferr.Decode(resp.Error), dgferr.ErrProtocol) {
		t.Fatalf("response error = %q, want protocol class", resp.Error)
	}
	// The connection survived: a legacy request still works.
	if _, err := c.SubmitFlow("user", noopFlow("after")); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryDelegateEnvelope drives a delegation over a binary session
// directly at the client level (federation peers get this for free once
// both ends negotiate 1.4).
func TestBinaryDelegateEnvelope(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	if !c.Binary() {
		t.Fatal("expected binary session")
	}
	reqXML, err := dgl.Marshal(dgl.NewRequest("user", "", noopFlow("dlg")))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Delegate(context.Background(), Delegate{
		User: "user", Request: string(reqXML), Origin: "origin-node",
	})
	if err != nil || !res.OK || res.ID == "" {
		t.Fatalf("delegate = %+v, %v", res, err)
	}
	st, err := dgl.ParseFlowStatus([]byte(res.Status))
	if err != nil || st.State != "succeeded" {
		t.Fatalf("delegate status = %+v, %v", st, err)
	}
}
