package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"datagridflow/internal/codec"
	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/fault"
	"datagridflow/internal/matrix"
	"datagridflow/internal/provenance"
	"datagridflow/internal/scheduler"
	"datagridflow/internal/store"
	"datagridflow/internal/tenant"
	"datagridflow/internal/vdata"
)

// Frame header overheads counted by the byte metrics.
const (
	// frameHeaderLen is the serial header (1-byte kind + 4-byte length).
	frameHeaderLen = 5
	// muxHeaderLen adds the 8-byte request id of mux framing.
	muxHeaderLen = 13
)

// muxConnWindow bounds the frames one multiplexed connection may have
// outstanding (decoded or queued for admission) before the server stops
// reading from it — per-connection backpressure, distinct from the
// global admission pool.
const muxConnWindow = 256

// kindName labels metrics by frame kind.
func kindName(kind byte) string {
	switch kind {
	case KindDGL:
		return "dgl"
	case KindControl:
		return "control"
	case KindBatch:
		return "batch"
	case KindDelegate:
		return "delegate"
	case KindRoute:
		return "route"
	case KindReplicate:
		return "replicate"
	default:
		return "unknown"
	}
}

// ServerConfig tunes a wire server.
type ServerConfig struct {
	// MaxInflight bounds concurrently executing DGL/batch requests
	// across all connections (the worker pool the admission scheduler
	// feeds). Default 64. Control verbs bypass admission: pause and
	// cancel must work on a saturated server.
	MaxInflight int
	// MaxUserQueue bounds waiters queued per user beyond the pool;
	// requests past it are rejected with a capacity-class error.
	// Default 256.
	MaxUserQueue int
	// SerialOnly pins the server to the pre-1.2 serial protocol: it
	// advertises 1.1 in hello replies and never upgrades a session to
	// mux framing. A compatibility and testing knob.
	SerialOnly bool
	// ProtoMinor pins the minor version the server advertises (and its
	// feature gate: a server advertising < 1.3 refuses delegate
	// frames). 0 or out-of-range means the current ProtoMinor;
	// SerialOnly overrides to 1.1. A compatibility and interop-testing
	// knob — mixed-version federations rely on it.
	ProtoMinor int
	// DelegateGrace bounds how long a cancelled delegation (client gone
	// or server closing) waits for its execution to unwind before the
	// handler returns — the deterministic-shutdown budget for in-flight
	// delegations. Default 3s.
	DelegateGrace time.Duration
}

// Server exposes a matrix engine over the framed TCP protocol. Serial
// (pre-1.2) sessions handle frames strictly in order, one at a time.
// Sessions negotiated to >= 1.2 via hello switch to multiplexed
// framing: frames carry request ids, the server dispatches each to a
// bounded worker pool behind a per-user fair admission scheduler
// (internal/scheduler.Admission), and responses are written as they
// complete, in any order.
type Server struct {
	engine *matrix.Engine
	cfg    ServerConfig
	adm    *scheduler.Admission
	// statusRouter, when set (by a Peer, before Listen), answers DGL
	// status queries — routing ids owned by other peers across the
	// network. Plain servers leave it nil and answer from the engine.
	statusRouter func(user, id string, detail bool) (*dgl.FlowStatus, error)
	// submitRouter, when set (by a sharded Peer, before Listen), owns
	// flow submissions entirely: it routes to the shard owner or accepts
	// locally, returning the response to send. Plain servers leave it
	// nil and submit to the engine directly.
	submitRouter func(req *dgl.Request) *dgl.Response
	// routeHandler, when set (by a sharded Peer, before Listen),
	// services KindRoute frames — the terminal hop of shard routing.
	routeHandler func(rt Route) RouteResult
	// ownerResolver, when set (by a sharded Peer, before Listen),
	// services the "owner" control verb.
	ownerResolver func(id string) (*OwnerInfo, error)
	// replHandler, when set (by a replicating Peer, before Listen),
	// services KindReplicate frames — applying an owner's record stream
	// into this peer's replica stores.
	replHandler func(f Replicate) ReplicateResult
	// replResolver, when set (by a replicating Peer, before Listen),
	// services the "repl" control verb.
	replResolver func() *ReplInfo
	// Tenancy plane (docs/TENANCY.md), attached before Listen via
	// SetTenancy: auth verifies bearer tokens, tenants holds quotas and
	// scheduling weights, requireAuth rejects untokened submissions.
	// All nil/false means tenancy off — behaviour identical to pre-1.7.
	auth        *tenant.Authority
	tenants     *tenant.Registry
	requireAuth bool

	mu          sync.Mutex
	listener    net.Listener
	conns       map[net.Conn]bool
	closed      bool
	wg          sync.WaitGroup
	fault       *fault.Injector
	faultTarget string
}

// NewServer wraps an engine with default configuration.
func NewServer(engine *matrix.Engine) *Server {
	return NewServerConfig(engine, ServerConfig{})
}

// NewServerConfig wraps an engine with explicit configuration.
func NewServerConfig(engine *matrix.Engine, cfg ServerConfig) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxUserQueue <= 0 {
		cfg.MaxUserQueue = 256
	}
	if cfg.ProtoMinor <= 0 || cfg.ProtoMinor > ProtoMinor {
		cfg.ProtoMinor = ProtoMinor
	}
	if cfg.DelegateGrace <= 0 {
		cfg.DelegateGrace = 3 * time.Second
	}
	return &Server{
		engine: engine,
		cfg:    cfg,
		adm:    scheduler.NewAdmission(cfg.MaxInflight, cfg.MaxUserQueue, engine.Obs()),
		conns:  make(map[net.Conn]bool),
	}
}

// Engine returns the wrapped engine.
func (s *Server) Engine() *matrix.Engine { return s.engine }

// SetTenancy attaches the tenancy plane (docs/TENANCY.md) — call before
// Listen. auth, when non-nil, verifies bearer tokens on hello and every
// submit/batch/delegate/route payload; reg, when non-nil, supplies
// per-tenant quotas and the admission scheduler's weights and is also
// installed as the engine's flow governor (flows-in-flight and
// store-byte enforcement); require rejects untokened submissions
// instead of admitting them under the anonymous tenant.
func (s *Server) SetTenancy(auth *tenant.Authority, reg *tenant.Registry, require bool) {
	s.auth, s.tenants, s.requireAuth = auth, reg, require
	if reg != nil {
		s.adm.SetWeightFn(reg.Weight)
		s.engine.SetGovernor(reg)
	}
}

// tenancyOn reports whether any part of the tenancy plane is attached.
func (s *Server) tenancyOn() bool { return s.auth != nil || s.tenants != nil }

// TenantRegistry returns the quota registry attached with SetTenancy,
// or nil on an untenanted server. The federation layer consults it for
// delegation-slot quotas at the offer point.
func (s *Server) TenantRegistry() *tenant.Registry { return s.tenants }

// resolveTenant derives the accounting identity of a request from its
// bearer token and claimed user name. With an authority attached, a
// present token must verify (forged or expired tokens are always
// rejected, tenant_auth_failures_total) and must agree with a non-empty
// claimed user; an absent token falls back to the claimed identity —
// anonymous-but-admitted, unless the server requires auth. Without an
// authority, tokens are ignored and the claimed identity stands. The
// empty identity canonicalizes to the reserved anonymous tenant.
func (s *Server) resolveTenant(token, user string) (string, error) {
	if s.auth == nil {
		return tenant.Canonical(user), nil
	}
	if token == "" {
		if s.requireAuth {
			s.engine.Obs().Counter("tenant_auth_failures_total").Inc()
			return "", fmt.Errorf("%w: server requires a tenant token", dgferr.ErrAuth)
		}
		return tenant.Canonical(user), nil
	}
	id, err := s.auth.Verify(token)
	if err != nil {
		s.engine.Obs().Counter("tenant_auth_failures_total").Inc()
		return "", err
	}
	if user != "" && user != id {
		s.engine.Obs().Counter("tenant_auth_failures_total").Inc()
		return "", fmt.Errorf("%w: token tenant %q does not match user %q", dgferr.ErrAuth, id, user)
	}
	return id, nil
}

// Admission returns the server's admission scheduler.
func (s *Server) Admission() *scheduler.Admission { return s.adm }

// minor returns the minor version the server advertises — its feature
// level for negotiation and the delegate-frame gate.
func (s *Server) minor() int {
	if s.cfg.SerialOnly {
		return 1
	}
	return s.cfg.ProtoMinor
}

// proto returns the version the server advertises in hello replies.
func (s *Server) proto() string {
	return ProtoVersion(ProtoMajor, s.minor())
}

// SetFault attaches a fault-injection plan to this server under the
// given target name: PeerCrash and ConnDrop events against that target
// sever connections mid-session (a simulated matrixd crash), Latency
// events delay frame handling. Pass nil to detach.
func (s *Server) SetFault(in *fault.Injector, target string) {
	if in != nil {
		in.SetObs(s.engine.Obs())
	}
	s.mu.Lock()
	s.fault, s.faultTarget = in, target
	s.mu.Unlock()
}

// connFault evaluates the server's fault plan for one inbound frame,
// charging induced latency to the clock; drop severs the connection.
func (s *Server) connFault() (drop bool) {
	s.mu.Lock()
	in, target := s.fault, s.faultTarget
	s.mu.Unlock()
	if in == nil {
		return false
	}
	d, lat := in.ConnFault(target)
	if lat > 0 {
		s.engine.Clock().Sleep(lat)
	}
	return d
}

// Listen starts accepting on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address. Serving happens on background
// goroutines; call Close to stop.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return "", errors.New("wire: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn runs the serial (pre-1.2) protocol loop for one connection:
// frames are handled strictly in order, one at a time. A hello exchange
// negotiating >= 1.2 hands the connection over to serveMux.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	o := s.engine.Obs()
	o.Counter("wire_connections_total").Inc()
	o.Gauge("wire_connections_open").Add(1)
	defer func() {
		conn.Close()
		o.Gauge("wire_connections_open").Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// ctx covers admission waits on this connection; cancelled when the
	// serve loop exits (connection gone or server closing).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	remote := conn.RemoteAddr().String()
	for {
		kind, payload, err := ReadFrame(conn)
		if err != nil {
			return // EOF or broken connection
		}
		k := kindName(kind)
		o.Counter("wire_frames_in_total", "kind", k).Inc()
		o.Counter("wire_bytes_in_total").Add(int64(len(payload)) + frameHeaderLen)
		if s.connFault() {
			return // injected crash/drop: sever without a response
		}
		started := s.engine.Clock().Now()
		o.StartSpan("request", k, remote, nil)
		if kind != KindDGL && kind != KindControl && kind != KindBatch && kind != KindDelegate && kind != KindRoute && kind != KindReplicate {
			o.EndSpan("request", k, remote, map[string]string{"outcome": "protocol-violation"})
			return // protocol violation
		}
		data, enc, upgrade, err := s.handleFrame(ctx, kind, payload, false)
		if err != nil {
			if enc != nil {
				codec.PutEncoder(enc)
			}
			o.EndSpan("request", k, remote, map[string]string{"outcome": "encode-error"})
			return
		}
		o.Histogram("wire_request_seconds", "type", k).Observe(s.engine.Clock().Now().Sub(started).Seconds())
		o.EndSpan("request", k, remote, map[string]string{"outcome": "ok"})
		werr := WriteFrame(conn, kind, data)
		if enc != nil {
			codec.PutEncoder(enc)
		}
		if werr != nil {
			return
		}
		o.Counter("wire_frames_out_total", "kind", k).Inc()
		o.Counter("wire_bytes_out_total").Add(int64(len(data)) + frameHeaderLen)
		if upgrade {
			// The hello reply above committed both ends to mux framing.
			s.serveMux(ctx, conn, remote)
			return
		}
	}
}

// serveMux runs the multiplexed (>= 1.2) protocol loop: each frame is
// dispatched to its own handler goroutine — bounded per connection by
// muxConnWindow and globally by the admission scheduler — and responses
// are written under a shared lock as they complete, correlated by
// request id.
func (s *Server) serveMux(ctx context.Context, conn net.Conn, remote string) {
	o := s.engine.Obs()
	var writeMu sync.Mutex
	window := make(chan struct{}, muxConnWindow)
	for {
		kind, id, payload, err := ReadMuxFrame(conn)
		if err != nil {
			return // EOF or broken connection
		}
		k := kindName(kind)
		o.Counter("wire_frames_in_total", "kind", k).Inc()
		o.Counter("wire_bytes_in_total").Add(int64(len(payload)) + muxHeaderLen)
		if s.connFault() {
			return // injected crash/drop: sever without a response
		}
		if kind != KindDGL && kind != KindControl && kind != KindBatch && kind != KindDelegate && kind != KindRoute && kind != KindReplicate {
			o.EndSpan("request", k, remote, map[string]string{"outcome": "protocol-violation"})
			return // protocol violation: sever, as in serial mode
		}
		window <- struct{}{} // per-connection backpressure
		s.wg.Add(1)
		go func(kind byte, id uint64, payload []byte) {
			defer s.wg.Done()
			defer func() { <-window }()
			s.handleMuxFrame(ctx, conn, &writeMu, kind, id, payload, remote)
		}(kind, id, payload)
	}
}

// handleMuxFrame services one pipelined frame and writes its response.
func (s *Server) handleMuxFrame(ctx context.Context, conn net.Conn, writeMu *sync.Mutex, kind byte, id uint64, payload []byte, remote string) {
	o := s.engine.Obs()
	k := kindName(kind)
	started := s.engine.Clock().Now()
	o.StartSpan("request", k, remote, nil)
	data, enc, _, err := s.handleFrame(ctx, kind, payload, true) // no re-upgrade on a muxed session
	if err != nil {
		if enc != nil {
			codec.PutEncoder(enc)
		}
		o.EndSpan("request", k, remote, map[string]string{"outcome": "encode-error"})
		conn.Close() // mirror serial behaviour: an unmarshalable response severs
		return
	}
	o.Histogram("wire_request_seconds", "type", k).Observe(s.engine.Clock().Now().Sub(started).Seconds())
	o.EndSpan("request", k, remote, map[string]string{"outcome": "ok"})
	writeMu.Lock()
	err = WriteMuxFrame(conn, kind, id, data)
	writeMu.Unlock()
	if enc != nil {
		codec.PutEncoder(enc)
	}
	if err != nil {
		return // connection gone; the read loop will notice too
	}
	o.Counter("wire_frames_out_total", "kind", k).Inc()
	o.Counter("wire_bytes_out_total").Add(int64(len(data)) + muxHeaderLen)
}

// binaryOK reports whether this server's advertised version admits
// binary payloads (>= 1.4).
func (s *Server) binaryOK() bool { return s.minor() >= binaryMinor }

// handleFrame services one frame payload — shared by the serial loop
// and the mux dispatcher. The response mirrors the request's encoding:
// a binary payload gets a binary reply, a legacy payload gets XML/JSON.
// When enc is non-nil, data aliases its buffer and the caller must
// codec.PutEncoder(enc) after writing (or on error). muxed suppresses
// the hello upgrade, which is meaningless on an already-muxed session.
func (s *Server) handleFrame(ctx context.Context, kind byte, payload []byte, muxed bool) (data []byte, enc *codec.Encoder, upgrade bool, err error) {
	o := s.engine.Obs()
	bin := codec.IsBinary(payload)
	if bin && !s.binaryOK() {
		// Binary frames against a pre-1.4 server are a negotiation bug,
		// not grounds to sever: answer with a protocol-class error in the
		// legacy encoding, which every client can read (responses are
		// sniffed, never assumed).
		perr := dgferr.Encode(fmt.Errorf(
			"%w: binary payloads need protocol >= %s, server advertises %s",
			dgferr.ErrProtocol, ProtoVersion(ProtoMajor, binaryMinor), s.proto()))
		switch kind {
		case KindDGL:
			data, err = dgl.Marshal(&dgl.Response{Error: perr})
		case KindControl:
			data, err = json.Marshal(ControlResult{Error: perr})
		case KindBatch:
			data, err = json.Marshal(BatchResult{Error: perr})
		case KindDelegate:
			data, err = json.Marshal(DelegateResult{Error: perr})
		case KindRoute:
			data, err = json.Marshal(RouteResult{Error: perr})
		case KindReplicate:
			data, err = json.Marshal(ReplicateResult{Error: perr})
		}
		return data, nil, false, err
	}
	if !bin && s.binaryOK() && kind != KindControl {
		// A legacy payload on a binary-capable server: a pre-1.4 peer, or
		// a client pinned to the text encoding. Control frames don't
		// count — hello negotiation always rides JSON.
		o.Counter("codec_fallback_total", "kind", kindName(kind)).Inc()
	}
	switch kind {
	case KindDGL:
		resp := s.serveDGL(ctx, payload)
		if bin {
			enc = codec.GetEncoder()
			codec.AppendResponse(enc, resp)
			data = enc.Bytes()
		} else {
			data, err = dgl.Marshal(resp)
		}
	case KindControl:
		var res ControlResult
		res, upgrade = s.serveControl(payload)
		if muxed {
			upgrade = false
		}
		if bin {
			enc = codec.GetEncoder()
			appendControlResult(enc, &res)
			data = enc.Bytes()
		} else {
			data, err = json.Marshal(res)
		}
	case KindBatch:
		data, enc, err = s.serveBatch(ctx, payload)
	case KindDelegate:
		res := s.serveDelegate(ctx, payload)
		if bin {
			enc = codec.GetEncoder()
			appendDelegateResult(enc, &res)
			data = enc.Bytes()
		} else {
			data, err = json.Marshal(res)
		}
	case KindRoute:
		// Route envelopes always ride JSON (the hot payload is the
		// embedded request document, which keeps its own encoding).
		res := s.serveRoute(ctx, payload)
		data, err = json.Marshal(res)
	case KindReplicate:
		res := s.serveReplicate(payload)
		if bin {
			enc = codec.GetEncoder()
			appendReplicateResult(enc, &res)
			data = enc.Bytes()
		} else {
			data, err = json.Marshal(res)
		}
	}
	if enc != nil && err == nil {
		o.Counter("codec_encode_bytes_total").Add(int64(len(data)))
	}
	return data, enc, upgrade, err
}

// decodeRequestPayload sniffs a DGL request payload's encoding and
// decodes accordingly: binary via internal/codec, anything else via the
// XML parser.
func decodeRequestPayload(payload []byte) (*dgl.Request, error) {
	if codec.IsBinary(payload) {
		return codec.DecodeRequest(payload)
	}
	return dgl.DecodeRequest(payload)
}

// admit runs a request through the admission scheduler, tracking the
// wire_queue_depth and wire_inflight gauges. On success the caller must
// release() exactly once.
func (s *Server) admit(ctx context.Context, user string) error {
	o := s.engine.Obs()
	o.Gauge("wire_queue_depth").Add(1)
	err := s.adm.Acquire(ctx, user)
	o.Gauge("wire_queue_depth").Add(-1)
	if err != nil {
		return err
	}
	o.Gauge("wire_inflight").Add(1)
	return nil
}

// release returns an admitted request's slot.
func (s *Server) release() {
	s.adm.Release()
	s.engine.Obs().Gauge("wire_inflight").Add(-1)
}

// serveDGL parses one DGL request, runs it through admission, and
// services it. Errors become error responses rather than dropped
// connections — clients always get an answer per request.
func (s *Server) serveDGL(ctx context.Context, payload []byte) *dgl.Response {
	req, err := decodeRequestPayload(payload)
	if err != nil {
		return &dgl.Response{Error: dgferr.Encode(err)}
	}
	id := req.User.Name
	if s.tenancyOn() {
		id, err = s.resolveTenant(req.Token, req.User.Name)
		if err != nil {
			return &dgl.Response{Error: dgferr.Encode(err)}
		}
		// The verified identity is the accounting identity everywhere
		// downstream: engine, store charges, provenance.
		req.User.Name = id
		if s.tenants != nil && req.Flow != nil {
			if err := s.tenants.AllowSubmit(id); err != nil {
				return &dgl.Response{Error: dgferr.Encode(err)}
			}
		}
	}
	if err := s.admit(ctx, id); err != nil {
		return &dgl.Response{Error: dgferr.Encode(err)}
	}
	defer s.release()
	return s.dispatchDGL(req)
}

// dispatchDGL services a decoded, admitted DGL request.
func (s *Server) dispatchDGL(req *dgl.Request) *dgl.Response {
	if q := req.StatusQuery; q != nil && req.Flow == nil && s.statusRouter != nil {
		st, err := s.statusRouter(req.User.Name, q.ID, q.Detail)
		if err != nil {
			return &dgl.Response{Error: dgferr.Encode(err)}
		}
		return &dgl.Response{Status: st}
	}
	if req.Flow != nil && s.submitRouter != nil {
		// A sharded peer owns flow placement: route to the shard owner or
		// accept locally, per the request's route preference.
		return s.submitRouter(req)
	}
	resp, err := s.engine.Submit(req)
	if err != nil {
		return &dgl.Response{Error: dgferr.Encode(err)}
	}
	return resp
}

// serveRoute services a KindRoute frame — the terminal hop of shard
// routing (docs/WIRE.md §"Route frames"): the routing peer resolved
// this server as the shard owner and hands the submission over. The
// handler accepts locally (never re-routes: one hop, no loops) or
// refuses with NotOwner when ownership moved in flight. A routed
// submission occupies one admission slot under the originating user,
// exactly like a direct submit.
func (s *Server) serveRoute(ctx context.Context, payload []byte) RouteResult {
	if s.minor() < routeMinor {
		return RouteResult{Error: dgferr.Encode(fmt.Errorf(
			"%w: route frames need protocol >= %s, server advertises %s",
			dgferr.ErrProtocol, ProtoVersion(ProtoMajor, routeMinor), s.proto()))}
	}
	var rt Route
	if err := json.Unmarshal(payload, &rt); err != nil {
		return RouteResult{Error: dgferr.Encode(
			fmt.Errorf("%w: bad route frame: %v", dgferr.ErrInvalid, err))}
	}
	if s.routeHandler == nil {
		return RouteResult{Error: dgferr.Encode(
			fmt.Errorf("%w: server is not sharded", dgferr.ErrInvalid))}
	}
	id := rt.User
	if s.tenancyOn() {
		var terr error
		id, terr = s.resolveTenant(rt.Token, rt.User)
		if terr != nil {
			return RouteResult{Error: dgferr.Encode(terr)}
		}
		rt.User = id
	}
	if err := s.admit(ctx, id); err != nil {
		return RouteResult{Error: dgferr.Encode(err)}
	}
	defer s.release()
	return s.routeHandler(rt)
}

// serveReplicate services a KindReplicate frame — one block of an
// owner's lifecycle record stream, or a catch-up snapshot, applied into
// this peer's replica store for that owner (docs/REPLICATION.md).
// Replication bypasses admission like control verbs do: a standby that
// stops acking because the primary saturated it would turn overload
// into replication lag, and lag into data-loss exposure.
func (s *Server) serveReplicate(payload []byte) ReplicateResult {
	if s.minor() < replMinor {
		return ReplicateResult{Error: dgferr.Encode(fmt.Errorf(
			"%w: replicate frames need protocol >= %s, server advertises %s",
			dgferr.ErrProtocol, ProtoVersion(ProtoMajor, replMinor), s.proto()))}
	}
	var f Replicate
	if codec.IsBinary(payload) {
		var derr error
		if f, derr = decodeReplicate(payload); derr != nil {
			return ReplicateResult{Error: dgferr.Encode(
				fmt.Errorf("%w: bad replicate frame: %v", dgferr.ErrInvalid, derr))}
		}
	} else if err := json.Unmarshal(payload, &f); err != nil {
		return ReplicateResult{Error: dgferr.Encode(
			fmt.Errorf("%w: bad replicate frame: %v", dgferr.ErrInvalid, err))}
	}
	if s.replHandler == nil {
		return ReplicateResult{Error: dgferr.Encode(
			fmt.Errorf("%w: server is not replicating", dgferr.ErrInvalid))}
	}
	return s.replHandler(f)
}

// serveBatch services a KindBatch frame: N DGL requests in one frame,
// answered positionally. The whole batch occupies one admission slot
// (it is one frame of one user); items fail independently via per-item
// error responses. The reply envelope mirrors the request envelope's
// encoding, and each item's response mirrors that item's encoding —
// a binary envelope may legally carry XML items. Returns encoded reply
// bytes directly (per-item encodings vary, so the caller can't encode);
// the same enc contract as handleFrame applies.
func (s *Server) serveBatch(ctx context.Context, payload []byte) ([]byte, *codec.Encoder, error) {
	bin := codec.IsBinary(payload)
	fail := func(ferr error) ([]byte, *codec.Encoder, error) {
		if bin {
			enc := codec.GetEncoder()
			appendBatchResult(enc, false, dgferr.Encode(ferr), nil)
			return enc.Bytes(), enc, nil
		}
		data, jerr := json.Marshal(BatchResult{Error: dgferr.Encode(ferr)})
		return data, nil, jerr
	}
	var user, token string
	var items [][]byte
	if bin {
		var derr error
		user, token, items, derr = decodeBatch(payload)
		if derr != nil {
			return fail(fmt.Errorf("%w: bad batch frame: %v", dgferr.ErrInvalid, derr))
		}
	} else {
		var b Batch
		if err := json.Unmarshal(payload, &b); err != nil {
			return fail(fmt.Errorf("%w: bad batch frame: %v", dgferr.ErrInvalid, err))
		}
		user = b.User
		token = b.Token
		items = make([][]byte, len(b.Requests))
		for i, r := range b.Requests {
			items[i] = []byte(r)
		}
	}
	id := user
	if s.tenancyOn() {
		var terr error
		id, terr = s.resolveTenant(token, user)
		if terr != nil {
			return fail(terr)
		}
	}
	if err := s.admit(ctx, id); err != nil {
		return fail(err)
	}
	defer s.release()
	out := make([][]byte, len(items))
	for i, doc := range items {
		var resp *dgl.Response
		req, err := decodeRequestPayload(doc)
		if err != nil {
			resp = &dgl.Response{Error: dgferr.Encode(err)}
		} else {
			if s.tenancyOn() {
				// Items run under the envelope's verified identity: an
				// authenticated batch cannot smuggle items for another
				// tenant, and each flow item is rate-charged on its own.
				if s.auth != nil && req.User.Name != "" && req.User.Name != id {
					resp = &dgl.Response{Error: dgferr.Encode(fmt.Errorf(
						"%w: batch item user %q does not match tenant %q",
						dgferr.ErrAuth, req.User.Name, id))}
					out[i] = encodeBatchItem(doc, resp, i)
					continue
				}
				req.User.Name = id
				if s.tenants != nil && req.Flow != nil {
					if err := s.tenants.AllowSubmit(id); err != nil {
						resp = &dgl.Response{Error: dgferr.Encode(err)}
						out[i] = encodeBatchItem(doc, resp, i)
						continue
					}
				}
			}
			resp = s.dispatchDGL(req)
		}
		out[i] = encodeBatchItem(doc, resp, i)
	}
	if bin {
		enc := codec.GetEncoder()
		appendBatchResult(enc, true, "", out)
		return enc.Bytes(), enc, nil
	}
	strs := make([]string, len(out))
	for i, d := range out {
		strs[i] = string(d)
	}
	data, err := json.Marshal(BatchResult{OK: true, Responses: strs})
	return data, nil, err
}

// encodeBatchItem renders one batch item's response in the item's own
// encoding (binary items get binary replies, XML items XML).
func encodeBatchItem(doc []byte, resp *dgl.Response, i int) []byte {
	if codec.IsBinary(doc) {
		ie := codec.GetEncoder()
		codec.AppendResponse(ie, resp)
		data := append([]byte(nil), ie.Bytes()...)
		codec.PutEncoder(ie)
		return data
	}
	data, err := dgl.Marshal(resp)
	if err != nil {
		data, _ = dgl.Marshal(&dgl.Response{Error: dgferr.Encode(
			fmt.Errorf("%w: encoding batch item %d: %v", dgferr.ErrInvalid, i, err))})
	}
	return data
}

// serveDelegate services a KindDelegate frame: run the embedded subflow
// to completion on this peer's engine and answer with its final status.
// A delegation occupies one admission slot for its whole run — the
// remote peer's capacity model sees it exactly like a local flow. When
// ctx is cancelled mid-run (delegating peer gone, or this server
// closing), the execution is cancelled and given DelegateGrace to
// unwind, so shutdown with in-flight delegations is deterministic.
func (s *Server) serveDelegate(ctx context.Context, payload []byte) DelegateResult {
	o := s.engine.Obs()
	outcome := func(out string) {
		o.Counter("wire_delegations_total", "outcome", out).Inc()
	}
	if s.minor() < delegateMinor {
		outcome("refused")
		return DelegateResult{Error: dgferr.Encode(fmt.Errorf(
			"%w: delegate frames need protocol >= %s, server advertises %s",
			dgferr.ErrProtocol, ProtoVersion(ProtoMajor, delegateMinor), s.proto()))}
	}
	var d Delegate
	if codec.IsBinary(payload) {
		var derr error
		if d, derr = decodeDelegate(payload); derr != nil {
			outcome("invalid")
			return DelegateResult{Error: dgferr.Encode(
				fmt.Errorf("%w: bad delegate frame: %v", dgferr.ErrInvalid, derr))}
		}
	} else if err := json.Unmarshal(payload, &d); err != nil {
		outcome("invalid")
		return DelegateResult{Error: dgferr.Encode(
			fmt.Errorf("%w: bad delegate frame: %v", dgferr.ErrInvalid, err))}
	}
	req, err := decodeRequestPayload([]byte(d.Request))
	if err != nil {
		outcome("invalid")
		return DelegateResult{Error: dgferr.Encode(
			fmt.Errorf("%w: %v", dgferr.ErrInvalid, err))}
	}
	if req.Flow == nil {
		outcome("invalid")
		return DelegateResult{Error: dgferr.Encode(
			fmt.Errorf("%w: delegate request carries no flow", dgferr.ErrInvalid))}
	}
	user := d.User
	if user == "" {
		user = req.User.Name
	}
	if s.tenancyOn() {
		// A federated hop preserves identity: the origin forwarded the
		// submitting tenant's token and this peer re-verifies it against
		// its own authority (shared secret). An absent token downgrades
		// the delegation to the claimed (anonymous-but-admitted)
		// identity unless this server requires auth.
		id, terr := s.resolveTenant(d.Token, user)
		if terr != nil {
			outcome("auth-rejected")
			return DelegateResult{Error: dgferr.Encode(terr)}
		}
		user = id
		req.User.Name = id
	}
	if err := s.admit(ctx, user); err != nil {
		outcome("rejected")
		return DelegateResult{Error: dgferr.Encode(err)}
	}
	defer s.release()
	exec, err := s.engine.Start(req.User.Name, *req.Flow)
	if err != nil {
		outcome("error")
		return DelegateResult{Error: dgferr.Encode(err)}
	}
	s.engine.Grid().Provenance().Append(provenance.Record{
		Time:   s.engine.Clock().Now(),
		Actor:  d.Origin,
		Action: "deleg.serve",
		Target: exec.ID,
		FlowID: exec.ID,
		Detail: map[string]string{
			"origin":     d.Origin,
			"parentExec": d.ParentExec,
			"parentNode": d.ParentNode,
		},
	})
	werr := exec.WaitContext(ctx)
	if ctx.Err() != nil {
		exec.Cancel()
		select {
		case <-exec.Done():
		case <-time.After(s.cfg.DelegateGrace):
		}
		outcome("cancelled")
		return DelegateResult{ID: exec.ID, Error: dgferr.Encode(fmt.Errorf(
			"%w: delegation cancelled by server", dgferr.ErrCancelled))}
	}
	res := DelegateResult{ID: exec.ID}
	st := exec.Status(true)
	if data, merr := dgl.Marshal(&st); merr == nil {
		res.Status = string(data)
	}
	if werr != nil {
		outcome("error")
		res.Error = dgferr.Encode(werr)
		return res
	}
	outcome("ok")
	res.OK = true
	return res
}

// serveControl handles one control frame. upgrade reports that the verb
// was a hello negotiating mux framing: the serial loop must switch to
// serveMux right after writing this reply. (On an already-muxed session
// the result is ignored by the caller — no double upgrade.)
func (s *Server) serveControl(payload []byte) (res ControlResult, upgrade bool) {
	var c Control
	if codec.IsBinary(payload) {
		var err error
		if c, err = decodeControl(payload); err != nil {
			return ControlResult{Error: "bad control frame: " + err.Error()}, false
		}
	} else if err := json.Unmarshal(payload, &c); err != nil {
		return ControlResult{Error: "bad control frame: " + err.Error()}, false
	}
	if c.Op == "hello" {
		return s.serveHello(c)
	}
	return s.serveControlOp(c), false
}

// serveHello negotiates the protocol version (docs/WIRE.md, "Version
// negotiation"): major mismatch is refused; a client minor >= 1.2
// upgrades the session to mux framing unless the server is SerialOnly.
func (s *Server) serveHello(c Control) (ControlResult, bool) {
	major, minor, err := ParseProtoVersion(c.Proto)
	if err != nil {
		return ControlResult{Error: dgferr.Encode(
			fmt.Errorf("%w: %v", dgferr.ErrProtocol, err))}, false
	}
	if major != ProtoMajor {
		return ControlResult{Error: dgferr.Encode(fmt.Errorf(
			"%w: client speaks %s, server speaks %s",
			dgferr.ErrProtocol, c.Proto, s.proto()))}, false
	}
	upgrade := !s.cfg.SerialOnly && s.minor() >= muxMinor && MuxSupported(major, minor)
	res := ControlResult{OK: true, Proto: s.proto()}
	if c.Token != "" && s.auth != nil && s.minor() >= tenantMinor {
		// Wire 1.7 credential exchange: a bad token fails the handshake
		// immediately — the client learns its credential is dead before
		// submitting anything.
		id, err := s.auth.Verify(c.Token)
		if err != nil {
			s.engine.Obs().Counter("tenant_auth_failures_total").Inc()
			return ControlResult{Error: dgferr.Encode(err)}, false
		}
		res.Tenant = id
	}
	return res, upgrade
}

// serveControlOp services the non-hello control verbs.
func (s *Server) serveControlOp(c Control) ControlResult {
	if c.Op == "owner" {
		// Resolved before the execution lookup below: an ownership query
		// must not resurrect a passivated execution as a side effect.
		if s.ownerResolver == nil {
			return ControlResult{Error: dgferr.Encode(
				fmt.Errorf("%w: server is not sharded", dgferr.ErrInvalid))}
		}
		info, err := s.ownerResolver(c.ID)
		if err != nil {
			return ControlResult{Error: dgferr.Encode(err)}
		}
		return ControlResult{OK: true, ID: c.ID, Owner: info}
	}
	if c.Op == "tenants" {
		// Like "owner": resolved before the execution lookup so a
		// tenancy probe cannot resurrect anything as a side effect.
		if s.minor() < tenantMinor {
			return ControlResult{Error: dgferr.Encode(fmt.Errorf(
				"%w: tenants verb needs protocol >= %s, server advertises %s",
				dgferr.ErrProtocol, ProtoVersion(ProtoMajor, tenantMinor), s.proto()))}
		}
		info := &TenantsInfo{}
		if s.tenants != nil {
			limit := c.Limit
			if limit <= 0 {
				limit = 20
			}
			info.Enabled = true
			info.Auth = s.auth != nil
			info.Require = s.requireAuth
			info.Registered = s.tenants.Len()
			info.Tenants = s.tenants.Snapshot(limit)
		}
		return ControlResult{OK: true, Tenants: info}
	}
	if c.Op == "vdata" {
		// Like "owner": resolved before the execution lookup so a catalog
		// probe cannot resurrect anything as a side effect.
		return s.serveVdata(c)
	}
	if c.Op == "repl" {
		// Like "owner": resolved before the execution lookup so a status
		// probe cannot resurrect anything as a side effect.
		if s.replResolver == nil {
			return ControlResult{Error: dgferr.Encode(
				fmt.Errorf("%w: server is not replicating", dgferr.ErrInvalid))}
		}
		return ControlResult{OK: true, Repl: s.replResolver()}
	}
	exec, ok := s.engine.Execution(c.ID)
	if !ok && c.ID != "" {
		// The target may be passivated in the flow-state store: wire
		// requests are a resurrection path (docs/STORE.md). Unknown ids
		// still fall through to the per-verb not-found handling.
		if ex, err := s.engine.ResurrectFor(c.ID, "wire"); err == nil {
			exec, ok = ex, true
		}
	}
	unknown := func() ControlResult {
		return ControlResult{Error: dgferr.Encode(
			fmt.Errorf("%w: execution %s", dgferr.ErrNotFound, c.ID))}
	}
	switch c.Op {
	case "pause":
		if !ok {
			return unknown()
		}
		exec.Pause()
		return ControlResult{OK: true, ID: c.ID}
	case "resume":
		if !ok {
			return unknown()
		}
		exec.Resume()
		return ControlResult{OK: true, ID: c.ID}
	case "cancel":
		if !ok {
			return unknown()
		}
		exec.Cancel()
		return ControlResult{OK: true, ID: c.ID}
	case "restart":
		next, err := s.engine.Restart(c.ID)
		if err != nil {
			return ControlResult{Error: dgferr.Encode(err)}
		}
		return ControlResult{OK: true, ID: next.ID}
	case "list":
		var rows []ExecutionInfo
		for _, sum := range s.engine.ListExecutions() {
			rows = append(rows, ExecutionInfo{
				ID: sum.ID, Name: sum.Name, State: string(sum.State), User: sum.User,
			})
		}
		return ControlResult{OK: true, Executions: rows}
	case "metrics":
		raw, err := json.Marshal(s.engine.Obs().Snapshot())
		if err != nil {
			return ControlResult{Error: "snapshot: " + err.Error()}
		}
		return ControlResult{OK: true, Metrics: raw}
	case "store":
		st := s.engine.Store()
		if st == nil {
			return ControlResult{Error: dgferr.Encode(
				fmt.Errorf("%w: no flow-state store attached", dgferr.ErrInvalid))}
		}
		return ControlResult{OK: true, Store: storeInfo(s.engine, st)}
	case "compact":
		st := s.engine.Store()
		if st == nil {
			return ControlResult{Error: dgferr.Encode(
				fmt.Errorf("%w: no flow-state store attached", dgferr.ErrInvalid))}
		}
		cs, err := st.Compact()
		if err != nil {
			return ControlResult{Error: dgferr.Encode(err)}
		}
		info := storeInfo(s.engine, st)
		info.Compaction = &CompactionInfo{
			SegmentsBefore: cs.SegmentsBefore,
			RecordsBefore:  cs.RecordsBefore,
			RecordsKept:    cs.RecordsKept,
			RecordsDropped: cs.RecordsDropped,
		}
		return ControlResult{OK: true, Store: info}
	default:
		return ControlResult{Error: dgferr.Encode(
			fmt.Errorf("%w: unknown control op %q", dgferr.ErrInvalid, c.Op))}
	}
}

// serveVdata services the "vdata" control verb (wire >= 1.8,
// docs/VDATA.md): stats, lookup, publish and invalidate against the
// engine's derivation catalog. Every sub-operation resolves the caller's
// tenant exactly as submissions do — the bearer token on the frame is
// re-verified, and with an authority attached it must agree with the
// claimed user — so no tenant can read or drop another's derivations.
func (s *Server) serveVdata(c Control) ControlResult {
	if s.minor() < vdataMinor {
		return ControlResult{Error: dgferr.Encode(fmt.Errorf(
			"%w: vdata verb needs protocol >= %s, server advertises %s",
			dgferr.ErrProtocol, ProtoVersion(ProtoMajor, vdataMinor), s.proto()))}
	}
	info := &VdataInfo{}
	cat := s.engine.Vdata()
	if cat == nil {
		return ControlResult{OK: true, Vdata: info}
	}
	info.Enabled = true
	ten, err := s.resolveTenant(c.Token, c.User)
	if err != nil {
		return ControlResult{Error: dgferr.Encode(err)}
	}
	sub := c.Sub
	if sub == "" {
		sub = "stats"
	}
	s.engine.Obs().Counter("wire_vdata_ops_total", "op", sub).Inc()
	switch sub {
	case "stats":
		st := cat.Stats()
		info.Entries = st.Entries
		info.Tenants = st.Tenants
		info.Publishes = st.Publishes
		info.Invalidations = st.Invalidations
		info.Durable = st.Durable
	case "lookup":
		if c.Key == "" {
			return ControlResult{Error: dgferr.Encode(
				fmt.Errorf("%w: vdata lookup needs a key", dgferr.ErrInvalid))}
		}
		if ent, ok := cat.Lookup(ten, c.Key); ok {
			info.Found = true
			info.Entry = &ent
		}
	case "publish":
		var ent vdata.Entry
		if err := json.Unmarshal([]byte(c.Data), &ent); err != nil {
			return ControlResult{Error: dgferr.Encode(
				fmt.Errorf("%w: vdata publish: bad entry: %v", dgferr.ErrInvalid, err))}
		}
		// A caller may only ever write its own tenant scope.
		ent.Tenant = ten
		if err := cat.Publish(ent); err != nil {
			return ControlResult{Error: dgferr.Encode(err)}
		}
		info.Entries = cat.Len()
	case "invalidate":
		if c.Key == "" {
			return ControlResult{Error: dgferr.Encode(
				fmt.Errorf("%w: vdata invalidate needs a key or output path", dgferr.ErrInvalid))}
		}
		n, err := cat.Invalidate(ten, c.Key)
		if err != nil {
			return ControlResult{Error: dgferr.Encode(err)}
		}
		info.Removed = n
	default:
		return ControlResult{Error: dgferr.Encode(
			fmt.Errorf("%w: unknown vdata sub-operation %q", dgferr.ErrInvalid, c.Sub))}
	}
	return ControlResult{OK: true, Vdata: info}
}

// storeInfo summarizes the engine's flow-state store for the "store"
// and "compact" control verbs.
func storeInfo(engine *matrix.Engine, st *store.Store) *StoreInfo {
	stats := st.Stats()
	return &StoreInfo{
		Segments:      stats.Segments,
		Records:       stats.Records,
		ReplayRecords: stats.ReplayRecords,
		Live:          stats.Live,
		Passivated:    stats.Passivated,
		Resident:      len(engine.Executions()),
		SnapshotLag:   stats.SnapshotLag,
		Failed:        stats.Failed,
	}
}

// Close stops the listener and closes all live connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}
