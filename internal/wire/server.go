package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/fault"
	"datagridflow/internal/matrix"
)

// frameHeaderLen is the fixed per-frame overhead counted by the byte
// metrics (1-byte kind + 4-byte length).
const frameHeaderLen = 5

// kindName labels metrics by frame kind.
func kindName(kind byte) string {
	switch kind {
	case KindDGL:
		return "dgl"
	case KindControl:
		return "control"
	default:
		return "unknown"
	}
}

// Server exposes a matrix engine over the framed TCP protocol. Each
// connection may carry any number of requests; responses are written in
// request order.
type Server struct {
	engine *matrix.Engine
	// statusRouter, when set (by a Peer, before Listen), answers DGL
	// status queries — routing ids owned by other peers across the
	// network. Plain servers leave it nil and answer from the engine.
	statusRouter func(user, id string, detail bool) (*dgl.FlowStatus, error)

	mu          sync.Mutex
	listener    net.Listener
	conns       map[net.Conn]bool
	closed      bool
	wg          sync.WaitGroup
	fault       *fault.Injector
	faultTarget string
}

// NewServer wraps an engine.
func NewServer(engine *matrix.Engine) *Server {
	return &Server{engine: engine, conns: make(map[net.Conn]bool)}
}

// Engine returns the wrapped engine.
func (s *Server) Engine() *matrix.Engine { return s.engine }

// SetFault attaches a fault-injection plan to this server under the
// given target name: PeerCrash and ConnDrop events against that target
// sever connections mid-session (a simulated matrixd crash), Latency
// events delay frame handling. Pass nil to detach.
func (s *Server) SetFault(in *fault.Injector, target string) {
	if in != nil {
		in.SetObs(s.engine.Obs())
	}
	s.mu.Lock()
	s.fault, s.faultTarget = in, target
	s.mu.Unlock()
}

// connFault evaluates the server's fault plan for one inbound frame,
// charging induced latency to the clock; drop severs the connection.
func (s *Server) connFault() (drop bool) {
	s.mu.Lock()
	in, target := s.fault, s.faultTarget
	s.mu.Unlock()
	if in == nil {
		return false
	}
	d, lat := in.ConnFault(target)
	if lat > 0 {
		s.engine.Clock().Sleep(lat)
	}
	return d
}

// Listen starts accepting on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address. Serving happens on background
// goroutines; call Close to stop.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return "", errors.New("wire: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	o := s.engine.Obs()
	o.Counter("wire_connections_total").Inc()
	o.Gauge("wire_connections_open").Add(1)
	defer func() {
		conn.Close()
		o.Gauge("wire_connections_open").Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	remote := conn.RemoteAddr().String()
	for {
		kind, payload, err := ReadFrame(conn)
		if err != nil {
			return // EOF or broken connection
		}
		k := kindName(kind)
		o.Counter("wire_frames_in_total", "kind", k).Inc()
		o.Counter("wire_bytes_in_total").Add(int64(len(payload)) + frameHeaderLen)
		if s.connFault() {
			return // injected crash/drop: sever without a response
		}
		started := s.engine.Clock().Now()
		o.StartSpan("request", k, remote, nil)
		var data []byte
		switch kind {
		case KindDGL:
			resp := s.handleDGL(payload)
			data, err = dgl.Marshal(resp)
		case KindControl:
			res := s.handleControl(payload)
			data, err = json.Marshal(res)
		default:
			o.EndSpan("request", k, remote, map[string]string{"outcome": "protocol-violation"})
			return // protocol violation
		}
		if err != nil {
			o.EndSpan("request", k, remote, map[string]string{"outcome": "encode-error"})
			return
		}
		o.Histogram("wire_request_seconds", "type", k).Observe(s.engine.Clock().Now().Sub(started).Seconds())
		o.EndSpan("request", k, remote, map[string]string{"outcome": "ok"})
		if err := WriteFrame(conn, kind, data); err != nil {
			return
		}
		o.Counter("wire_frames_out_total", "kind", k).Inc()
		o.Counter("wire_bytes_out_total").Add(int64(len(data)) + frameHeaderLen)
	}
}

// handleDGL parses and services one DGL request. Errors become error
// responses rather than dropped connections — clients always get an
// answer per request.
func (s *Server) handleDGL(payload []byte) *dgl.Response {
	req, err := dgl.DecodeRequest(payload)
	if err != nil {
		return &dgl.Response{Error: dgferr.Encode(err)}
	}
	if q := req.StatusQuery; q != nil && req.Flow == nil && s.statusRouter != nil {
		st, err := s.statusRouter(req.User.Name, q.ID, q.Detail)
		if err != nil {
			return &dgl.Response{Error: dgferr.Encode(err)}
		}
		return &dgl.Response{Status: st}
	}
	resp, err := s.engine.Submit(req)
	if err != nil {
		return &dgl.Response{Error: dgferr.Encode(err)}
	}
	return resp
}

func (s *Server) handleControl(payload []byte) ControlResult {
	var c Control
	if err := json.Unmarshal(payload, &c); err != nil {
		return ControlResult{Error: "bad control frame: " + err.Error()}
	}
	exec, ok := s.engine.Execution(c.ID)
	unknown := func() ControlResult {
		return ControlResult{Error: dgferr.Encode(
			fmt.Errorf("%w: execution %s", dgferr.ErrNotFound, c.ID))}
	}
	switch c.Op {
	case "hello":
		major, _, err := ParseProtoVersion(c.Proto)
		if err != nil {
			return ControlResult{Error: dgferr.Encode(
				fmt.Errorf("%w: %v", dgferr.ErrProtocol, err))}
		}
		if major != ProtoMajor {
			return ControlResult{Error: dgferr.Encode(fmt.Errorf(
				"%w: client speaks %s, server speaks %s",
				dgferr.ErrProtocol, c.Proto, ProtoVersion(ProtoMajor, ProtoMinor)))}
		}
		return ControlResult{OK: true, Proto: ProtoVersion(ProtoMajor, ProtoMinor)}
	case "pause":
		if !ok {
			return unknown()
		}
		exec.Pause()
		return ControlResult{OK: true, ID: c.ID}
	case "resume":
		if !ok {
			return unknown()
		}
		exec.Resume()
		return ControlResult{OK: true, ID: c.ID}
	case "cancel":
		if !ok {
			return unknown()
		}
		exec.Cancel()
		return ControlResult{OK: true, ID: c.ID}
	case "restart":
		next, err := s.engine.Restart(c.ID)
		if err != nil {
			return ControlResult{Error: dgferr.Encode(err)}
		}
		return ControlResult{OK: true, ID: next.ID}
	case "list":
		var rows []ExecutionInfo
		for _, sum := range s.engine.ListExecutions() {
			rows = append(rows, ExecutionInfo{
				ID: sum.ID, Name: sum.Name, State: string(sum.State), User: sum.User,
			})
		}
		return ControlResult{OK: true, Executions: rows}
	case "metrics":
		raw, err := json.Marshal(s.engine.Obs().Snapshot())
		if err != nil {
			return ControlResult{Error: "snapshot: " + err.Error()}
		}
		return ControlResult{OK: true, Metrics: raw}
	default:
		return ControlResult{Error: dgferr.Encode(
			fmt.Errorf("%w: unknown control op %q", dgferr.ErrInvalid, c.Op))}
	}
}

// Close stops the listener and closes all live connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}
