package wire

import (
	"encoding/json"
	"math"

	"datagridflow/internal/codec"
	"datagridflow/internal/tenant"
	"datagridflow/internal/vdata"
)

// Binary codecs for the wire's JSON envelope types (Control, Batch,
// Delegate and their results). The DGL documents themselves are encoded
// by internal/codec's Request/Response codecs; the envelopes here carry
// those payloads as opaque blobs, each sniffed independently — a binary
// batch may legally contain XML items and vice versa, which is what
// lets a server mirror per-item encodings exactly.
//
// Field numbers are frozen (docs/CODEC.md, "Versioning").

func appendControl(e *codec.Encoder, c *Control) {
	e.Begin(codec.MsgControl)
	e.Sym(1, c.Op)
	e.Sym(2, c.ID)
	e.Sym(3, c.Proto)
	// Token is high-entropy and never repeats within a payload: a plain
	// string field, not a symbol-table entry.
	e.Str(4, c.Token)
	e.Uint(5, uint64(c.Limit))
	e.Sym(6, c.Sub)
	e.Sym(7, c.User)
	// Key is a high-entropy derivation hash: a plain string, like Token.
	e.Str(8, c.Key)
	e.Str(9, c.Data)
}

func decodeControl(payload []byte) (Control, error) {
	d, err := codec.NewDecoder(payload, codec.MsgControl)
	if err != nil {
		return Control{}, err
	}
	var c Control
	for d.Next() {
		switch d.Field() {
		case 1:
			c.Op = d.Sym()
		case 2:
			c.ID = d.Sym()
		case 3:
			c.Proto = d.Sym()
		case 4:
			c.Token = d.Str()
		case 5:
			c.Limit = int(d.Uint())
		case 6:
			c.Sub = d.Sym()
		case 7:
			c.User = d.Sym()
		case 8:
			c.Key = d.Str()
		case 9:
			c.Data = d.Str()
		default:
			d.Skip()
		}
	}
	return c, d.Err()
}

func appendControlResult(e *codec.Encoder, r *ControlResult) {
	e.Begin(codec.MsgControlResult)
	e.Bool(1, r.OK)
	e.Sym(2, r.ID)
	e.Str(3, r.Error)
	e.Sym(4, r.Proto)
	for i := range r.Executions {
		x := &r.Executions[i]
		e.Msg(5, func(e *codec.Encoder) {
			e.Sym(1, x.ID)
			e.Sym(2, x.Name)
			e.Sym(3, x.State)
			e.Sym(4, x.User)
		})
	}
	// Metrics stay a JSON blob: obs.Snapshot is operator-facing and
	// cold-path, not worth a binary schema.
	e.Blob(6, r.Metrics)
	if r.Store != nil {
		s := r.Store
		e.Msg(7, func(e *codec.Encoder) {
			e.Uint(1, uint64(s.Segments))
			e.Uint(2, uint64(s.Records))
			e.Uint(3, uint64(s.ReplayRecords))
			e.Uint(4, uint64(s.Live))
			e.Uint(5, uint64(s.Passivated))
			e.Uint(6, uint64(s.Resident))
			e.Uint(7, uint64(s.SnapshotLag))
			e.Str(8, s.Failed)
			if c := s.Compaction; c != nil {
				e.Msg(9, func(e *codec.Encoder) {
					e.Uint(1, uint64(c.SegmentsBefore))
					e.Uint(2, uint64(c.RecordsBefore))
					e.Uint(3, uint64(c.RecordsKept))
					e.Uint(4, uint64(c.RecordsDropped))
				})
			}
		})
	}
	if o := r.Owner; o != nil {
		e.Msg(8, func(e *codec.Encoder) {
			e.Sym(1, o.ID)
			e.Sym(2, o.Peer)
			e.Sym(3, o.Addr)
			e.Uint(4, uint64(o.Shard))
			e.Sym(5, o.Source)
		})
	}
	if rp := r.Repl; rp != nil {
		e.Msg(9, func(e *codec.Encoder) {
			e.Sym(1, rp.Mode)
			e.Uint(2, rp.Seq)
			for i := range rp.Followers {
				f := &rp.Followers[i]
				e.Msg(3, func(e *codec.Encoder) {
					e.Sym(1, f.Peer)
					e.Uint(2, f.AckedSeq)
				})
			}
			for i := range rp.Sources {
				src := &rp.Sources[i]
				e.Msg(4, func(e *codec.Encoder) {
					e.Sym(1, src.Source)
					e.Uint(2, src.LastSeq)
					e.Uint(3, uint64(src.Live))
					e.Bool(4, src.Promoted)
				})
			}
		})
	}
	e.Sym(10, r.Tenant)
	if t := r.Tenants; t != nil {
		e.Msg(11, func(e *codec.Encoder) {
			e.Bool(1, t.Enabled)
			e.Bool(2, t.Auth)
			e.Bool(3, t.Require)
			e.Uint(4, uint64(t.Registered))
			for i := range t.Tenants {
				row := &t.Tenants[i]
				e.Msg(5, func(e *codec.Encoder) {
					e.Sym(1, row.Name)
					// Weight crosses as its IEEE-754 bits: the codec has no
					// float wire type and the schema note in docs/CODEC.md
					// records the convention.
					e.Uint(2, math.Float64bits(row.Weight))
					e.Uint(3, uint64(row.Flows))
					e.Uint(4, uint64(row.StoreBytes))
					e.Uint(5, uint64(row.Delegations))
				})
			}
		})
	}
	if v := r.Vdata; v != nil {
		e.Msg(12, func(e *codec.Encoder) {
			e.Bool(1, v.Enabled)
			e.Uint(2, uint64(v.Entries))
			e.Uint(3, uint64(v.Tenants))
			e.Uint(4, v.Publishes)
			e.Uint(5, v.Invalidations)
			e.Bool(6, v.Durable)
			e.Bool(7, v.Found)
			e.Uint(8, uint64(v.Removed))
			if v.Entry != nil {
				// The entry stays a JSON blob: cold-path catalog metadata,
				// like the metrics snapshot (docs/CODEC.md).
				if raw, err := json.Marshal(v.Entry); err == nil {
					e.Blob(9, raw)
				}
			}
		})
	}
}

func decodeControlResult(payload []byte) (ControlResult, error) {
	d, err := codec.NewDecoder(payload, codec.MsgControlResult)
	if err != nil {
		return ControlResult{}, err
	}
	var r ControlResult
	for d.Next() {
		switch d.Field() {
		case 1:
			r.OK = d.Bool()
		case 2:
			r.ID = d.Sym()
		case 3:
			r.Error = d.Str()
		case 4:
			r.Proto = d.Sym()
		case 5:
			var x ExecutionInfo
			d.Msg(func(d *codec.Decoder) {
				for d.Next() {
					switch d.Field() {
					case 1:
						x.ID = d.Sym()
					case 2:
						x.Name = d.Sym()
					case 3:
						x.State = d.Sym()
					case 4:
						x.User = d.Sym()
					default:
						d.Skip()
					}
				}
			})
			r.Executions = append(r.Executions, x)
		case 6:
			r.Metrics = json.RawMessage(append([]byte(nil), d.Blob()...))
		case 7:
			s := &StoreInfo{}
			d.Msg(func(d *codec.Decoder) {
				for d.Next() {
					switch d.Field() {
					case 1:
						s.Segments = int(d.Uint())
					case 2:
						s.Records = int(d.Uint())
					case 3:
						s.ReplayRecords = int(d.Uint())
					case 4:
						s.Live = int(d.Uint())
					case 5:
						s.Passivated = int(d.Uint())
					case 6:
						s.Resident = int(d.Uint())
					case 7:
						s.SnapshotLag = int(d.Uint())
					case 8:
						s.Failed = d.Str()
					case 9:
						c := &CompactionInfo{}
						d.Msg(func(d *codec.Decoder) {
							for d.Next() {
								switch d.Field() {
								case 1:
									c.SegmentsBefore = int(d.Uint())
								case 2:
									c.RecordsBefore = int(d.Uint())
								case 3:
									c.RecordsKept = int(d.Uint())
								case 4:
									c.RecordsDropped = int(d.Uint())
								default:
									d.Skip()
								}
							}
						})
						s.Compaction = c
					default:
						d.Skip()
					}
				}
			})
			r.Store = s
		case 8:
			o := &OwnerInfo{}
			d.Msg(func(d *codec.Decoder) {
				for d.Next() {
					switch d.Field() {
					case 1:
						o.ID = d.Sym()
					case 2:
						o.Peer = d.Sym()
					case 3:
						o.Addr = d.Sym()
					case 4:
						o.Shard = int(d.Uint())
					case 5:
						o.Source = d.Sym()
					default:
						d.Skip()
					}
				}
			})
			r.Owner = o
		case 9:
			rp := &ReplInfo{}
			d.Msg(func(d *codec.Decoder) {
				for d.Next() {
					switch d.Field() {
					case 1:
						rp.Mode = d.Sym()
					case 2:
						rp.Seq = d.Uint()
					case 3:
						var f ReplFollowerInfo
						d.Msg(func(d *codec.Decoder) {
							for d.Next() {
								switch d.Field() {
								case 1:
									f.Peer = d.Sym()
								case 2:
									f.AckedSeq = d.Uint()
								default:
									d.Skip()
								}
							}
						})
						rp.Followers = append(rp.Followers, f)
					case 4:
						var src ReplSourceInfo
						d.Msg(func(d *codec.Decoder) {
							for d.Next() {
								switch d.Field() {
								case 1:
									src.Source = d.Sym()
								case 2:
									src.LastSeq = d.Uint()
								case 3:
									src.Live = int(d.Uint())
								case 4:
									src.Promoted = d.Bool()
								default:
									d.Skip()
								}
							}
						})
						rp.Sources = append(rp.Sources, src)
					default:
						d.Skip()
					}
				}
			})
			r.Repl = rp
		case 10:
			r.Tenant = d.Sym()
		case 11:
			t := &TenantsInfo{}
			d.Msg(func(d *codec.Decoder) {
				for d.Next() {
					switch d.Field() {
					case 1:
						t.Enabled = d.Bool()
					case 2:
						t.Auth = d.Bool()
					case 3:
						t.Require = d.Bool()
					case 4:
						t.Registered = int(d.Uint())
					case 5:
						var row tenant.Info
						d.Msg(func(d *codec.Decoder) {
							for d.Next() {
								switch d.Field() {
								case 1:
									row.Name = d.Sym()
								case 2:
									row.Weight = math.Float64frombits(d.Uint())
								case 3:
									row.Flows = int(d.Uint())
								case 4:
									row.StoreBytes = int64(d.Uint())
								case 5:
									row.Delegations = int(d.Uint())
								default:
									d.Skip()
								}
							}
						})
						t.Tenants = append(t.Tenants, row)
					default:
						d.Skip()
					}
				}
			})
			r.Tenants = t
		case 12:
			v := &VdataInfo{}
			d.Msg(func(d *codec.Decoder) {
				for d.Next() {
					switch d.Field() {
					case 1:
						v.Enabled = d.Bool()
					case 2:
						v.Entries = int(d.Uint())
					case 3:
						v.Tenants = int(d.Uint())
					case 4:
						v.Publishes = d.Uint()
					case 5:
						v.Invalidations = d.Uint()
					case 6:
						v.Durable = d.Bool()
					case 7:
						v.Found = d.Bool()
					case 8:
						v.Removed = int(d.Uint())
					case 9:
						ent := &vdata.Entry{}
						if err := json.Unmarshal(d.Blob(), ent); err == nil {
							v.Entry = ent
						}
					default:
						d.Skip()
					}
				}
			})
			r.Vdata = v
		default:
			d.Skip()
		}
	}
	return r, d.Err()
}

// appendBatch encodes a batch envelope whose items are pre-encoded
// request payloads (binary or XML — each is sniffed independently on
// the receiving side).
func appendBatch(e *codec.Encoder, user, token string, items [][]byte) {
	appendBatchStart(e, user, token)
	for _, it := range items {
		appendBatchItem(e, it)
	}
}

// appendBatchStart / appendBatchItem are the streaming form of
// appendBatch: items are appended as they are encoded, so the caller
// never collects (and re-copies) the full item set.
func appendBatchStart(e *codec.Encoder, user, token string) {
	e.Begin(codec.MsgBatch)
	e.Sym(1, user)
	e.Str(3, token)
}

func appendBatchItem(e *codec.Encoder, item []byte) {
	e.Blob(2, item)
}

// decodeBatch returns the envelope's user and its item payloads. The
// item slices alias the frame payload — valid for the request's
// handling, which never outlives the frame. Transient decode: the
// envelope is almost entirely item blobs, and the shared-string copy a
// regular decoder takes up front would duplicate all of them to back
// the one user symbol.
func decodeBatch(payload []byte) (user, token string, items [][]byte, err error) {
	d, derr := codec.NewDecoderTransient(payload, codec.MsgBatch)
	if derr != nil {
		return "", "", nil, derr
	}
	for d.Next() {
		switch d.Field() {
		case 1:
			user = d.Sym()
		case 2:
			items = append(items, d.Blob())
		case 3:
			token = d.Str()
		default:
			d.Skip()
		}
	}
	return user, token, items, d.Err()
}

// appendBatchResult encodes a batch reply whose responses are
// pre-encoded response payloads, positionally matching the request.
func appendBatchResult(e *codec.Encoder, ok bool, errText string, responses [][]byte) {
	e.Begin(codec.MsgBatchResult)
	e.Bool(1, ok)
	e.Str(2, errText)
	for _, r := range responses {
		e.Blob(3, r)
	}
}

func decodeBatchResult(payload []byte) (ok bool, errText string, responses [][]byte, err error) {
	d, derr := codec.NewDecoderTransient(payload, codec.MsgBatchResult)
	if derr != nil {
		return false, "", nil, derr
	}
	for d.Next() {
		switch d.Field() {
		case 1:
			ok = d.Bool()
		case 2:
			errText = d.Str()
		case 3:
			responses = append(responses, d.Blob())
		default:
			d.Skip()
		}
	}
	return ok, errText, responses, d.Err()
}

// appendDelegate encodes a delegation envelope. The embedded request
// document stays in whatever encoding the federation produced (XML
// today): delegation is not a hot path, and keeping the document
// opaque means provenance and journals see the same bytes both sides.
func appendDelegate(e *codec.Encoder, dl *Delegate) {
	e.Begin(codec.MsgDelegate)
	e.Sym(1, dl.User)
	e.Blob(2, []byte(dl.Request))
	e.Sym(3, dl.Origin)
	e.Sym(4, dl.ParentExec)
	e.Sym(5, dl.ParentNode)
	e.Str(6, dl.Token)
}

func decodeDelegate(payload []byte) (Delegate, error) {
	d, err := codec.NewDecoder(payload, codec.MsgDelegate)
	if err != nil {
		return Delegate{}, err
	}
	var dl Delegate
	for d.Next() {
		switch d.Field() {
		case 1:
			dl.User = d.Sym()
		case 2:
			dl.Request = string(d.Blob())
		case 3:
			dl.Origin = d.Sym()
		case 4:
			dl.ParentExec = d.Sym()
		case 5:
			dl.ParentNode = d.Sym()
		case 6:
			dl.Token = d.Str()
		default:
			d.Skip()
		}
	}
	return dl, d.Err()
}

func appendDelegateResult(e *codec.Encoder, r *DelegateResult) {
	e.Begin(codec.MsgDelegateResult)
	e.Bool(1, r.OK)
	e.Str(2, r.Error)
	e.Sym(3, r.ID)
	e.Blob(4, []byte(r.Status))
}

func decodeDelegateResult(payload []byte) (DelegateResult, error) {
	d, err := codec.NewDecoder(payload, codec.MsgDelegateResult)
	if err != nil {
		return DelegateResult{}, err
	}
	var r DelegateResult
	for d.Next() {
		switch d.Field() {
		case 1:
			r.OK = d.Bool()
		case 2:
			r.Error = d.Str()
		case 3:
			r.ID = d.Sym()
		case 4:
			r.Status = string(d.Blob())
		default:
			d.Skip()
		}
	}
	return r, d.Err()
}

// appendReplicate encodes a replication envelope. The record block
// rides as an opaque blob in the sender's store encoding — the
// envelope's encoding and the block's are independent, so a binary
// envelope may legally carry a JSONL block and vice versa.
func appendReplicate(e *codec.Encoder, f *Replicate) {
	e.Begin(codec.MsgReplicate)
	e.Sym(1, f.Op)
	e.Sym(2, f.Source)
	e.Uint(3, f.Seq)
	e.Uint(4, uint64(f.Count))
	e.Blob(5, f.Block)
	for _, peer := range f.Chain {
		e.Sym(6, peer)
	}
}

// decodeReplicate decodes a binary replication envelope. Transient
// decode: the payload is almost entirely the record block, and the
// shared-string copy a regular decoder takes up front would duplicate
// it to back a handful of symbols. The returned frame's Block aliases
// the payload — valid for the frame's handling, which applies the
// block into the replica store before the reply is written.
func decodeReplicate(payload []byte) (Replicate, error) {
	d, derr := codec.NewDecoderTransient(payload, codec.MsgReplicate)
	if derr != nil {
		return Replicate{}, derr
	}
	var f Replicate
	for d.Next() {
		switch d.Field() {
		case 1:
			f.Op = d.Sym()
		case 2:
			f.Source = d.Sym()
		case 3:
			f.Seq = d.Uint()
		case 4:
			f.Count = int(d.Uint())
		case 5:
			f.Block = d.Blob()
		case 6:
			f.Chain = append(f.Chain, d.Sym())
		default:
			d.Skip()
		}
	}
	return f, d.Err()
}

func appendReplicateResult(e *codec.Encoder, r *ReplicateResult) {
	e.Begin(codec.MsgReplicateResult)
	e.Bool(1, r.OK)
	e.Uint(2, r.AckSeq)
	e.Bool(3, r.NeedSnapshot)
	e.Str(4, r.Error)
}

func decodeReplicateResult(payload []byte) (ReplicateResult, error) {
	d, err := codec.NewDecoder(payload, codec.MsgReplicateResult)
	if err != nil {
		return ReplicateResult{}, err
	}
	var r ReplicateResult
	for d.Next() {
		switch d.Field() {
		case 1:
			r.OK = d.Bool()
		case 2:
			r.AckSeq = d.Uint()
		case 3:
			r.NeedSnapshot = d.Bool()
		case 4:
			r.Error = d.Str()
		default:
			d.Skip()
		}
	}
	return r, d.Err()
}
