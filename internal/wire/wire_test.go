package wire

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/vfs"
)

func newEngine(t testing.TB, prefix string) *matrix.Engine {
	t.Helper()
	g := dgms.New(dgms.Options{})
	if err := g.RegisterResource(vfs.New("disk"+prefix, "sdsc", vfs.Disk, 0)); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		t.Fatal(err)
	}
	if err := g.Namespace().SetPermission("/grid", "user", namespace.PermWrite); err != nil {
		t.Fatal(err)
	}
	return matrix.NewEngineConfig(g, matrix.Config{IDPrefix: prefix})
}

func startServer(t testing.TB, e *matrix.Engine) (*Server, string) {
	t.Helper()
	s := NewServer(e)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, addr
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindDGL, []byte("<x/>")); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ReadFrame(&buf)
	if err != nil || kind != KindDGL || string(payload) != "<x/>" {
		t.Errorf("round trip = %d %q %v", kind, payload, err)
	}
	// Empty payload.
	buf.Reset()
	if err := WriteFrame(&buf, KindControl, nil); err != nil {
		t.Fatal(err)
	}
	kind, payload, err = ReadFrame(&buf)
	if err != nil || kind != KindControl || len(payload) != 0 {
		t.Errorf("empty frame = %d %q %v", kind, payload, err)
	}
	// Oversized length prefix rejected.
	big := make([]byte, 5)
	big[0] = KindDGL
	big[1], big[2], big[3], big[4] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := ReadFrame(bytes.NewReader(big)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversize = %v", err)
	}
	if err := WriteFrame(&buf, KindDGL, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversize write = %v", err)
	}
	// Truncated stream.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{1, 0, 0, 0, 9, 'x'})); err == nil {
		t.Errorf("truncated frame accepted")
	}
}

func TestClientServerSyncFlow(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	flow := dgl.NewFlow("remote").
		Step("ingest", dgl.Op(dgl.OpIngest, map[string]string{
			"path": "/grid/remote.dat", "size": "100", "resource": "disk",
		})).Flow()
	resp, err := c.SubmitFlow("user", flow)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" || resp.Status == nil || resp.Status.State != "succeeded" {
		t.Fatalf("response = %+v", resp)
	}
	if !e.Grid().Namespace().Exists("/grid/remote.dat") {
		t.Errorf("remote ingest missing")
	}
	// Invalid flow surfaces as an error response.
	bad := dgl.NewFlow("bad").Step("s", dgl.Op("nosuch", nil)).Flow()
	resp, err = c.SubmitFlow("user", bad)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Errorf("invalid flow got no error: %+v", resp)
	}
}

func TestClientServerAsyncAndControl(t *testing.T) {
	e := newEngine(t, "")
	// A gate operation to hold the flow while we poke at it.
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	e.RegisterOp("gate", func(c *matrix.OpContext) error {
		started <- struct{}{}
		<-release
		return nil
	})
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b := dgl.NewFlow("long")
	b.Step("gate", dgl.Op("gate", nil))
	for i := 0; i < 3; i++ {
		b.Step(fmt.Sprintf("s%d", i), dgl.Op(dgl.OpNoop, nil))
	}
	id, err := c.SubmitAsync("user", b.Flow())
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty execution id")
	}
	<-started
	// Status over the wire, at step granularity.
	st, err := c.Status("user", id, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "running" || len(st.Children) == 0 {
		t.Errorf("running status = %+v", st)
	}
	stepID := id + "/long/gate"
	sst, err := c.Status("user", stepID, false)
	if err != nil || sst.Name != "gate" {
		t.Errorf("step status = %+v, %v", sst, err)
	}
	// Pause, release the gate, confirm it holds, resume.
	if err := c.Pause(id); err != nil {
		t.Fatal(err)
	}
	close(release)
	time.Sleep(20 * time.Millisecond)
	st, _ = c.Status("user", id, true)
	if st.CountByState()["succeeded"] > 1 {
		t.Errorf("paused execution progressed: %v", st.CountByState())
	}
	if err := c.Resume(id); err != nil {
		t.Fatal(err)
	}
	exec, _ := e.Execution(id)
	if err := exec.Wait(); err != nil {
		t.Fatal(err)
	}
	st, _ = c.Status("user", id, false)
	if st.State != "succeeded" {
		t.Errorf("final state = %s", st.State)
	}
	// Control errors.
	if err := c.Pause("dgf-zzz"); err == nil {
		t.Errorf("pause unknown id accepted")
	}
	if _, err := c.Restart(id); err == nil {
		t.Errorf("restart of succeeded execution accepted")
	}
}

func TestCancelAndRestartOverWire(t *testing.T) {
	e := newEngine(t, "")
	fail := true
	e.RegisterOp("flaky", func(c *matrix.OpContext) error {
		if fail {
			return errors.New("transient")
		}
		return nil
	})
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	flow := dgl.NewFlow("f").
		Step("ok", dgl.Op(dgl.OpNoop, nil)).
		Step("flaky", dgl.Op("flaky", nil)).Flow()
	id, err := c.SubmitAsync("user", flow)
	if err != nil {
		t.Fatal(err)
	}
	exec, _ := e.Execution(id)
	_ = exec.Wait() // fails
	fail = false
	newID, err := c.Restart(id)
	if err != nil {
		t.Fatal(err)
	}
	exec2, _ := e.Execution(newID)
	if err := exec2.Wait(); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Status("user", newID, true)
	if st.CountByState()["skipped"] != 1 {
		t.Errorf("restart skipped = %v", st.CountByState())
	}
	// Cancel over the wire.
	release := make(chan struct{})
	gated := make(chan struct{}, 1)
	e.RegisterOp("gate2", func(c *matrix.OpContext) error {
		gated <- struct{}{}
		<-release
		return nil
	})
	id3, err := c.SubmitAsync("user", dgl.NewFlow("g").
		Step("g1", dgl.Op("gate2", nil)).
		Step("g2", dgl.Op(dgl.OpNoop, nil)).Flow())
	if err != nil {
		t.Fatal(err)
	}
	<-gated
	if err := c.Cancel(id3); err != nil {
		t.Fatal(err)
	}
	close(release)
	exec3, _ := e.Execution(id3)
	if werr := exec3.Wait(); !errors.Is(werr, matrix.ErrCancelled) {
		t.Errorf("cancelled wait = %v", werr)
	}
}

func TestLookupServer(t *testing.T) {
	ls := NewLookupServer()
	addr, err := ls.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	c, err := DialLookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register("matrixA", "10.0.0.1:9000"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("matrixB", "10.0.0.2:9000"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Resolve("matrixA")
	if err != nil || got != "10.0.0.1:9000" {
		t.Errorf("Resolve = %q, %v", got, err)
	}
	if _, err := c.Resolve("matrixZ"); err == nil {
		t.Errorf("unknown peer resolved")
	}
	peers, err := c.List()
	if err != nil || len(peers) != 2 {
		t.Errorf("List = %v, %v", peers, err)
	}
	// Re-register updates the address.
	if err := c.Register("matrixA", "10.0.0.9:9000"); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Resolve("matrixA")
	if got != "10.0.0.9:9000" {
		t.Errorf("re-register = %q", got)
	}
	// Bad register rejected.
	if err := c.Register("", ""); err == nil {
		t.Errorf("empty register accepted")
	}
}

func TestPeerNetwork(t *testing.T) {
	ls := NewLookupServer()
	lookupAddr, err := ls.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()

	peerA := NewPeer("matrixA", newEngine(t, "matrixA:"))
	if _, err := peerA.Start("127.0.0.1:0", lookupAddr); err != nil {
		t.Fatal(err)
	}
	defer peerA.Close()
	peerB := NewPeer("matrixB", newEngine(t, "matrixB:"))
	if _, err := peerB.Start("127.0.0.1:0", lookupAddr); err != nil {
		t.Fatal(err)
	}
	defer peerB.Close()

	// Submit a flow to B *through* A.
	flow := dgl.NewFlow("onB").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	resp, err := peerA.SubmitTo("matrixB", "user", flow)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ack == nil || !strings.HasPrefix(resp.Ack.ID, "matrixB:") {
		t.Fatalf("ack = %+v", resp.Ack)
	}
	id := resp.Ack.ID
	exec, ok := peerB.Engine().Execution(id)
	if !ok {
		t.Fatal("B does not know the execution")
	}
	if err := exec.Wait(); err != nil {
		t.Fatal(err)
	}
	// Query the status from A: the id's prefix routes to B.
	st, err := peerA.Status("user", id, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "succeeded" || st.Name != "onB" {
		t.Errorf("forwarded status = %+v", st)
	}
	// Step-granular cross-peer status.
	sst, err := peerA.Status("user", id+"/onB/s", false)
	if err != nil || sst.Name != "s" {
		t.Errorf("cross-peer step status = %+v, %v", sst, err)
	}
	// Local submission and status still work.
	respA, err := peerA.SubmitTo("matrixA", "user", flow)
	if err != nil || !strings.HasPrefix(respA.Ack.ID, "matrixA:") {
		t.Fatalf("local submit = %+v, %v", respA, err)
	}
	execA, _ := peerA.Engine().Execution(respA.Ack.ID)
	if err := execA.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := peerA.Status("user", respA.Ack.ID, false); err != nil {
		t.Errorf("local status: %v", err)
	}
	// Unknown peer fails cleanly.
	if _, err := peerA.Status("user", "matrixZ:dgf-000001", false); err == nil {
		t.Errorf("unknown peer status accepted")
	}
	if _, err := peerA.SubmitTo("matrixZ", "user", flow); err == nil {
		t.Errorf("unknown peer submit accepted")
	}
}

func TestOwnerOf(t *testing.T) {
	tests := []struct{ id, want string }{
		{"matrixA:dgf-000001", "matrixA"},
		{"matrixA:dgf-000001/flow/step", "matrixA"},
		{"dgf-000001", ""},
		{"dgf-000001/flow", ""},
	}
	for _, tt := range tests {
		if got := OwnerOf(tt.id); got != tt.want {
			t.Errorf("OwnerOf(%q) = %q, want %q", tt.id, got, tt.want)
		}
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	e := newEngine(t, "")
	s, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	// The connection is dead; requests fail rather than hang.
	flow := dgl.NewFlow("f").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	if _, err := c.SubmitFlow("user", flow); err == nil {
		t.Errorf("request on closed server succeeded")
	}
	c.Close()
}

func BenchmarkE4WireRoundTrip(b *testing.B) {
	e := newEngine(b, "")
	s := NewServer(e)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	flow := dgl.NewFlow("f").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		resp, err := c.SubmitFlow("user", flow)
		if err != nil || resp.Error != "" {
			b.Fatalf("%v %v", resp, err)
		}
	}
}

func TestListExecutionsOverWire(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rows, err := c.List()
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty list = %v, %v", rows, err)
	}
	flow := dgl.NewFlow("listed").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	id, err := c.SubmitAsync("user", flow)
	if err != nil {
		t.Fatal(err)
	}
	exec, _ := e.Execution(id)
	if err := exec.Wait(); err != nil {
		t.Fatal(err)
	}
	rows, err = c.List()
	if err != nil || len(rows) != 1 {
		t.Fatalf("list = %v, %v", rows, err)
	}
	if rows[0].ID != id || rows[0].Name != "listed" || rows[0].State != "succeeded" || rows[0].User != "user" {
		t.Errorf("row = %+v", rows[0])
	}
	// Unknown verbs come back as errors.
	if _, err := c.control("defenestrate", "x"); err == nil {
		t.Errorf("unknown verb accepted")
	}
}

func TestListenErrors(t *testing.T) {
	e := newEngine(t, "")
	s := NewServer(e)
	if _, err := s.Listen("256.256.256.256:0"); err == nil {
		t.Errorf("bad address accepted")
	}
	// Listen after Close is rejected.
	s2 := NewServer(e)
	s2.Close()
	if _, err := s2.Listen("127.0.0.1:0"); err == nil {
		t.Errorf("listen after close accepted")
	}
	// Dial to a dead address fails.
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Errorf("dial to closed port succeeded")
	}
	if _, err := DialLookup("127.0.0.1:1"); err == nil {
		t.Errorf("lookup dial to closed port succeeded")
	}
}

func TestSubmitAsyncErrorPaths(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Invalid flow: SubmitAsync surfaces the server error.
	bad := dgl.NewFlow("bad").Step("s", dgl.Op("nosuch", nil)).Flow()
	if _, err := c.SubmitAsync("user", bad); err == nil {
		t.Errorf("invalid async flow accepted")
	}
	// Status of unknown id errors.
	if _, err := c.Status("user", "dgf-404", false); err == nil {
		t.Errorf("unknown status id accepted")
	}
}

func TestPeerStartErrors(t *testing.T) {
	e := newEngine(t, "p:")
	p := NewPeer("p", e)
	// Bad listen address.
	if _, err := p.Start("256.256.256.256:0", "127.0.0.1:1"); err == nil {
		t.Errorf("bad peer address accepted")
	}
	// Dead lookup server.
	p2 := NewPeer("p2", newEngine(t, "p2:"))
	if _, err := p2.Start("127.0.0.1:0", "127.0.0.1:1"); err == nil {
		t.Errorf("dead lookup accepted")
	}
	// Peer without a lookup connection cannot route.
	p3 := NewPeer("p3", newEngine(t, "p3:"))
	if _, err := p3.Status("u", "other:dgf-000001", false); err == nil {
		t.Errorf("routing without lookup accepted")
	}
}
