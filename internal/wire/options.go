package wire

import (
	"context"
	"errors"
	"fmt"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
)

// RouteMode is a submission's placement preference on a sharded
// network (WithRoute).
type RouteMode string

// Route modes.
const (
	// RouteAuto lets the accepting peer forward the flow to its shard
	// owner — the default behaviour of a sharded peer.
	RouteAuto RouteMode = RouteMode(dgl.RouteAuto)
	// RouteLocal pins the flow to the peer this client is connected
	// to, bypassing ring routing.
	RouteLocal RouteMode = RouteMode(dgl.RouteLocal)
)

// submitCfg collects the functional options of Client.Submit.
type submitCfg struct {
	async   bool
	route   RouteMode
	user    string
	token   string
	batch   []*dgl.Request
	isBatch bool
}

// SubmitOption configures one Client.Submit call.
type SubmitOption func(*submitCfg)

// WithAsync submits asynchronously: the server acknowledges with an
// execution id immediately and the flow runs in the background
// (SubmitResult.ID carries the id). Applies to every request of the
// call, batch items included.
func WithAsync() SubmitOption {
	return func(c *submitCfg) { c.async = true }
}

// WithRoute sets the submission's placement preference on a sharded
// network: RouteAuto forwards to the shard owner (the default on
// sharded peers), RouteLocal pins to the connected peer. Non-sharded
// servers ignore it.
func WithRoute(mode RouteMode) SubmitOption {
	return func(c *submitCfg) { c.route = mode }
}

// WithBatch adds more requests to the call: the primary request (when
// non-nil) and every batched one travel in a single KindBatch round
// trip on a multiplexed session (sequential submission against serial
// servers), answered positionally in SubmitResult.Responses.
// WithBatch() with no arguments still selects the batch reply shape
// for a single request.
func WithBatch(reqs ...*dgl.Request) SubmitOption {
	return func(c *submitCfg) {
		c.isBatch = true
		c.batch = append(c.batch, reqs...)
	}
}

// WithToken attaches a tenant bearer token (tenant.Authority.Mint,
// docs/TENANCY.md) to every request of the call. On a tenancy-enabled
// 1.7 server the verified token identity — not the claimed gridUser —
// is what admission scheduling, quotas and provenance account the work
// to; it overrides any session-level Client.SetToken for this call.
// Pre-1.7 servers skip the token and account the caller as anonymous.
func WithToken(tok string) SubmitOption {
	return func(c *submitCfg) { c.token = tok }
}

// WithUser names the claimed identity the server accounts a batch to
// (defaults to the first request's gridUser). On tenancy-enabled
// servers the claim must match the token's tenant — WithUser is the
// unauthenticated thin sibling of WithToken, kept for untenanted
// deployments and source compatibility (docs/WIRE.md, "Migrating from
// WithUser to WithToken").
func WithUser(name string) SubmitOption {
	return func(c *submitCfg) { c.user = name }
}

// SubmitResult is the unified reply of Client.Submit.
type SubmitResult struct {
	// Response answers the primary request (nil when Submit was called
	// with a nil primary and only WithBatch requests).
	Response *dgl.Response
	// Responses answers every request of the call positionally — the
	// primary first, then the WithBatch requests. Always populated.
	Responses []*dgl.Response
	// ID is the async acknowledgement id of the primary request (""
	// for sync submissions and nil primaries).
	ID string
}

// Submit is the single entry point for flow submission: one request,
// async or sync, optionally batched with more, with an explicit
// routing preference — all selected through functional options.
//
//	res, err := c.Submit(ctx, req)                          // sync
//	res, err := c.Submit(ctx, req, wire.WithAsync())        // async ack
//	res, err := c.Submit(ctx, req, wire.WithBatch(r2, r3))  // one round trip
//	res, err := c.Submit(ctx, req, wire.WithRoute(wire.RouteLocal))
//
// Requests are never mutated: options apply to shallow copies. The
// older entry points (SubmitContext, SubmitAsync, SubmitBatch, ...)
// remain as thin deprecated wrappers over this method's machinery.
func (c *Client) Submit(ctx context.Context, req *dgl.Request, opts ...SubmitOption) (*SubmitResult, error) {
	var cfg submitCfg
	for _, o := range opts {
		o(&cfg)
	}
	reqs := make([]*dgl.Request, 0, 1+len(cfg.batch))
	if req != nil {
		reqs = append(reqs, req)
	}
	reqs = append(reqs, cfg.batch...)
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%w: submit needs at least one request", dgferr.ErrInvalid)
	}
	prepared := make([]*dgl.Request, len(reqs))
	for i, r := range reqs {
		pr := *r // options never mutate the caller's request
		if cfg.async {
			pr.Async = true
		}
		if cfg.route != "" {
			pr.Route = string(cfg.route)
		}
		if cfg.token != "" {
			pr.Token = cfg.token
		}
		prepared[i] = &pr
	}

	res := &SubmitResult{}
	if !cfg.isBatch && len(prepared) == 1 {
		resp, err := c.submitOne(ctx, prepared[0])
		if err != nil {
			return nil, err
		}
		res.Responses = []*dgl.Response{resp}
	} else {
		user := cfg.user
		if user == "" {
			user = prepared[0].User.Name
		}
		resps, err := c.submitBatch(ctx, user, prepared)
		if err != nil {
			return nil, err
		}
		res.Responses = resps
	}
	if req != nil && len(res.Responses) > 0 {
		res.Response = res.Responses[0]
		if ack := res.Response.Ack; ack != nil && ack.Valid {
			res.ID = ack.ID
		}
	}
	return res, nil
}

// Err returns the primary response's typed error, decoded — nil when
// the submission succeeded. A convenience for the common
// submit-and-check call shape.
func (r *SubmitResult) Err() error {
	if r == nil || r.Response == nil || r.Response.Error == "" {
		return nil
	}
	return dgferr.Decode(r.Response.Error)
}

// Status returns the primary response's status tree, decoding a
// server-side failure into a typed error.
func (r *SubmitResult) Status() (*dgl.FlowStatus, error) {
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Response == nil || r.Response.Status == nil {
		return nil, errors.New("wire: response carries no status")
	}
	return r.Response.Status, nil
}
