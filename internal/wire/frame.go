// Package wire implements the network layer of the DfMS: a framed TCP
// protocol carrying DGL documents between clients and matrix servers,
// plus the peer-to-peer datagridflow network with lookup servers the
// paper describes ("Multiple DfMS servers can form a peer-to-peer
// datagridflow network with one or more lookup servers").
//
// Frames are a 1-byte kind, a 4-byte big-endian length, and the payload:
//
//   - KindDGL carries a dataGridRequest or dataGridResponse XML document
//     (the request-response model of the paper's Appendix A);
//   - KindControl carries a small JSON control verb (pause, resume,
//     cancel, restart, list, metrics) — a pragmatic extension for the
//     long-run process management the paper requires but DGL itself
//     does not encode.
//
// The full protocol — frame layout, request/response semantics, control
// opcodes, the lookup protocol and peer routing of execution ids — is
// specified in docs/WIRE.md; the metrics the layer emits are documented
// in docs/METRICS.md.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"datagridflow/internal/replica"
	"datagridflow/internal/tenant"
	"datagridflow/internal/vdata"
)

// Frame kinds.
// Each kind has a legacy text payload (XML for DGL documents, JSON for
// everything else) and, on protocol >= 1.4 sessions, a binary codec
// payload (internal/codec, docs/CODEC.md). The receiver sniffs the
// payload's first byte — binary starts with 0xDF, which no XML or JSON
// document can — and mirrors the request's encoding in its reply.
const (
	// KindDGL frames carry DGL request/response documents.
	KindDGL byte = 1
	// KindControl frames carry control verbs.
	KindControl byte = 2
	// KindBatch frames carry a JSON batch envelope of N DGL requests
	// (one submission round trip for many flows). Batch frames are a
	// protocol-1.2 feature: they only appear on multiplexed sessions.
	KindBatch byte = 3
	// KindDelegate frames carry a JSON delegation envelope: one peer
	// asks another to execute a subflow on its behalf and waits for the
	// final status (the federation plane, docs/FEDERATION.md). A
	// protocol-1.3 feature: clients only send it after a hello exchange
	// in which the server advertised >= 1.3.
	KindDelegate byte = 4
	// KindRoute frames carry a JSON routing envelope: a peer that
	// accepted a flow submission hands the whole request to the shard
	// owner the consistent-hash ring names for it (docs/FEDERATION.md,
	// "Sharded ownership"). The receiver is the terminal hop — it
	// executes locally, never re-routes. A protocol-1.5 feature:
	// clients only send it after a hello exchange in which the server
	// advertised >= 1.5; older peers simply keep local-accept.
	KindRoute byte = 5
	// KindReplicate frames carry a JSON replication envelope
	// (internal/replica.Frame): a shard owner streams blocks of its
	// lifecycle record log — or a catch-up snapshot — to a follower
	// peer, positioned by per-record sequence numbers
	// (docs/REPLICATION.md). The record block inside the envelope stays
	// in the sender's store encoding (JSONL or binary frames) and the
	// receiver sniffs it per block, so mixed-codec peers replicate to
	// each other. A protocol-1.6 feature: senders gate on the hello
	// reply and skip followers that advertised < 1.6, so mixed 1.5/1.6
	// federations interoperate.
	KindReplicate byte = 6
)

// MaxFrame bounds a frame payload (16 MiB): a defense against corrupt
// length prefixes, far above any real DGL document.
const MaxFrame = 16 << 20

// ErrFrameTooLarge reports a length prefix beyond MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame too large")

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [5]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (kind byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Protocol version, negotiated by the "hello" control verb. Majors must
// match for a session to proceed; minors are informational (additions
// only). Minor 2 adds the multiplexed framing and batch submission: when
// both ends of a hello exchange speak >= 1.2, the session switches to
// mux frames immediately after the hello reply. See docs/WIRE.md,
// "Version negotiation" and "Multiplexed framing".
const (
	ProtoMajor = 1
	ProtoMinor = 8
	// muxMinor is the minimum minor version that speaks mux framing.
	muxMinor = 2
	// delegateMinor is the minimum minor version that accepts
	// KindDelegate frames (federated subflow execution).
	delegateMinor = 3
	// binaryMinor is the minimum minor version that accepts binary
	// (internal/codec) payloads inside kind 1-4 frames. Negotiation is
	// per payload, not per session: hello stays JSON in both directions,
	// and after a >= 1.4 hello either end may send binary — the receiver
	// sniffs each payload's first byte and mirrors the encoding in its
	// reply, so 1.3-and-older peers transparently stay on JSON. See
	// docs/CODEC.md and docs/WIRE.md, "Version negotiation".
	binaryMinor = 4
	// routeMinor is the minimum minor version that accepts KindRoute
	// frames (sharded any-peer submission). A pre-1.5 peer never
	// receives one: senders gate on the hello reply and fall back to
	// local accept, so mixed 1.4/1.5 federations interoperate.
	routeMinor = 5
	// replMinor is the minimum minor version that accepts KindReplicate
	// frames (lifecycle-store replication). A pre-1.6 peer never
	// receives one: owners gate on the hello reply and skip that
	// follower (repl_skipped_peers_total), so mixed 1.5/1.6 federations
	// interoperate — the flows just lose a standby until the peer
	// upgrades.
	replMinor = 6
	// tenantMinor is the minimum minor version that understands tenant
	// bearer tokens (docs/TENANCY.md): a token offered during hello and
	// carried on submit/batch/delegate/route payloads, plus the
	// "tenants" control verb. Tokens are additive — a pre-1.7 peer
	// never sees one (senders gate on the hello reply) and a 1.7 server
	// admits untokened traffic under the anonymous tenant unless the
	// operator requires auth, so mixed 1.6/1.7 federations interoperate.
	tenantMinor = 7
	// vdataMinor is the minimum minor version that understands the
	// "vdata" control verb (docs/VDATA.md): fleet-wide lookup, publish
	// and invalidation of memoized derivations, with the bearer token on
	// each frame re-verified per tenant. A pre-1.8 peer never receives
	// one — remote lookups gate on the hello reply and the fleet
	// degrades to local-only memoization against that peer, so mixed
	// 1.7/1.8 federations interoperate.
	vdataMinor = 8
)

// MuxSupported reports whether a peer advertising major.minor can speak
// the multiplexed framing (same major, minor >= 1.2).
func MuxSupported(major, minor int) bool {
	return major == ProtoMajor && minor >= muxMinor
}

// DelegateSupported reports whether a peer advertising major.minor
// accepts delegation frames (same major, minor >= 1.3). Delegation
// rides the mux session, so a delegate-capable peer is mux-capable by
// construction.
func DelegateSupported(major, minor int) bool {
	return major == ProtoMajor && minor >= delegateMinor
}

// BinarySupported reports whether a peer advertising major.minor
// accepts binary codec payloads (same major, minor >= 1.4).
func BinarySupported(major, minor int) bool {
	return major == ProtoMajor && minor >= binaryMinor
}

// RouteSupported reports whether a peer advertising major.minor
// accepts route frames (same major, minor >= 1.5). Routing rides the
// mux session, so a route-capable peer is mux-capable by construction.
func RouteSupported(major, minor int) bool {
	return major == ProtoMajor && minor >= routeMinor
}

// ReplicateSupported reports whether a peer advertising major.minor
// accepts replicate frames (same major, minor >= 1.6). Replication
// rides the mux session, so a replicate-capable peer is mux-capable by
// construction.
func ReplicateSupported(major, minor int) bool {
	return major == ProtoMajor && minor >= replMinor
}

// TenantSupported reports whether a peer advertising major.minor
// understands tenant tokens and the "tenants" verb (same major, minor
// >= 1.7).
func TenantSupported(major, minor int) bool {
	return major == ProtoMajor && minor >= tenantMinor
}

// VdataSupported reports whether a peer advertising major.minor
// understands the "vdata" control verb (same major, minor >= 1.8).
func VdataSupported(major, minor int) bool {
	return major == ProtoMajor && minor >= vdataMinor
}

// WriteMuxFrame writes one multiplexed frame: the serial header plus a
// request id that correlates a response to its request, letting many
// requests share a connection concurrently.
//
//	offset  size  field
//	0       1     kind
//	1       4     length (big-endian uint32, payload bytes)
//	5       8     request id (big-endian uint64)
//	13      n     payload
func WriteMuxFrame(w io.Writer, kind byte, id uint64, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [13]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.BigEndian.PutUint64(hdr[5:13], id)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadMuxFrame reads one multiplexed frame.
func ReadMuxFrame(r io.Reader) (kind byte, id uint64, payload []byte, err error) {
	var hdr [13]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > MaxFrame {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	id = binary.BigEndian.Uint64(hdr[5:13])
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return hdr[0], id, payload, nil
}

// ProtoVersion renders a protocol version as "major.minor".
func ProtoVersion(major, minor int) string {
	return fmt.Sprintf("%d.%d", major, minor)
}

// ParseProtoVersion splits a "major.minor" version string.
func ParseProtoVersion(s string) (major, minor int, err error) {
	if _, err := fmt.Sscanf(s, "%d.%d", &major, &minor); err != nil {
		return 0, 0, fmt.Errorf("wire: bad protocol version %q", s)
	}
	return major, minor, nil
}

// Control is the JSON payload of a KindControl frame.
type Control struct {
	// Op is "hello", "pause", "resume", "cancel", "restart", "list",
	// "metrics", "store" or "compact".
	Op string `json:"op"`
	// ID is the execution id the verb applies to ("hello", "list" and
	// "metrics" ignore it).
	ID string `json:"id,omitempty"`
	// Proto is the client's protocol version ("1.1") for "hello".
	Proto string `json:"proto,omitempty"`
	// Token is the tenant bearer token (docs/TENANCY.md). On "hello" it
	// is the credential exchange: a 1.7 server verifies it and echoes
	// the tenant identity, failing the handshake on a forged or expired
	// token. Other verbs may carry it for per-request auth. Ignored by
	// pre-1.7 servers (additive field).
	Token string `json:"token,omitempty"`
	// Limit bounds the "tenants" verb's reply rows (0 = server default).
	Limit int `json:"limit,omitempty"`
	// Sub selects the "vdata" verb's sub-operation: "stats" (the
	// default), "lookup", "publish" or "invalidate" (wire >= 1.8,
	// docs/VDATA.md).
	Sub string `json:"sub,omitempty"`
	// User is the claimed tenant identity for verbs resolved per tenant
	// ("vdata"); with an authority attached the token must agree with it
	// (the same re-verification submissions get).
	User string `json:"user,omitempty"`
	// Key is the "vdata" verb's target: a derivation key for lookup, a
	// key or output path for invalidate.
	Key string `json:"key,omitempty"`
	// Data carries the JSON vdata.Entry of a "vdata" publish.
	Data string `json:"data,omitempty"`
}

// ControlResult is the JSON reply to a control frame.
type ControlResult struct {
	OK bool `json:"ok"`
	// ID echoes the execution id (the new id for restart).
	ID    string `json:"id,omitempty"`
	Error string `json:"error,omitempty"`
	// Proto is the server's protocol version, returned by "hello".
	Proto string `json:"proto,omitempty"`
	// Executions carries the listing for the "list" verb.
	Executions []ExecutionInfo `json:"executions,omitempty"`
	// Metrics carries the engine's obs.Snapshot (JSON) for the
	// "metrics" verb.
	Metrics json.RawMessage `json:"metrics,omitempty"`
	// Store carries the flow-state store summary for the "store" and
	// "compact" verbs.
	Store *StoreInfo `json:"store,omitempty"`
	// Owner carries the shard-ownership resolution for the "owner"
	// verb (docs/WIRE.md §"Control verbs").
	Owner *OwnerInfo `json:"owner,omitempty"`
	// Repl carries the replication summary for the "repl" verb
	// (docs/REPLICATION.md).
	Repl *ReplInfo `json:"repl,omitempty"`
	// Tenant is the authenticated tenant identity, echoed by "hello"
	// when the client's token verified (docs/TENANCY.md).
	Tenant string `json:"tenant,omitempty"`
	// Tenants carries the tenancy summary for the "tenants" verb.
	Tenants *TenantsInfo `json:"tenants,omitempty"`
	// Vdata carries the virtual-data reply for the "vdata" verb
	// (wire >= 1.8, docs/VDATA.md).
	Vdata *VdataInfo `json:"vdata,omitempty"`
}

// VdataInfo is the reply to the "vdata" control verb: the catalog's
// shape for "stats", the resolution for "lookup", the drop count for
// "invalidate" (docs/VDATA.md).
type VdataInfo struct {
	// Enabled reports whether a derivation catalog is attached at all.
	Enabled bool `json:"enabled"`
	// Entries/Tenants/Publishes/Invalidations/Durable mirror
	// vdata.Stats for the "stats" sub-operation.
	Entries       int    `json:"entries,omitempty"`
	Tenants       int    `json:"tenants,omitempty"`
	Publishes     uint64 `json:"publishes,omitempty"`
	Invalidations uint64 `json:"invalidations,omitempty"`
	Durable       bool   `json:"durable,omitempty"`
	// Found and Entry answer a "lookup": the memoized derivation, tenant
	// permitting.
	Found bool         `json:"found,omitempty"`
	Entry *vdata.Entry `json:"entry,omitempty"`
	// Removed counts the derivations an "invalidate" dropped.
	Removed int `json:"removed,omitempty"`
}

// StoreInfo is the reply to the "store" control verb: the shape of the
// server's flow-state store, for operators (dgfctl store).
type StoreInfo struct {
	// Segments is the number of on-disk segment files.
	Segments int `json:"segments"`
	// Records counts live records across the segments.
	Records int `json:"records"`
	// ReplayRecords is how many records the store replayed when it was
	// last opened — the restart cost.
	ReplayRecords int `json:"replayRecords"`
	// Live counts executions that are neither ended nor pruned.
	Live int `json:"live"`
	// Passivated counts live executions evicted from engine memory.
	Passivated int `json:"passivated"`
	// Resident counts executions currently in engine memory.
	Resident int `json:"resident"`
	// SnapshotLag is the number of records appended since the last
	// snapshot.
	SnapshotLag int `json:"snapshotLag"`
	// Failed carries the sticky write/fsync error that poisoned the
	// store, if any — a failed store rejects all further appends.
	Failed string `json:"failed,omitempty"`
	// Compaction reports the compaction a "compact" verb just ran
	// (nil for "store").
	Compaction *CompactionInfo `json:"compaction,omitempty"`
}

// CompactionInfo reports one compaction run.
type CompactionInfo struct {
	SegmentsBefore int `json:"segmentsBefore"`
	RecordsBefore  int `json:"recordsBefore"`
	RecordsKept    int `json:"recordsKept"`
	RecordsDropped int `json:"recordsDropped"`
}

// ExecutionInfo is one row of a "list" reply.
type ExecutionInfo struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"`
	User  string `json:"user"`
}

// Batch is the JSON payload of a KindBatch frame: N DGL request
// documents submitted in one round trip. User names the submitting
// identity for admission scheduling; each embedded request still
// carries its own gridUser, which the engine enforces per item.
type Batch struct {
	User string `json:"user"`
	// Token authenticates the submitting tenant (wire >= 1.7); absent
	// means anonymous, rejected only when the server requires auth.
	Token string `json:"token,omitempty"`
	// Requests are XML dataGridRequest documents, one per item.
	Requests []string `json:"requests"`
}

// BatchResult is the JSON reply to a batch frame. Items are answered
// positionally and independently: a malformed or failing item yields a
// response whose <error> element is set, never a dropped batch.
type BatchResult struct {
	OK bool `json:"ok"`
	// Error reports a batch-level failure (unparsable envelope,
	// admission rejection); per-item failures live inside Responses.
	Error string `json:"error,omitempty"`
	// Responses are XML dataGridResponse documents, one per request.
	Responses []string `json:"responses,omitempty"`
}

// Delegate is the JSON payload of a KindDelegate frame: one peer hands
// a subflow to another for execution. The receiving server validates
// and runs the request synchronously (the frame's response carries the
// final status), under its own admission scheduler — a delegation
// occupies one admission slot, like any other flow.
type Delegate struct {
	// User is the identity the delegated flow runs as (and the
	// admission account it is charged to).
	User string `json:"user"`
	// Token is the originating tenant's bearer token, forwarded so the
	// federated hop preserves the authenticated identity (wire >= 1.7,
	// docs/TENANCY.md). The receiving peer re-verifies it against its
	// own authority (shared secret).
	Token string `json:"token,omitempty"`
	// Request is a complete XML dataGridRequest document carrying the
	// subflow, with the delegating peer's parent-scope variable values
	// already bound into the flow's variable block (late binding
	// resolves on the delegating side; see docs/FEDERATION.md).
	Request string `json:"request"`
	// Origin names the delegating peer, for the remote server's logs
	// and provenance.
	Origin string `json:"origin,omitempty"`
	// ParentExec and ParentNode locate the delegating node in the
	// origin peer's execution tree, so the two provenance trails can be
	// joined.
	ParentExec string `json:"parentExec,omitempty"`
	ParentNode string `json:"parentNode,omitempty"`
}

// DelegateResult is the JSON reply to a delegate frame.
type DelegateResult struct {
	OK bool `json:"ok"`
	// Error is the typed (dgferr-encoded) failure: either a
	// transport/validation problem or the delegated flow's own terminal
	// error. Status may still be set alongside it.
	Error string `json:"error,omitempty"`
	// ID is the remote execution id ("peerB:dgf-000042") — globally
	// resolvable from any peer via status forwarding (docs/WIRE.md §3).
	ID string `json:"id,omitempty"`
	// Status is the final XML <flowStatus> tree of the remote run.
	Status string `json:"status,omitempty"`
}

// Route is the JSON payload of a KindRoute frame: the accepting peer
// hands a whole flow submission to the shard owner the ring names for
// it. Unlike Delegate (a subtree of a running flow), a routed request
// becomes the receiver's own top-level execution — the receiver *is*
// the owner, and the flow's id carries its prefix. The receiver is
// the terminal hop: it verifies it still holds the shard's lease,
// then executes locally and never re-routes (loop prevention).
type Route struct {
	// User is the submitting identity the receiver's admission
	// scheduler charges the request to.
	User string `json:"user"`
	// Token is the submitting tenant's bearer token, forwarded so the
	// shard-owner hop preserves the authenticated identity (wire >=
	// 1.7, docs/TENANCY.md).
	Token string `json:"token,omitempty"`
	// Request is the complete XML dataGridRequest document. Route
	// envelopes always ride JSON/XML — they are peer control traffic,
	// off the client hot path the binary codec serves.
	Request string `json:"request"`
	// Shard is the shard index the routing peer mapped the submission
	// to; the receiver refuses (NotOwner) if it no longer holds its
	// lease — the drain/claim exclusivity check.
	Shard int `json:"shard"`
	// Origin names the routing peer, for logs and metrics.
	Origin string `json:"origin,omitempty"`
}

// RouteResult is the JSON reply to a route frame.
type RouteResult struct {
	OK bool `json:"ok"`
	// Error is the typed (dgferr-encoded) failure — transport-level,
	// ownership refusal, or the flow's own synchronous failure.
	Error string `json:"error,omitempty"`
	// NotOwner reports an ownership refusal: the receiver does not
	// hold the shard's lease (drained or lost between the routing
	// decision and arrival). The sender refreshes its owner map and
	// re-places the flow.
	NotOwner bool `json:"notOwner,omitempty"`
	// Owner is the receiver's current view of the shard's holder, a
	// redirect hint alongside NotOwner.
	Owner string `json:"owner,omitempty"`
	// Response is the XML dataGridResponse of the executed submission
	// (ack for async, final status for sync).
	Response string `json:"response,omitempty"`
}

// OwnerInfo is the reply to the "owner" control verb: where a flow id
// (or routing key) currently lives on the sharded network.
type OwnerInfo struct {
	// ID echoes the resolved id.
	ID string `json:"id"`
	// Peer is the owning peer's name; Addr its address when the lookup
	// registry could resolve it.
	Peer string `json:"peer"`
	Addr string `json:"addr,omitempty"`
	// Shard is the id's shard index.
	Shard int `json:"shard"`
	// Source says how the owner was resolved: "tracked" (this peer
	// recorded the accept), "prefix" (the id's owner prefix resolved
	// through the registry), or "ring" (the shard's current lease
	// holder — the re-placement target when the prefix peer is dead).
	Source string `json:"source"`
}

// Replicate is the payload of a KindReplicate frame and
// ReplicateResult its reply — the replication envelope and ack defined
// by internal/replica and specified byte-for-byte in docs/WIRE.md
// §"Replicate frames". The envelope rides binary when the session
// negotiated it (>= 1.4) and JSON otherwise; the record block inside
// keeps the sender's store encoding either way, never transcoded in
// flight.
type (
	Replicate       = replica.Frame
	ReplicateResult = replica.Ack
)

// TenantsInfo is the reply to the "tenants" control verb: the server's
// tenancy posture and its most active tenants (docs/TENANCY.md).
type TenantsInfo struct {
	// Enabled reports whether a tenant registry is attached at all.
	Enabled bool `json:"enabled"`
	// Auth reports whether a token authority is attached (tokens are
	// verified); Require that untokened submissions are rejected.
	Auth    bool `json:"auth,omitempty"`
	Require bool `json:"require,omitempty"`
	// Registered counts explicitly registered tenants.
	Registered int `json:"registered"`
	// Tenants lists the most active tenants (by flows in flight, then
	// store bytes), bounded by the request's Limit.
	Tenants []tenant.Info `json:"tenants,omitempty"`
}

// ReplInfo is the reply to the "repl" control verb: this peer's
// replication posture — the followers it streams to and the sources it
// stands by for (docs/REPLICATION.md, "Observability").
type ReplInfo struct {
	// Mode is the ack mode ("quorum", "chain" or "async").
	Mode string `json:"mode"`
	// Seq is the local store's replication cursor: the sequence number
	// of its last durable record.
	Seq uint64 `json:"seq"`
	// Followers lists the peers this owner streams to and how far each
	// has acknowledged.
	Followers []ReplFollowerInfo `json:"followers,omitempty"`
	// Sources lists the owners this peer holds replicas for.
	Sources []ReplSourceInfo `json:"sources,omitempty"`
}

// ReplFollowerInfo is one follower's acknowledged position.
type ReplFollowerInfo struct {
	Peer     string `json:"peer"`
	AckedSeq uint64 `json:"ackedSeq"`
}

// ReplSourceInfo is one replicated source's standby state.
type ReplSourceInfo struct {
	Source string `json:"source"`
	// LastSeq is the highest contiguous sequence applied from the
	// source.
	LastSeq uint64 `json:"lastSeq"`
	// Live counts live executions in the replica — what a promotion
	// would adopt.
	Live int `json:"live"`
	// Promoted reports the replica was already taken over.
	Promoted bool `json:"promoted"`
}
