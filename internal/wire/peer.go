package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/matrix"
	"datagridflow/internal/obs"
	"datagridflow/internal/replica"
	"datagridflow/internal/scheduler"
	"datagridflow/internal/shard"
	"datagridflow/internal/tenant"
	"datagridflow/internal/vdata"
)

// lookupMsg is the JSON protocol of the lookup server: newline-delimited
// request/response pairs.
type lookupMsg struct {
	Op    string            `json:"op"` // "register", "resolve", "list", "heartbeat", "unregister", "claim", "release"
	Name  string            `json:"name,omitempty"`
	Addr  string            `json:"addr,omitempty"`
	OK    bool              `json:"ok,omitempty"`
	Error string            `json:"error,omitempty"`
	Peers map[string]string `json:"peers,omitempty"`
	// Load rides heartbeat requests: the peer's self-reported figures.
	Load *scheduler.PeerLoad `json:"load,omitempty"`
	// Infos rides heartbeat and list replies: every live peer with its
	// age and last gossiped load.
	Infos []PeerInfo `json:"infos,omitempty"`
	// Shards rides claim/release requests: the shard numbers the peer
	// wants to hold or give up.
	Shards []int `json:"shards,omitempty"`
	// Owners rides claim and heartbeat replies on a sharded registry:
	// the full live shard→holder map, the gossip unit ring routing is
	// built from.
	Owners map[int]string `json:"owners,omitempty"`
	// Token rides mutating requests against a token-gated registry
	// (LookupServer.SetAuth, docs/TENANCY.md): a tenant bearer token
	// authorizing registration, heartbeat and lease operations.
	Token string `json:"token,omitempty"`
	// Keys rides vput requests: derivation keys the named peer's
	// virtual-data catalog now holds (docs/VDATA.md).
	Keys []string `json:"keys,omitempty"`
	// Key rides vget requests and replies: the derivation key to locate.
	Key string `json:"key,omitempty"`
}

// PeerInfo is one live peer as the lookup registry knows it — the
// gossip unit heartbeat replies and `dgfctl peers` are built from.
type PeerInfo struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// AgeSeconds is how long ago the peer last registered or heartbeat.
	AgeSeconds float64 `json:"ageSeconds"`
	// Load is the peer's last self-reported load (zero until its first
	// heartbeat).
	Load scheduler.PeerLoad `json:"load"`
}

// DefaultLookupTTL is the liveness window: a peer silent for longer is
// evicted from the registry on the next operation.
const DefaultLookupTTL = 45 * time.Second

// peerEntry is one registration with its liveness and gossip state.
type peerEntry struct {
	addr     string
	lastSeen time.Time
	load     scheduler.PeerLoad
}

// LookupServer is the registry peers use to find one another: matrix
// servers register name→address, and peers resolve names when routing
// status queries for executions they do not own. Registrations are
// leases, not permanent rows: every operation sweeps entries whose last
// register/heartbeat is older than the TTL (lookup_evictions_total),
// so a crashed peer disappears from resolve/list/gossip within one TTL.
type LookupServer struct {
	obs      *obs.Registry
	mu       sync.Mutex
	peers    map[string]*peerEntry
	ttl      time.Duration
	now      func() time.Time
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
	// leases is the shard-ownership table of a sharded registry (nil
	// until SetShards). Leases share the registry's liveness window: a
	// heartbeat renews them, eviction and unregister release them.
	leases *shard.LeaseTable
	// auth, when set (SetAuth), gates every mutating operation behind a
	// verified tenant bearer token (docs/TENANCY.md).
	auth *tenant.Authority
	// vkeys maps derivation keys to the name of the peer that announced
	// them (vput), so any peer can locate a memoized derivation with one
	// vget (docs/VDATA.md). Rows die with their peer: eviction and
	// unregister drop them, so a vget never routes to a dead holder.
	vkeys map[string]string
}

// NewLookupServer returns an empty registry emitting metrics into
// obs.Default() (override with SetObs before Listen).
func NewLookupServer() *LookupServer {
	return &LookupServer{
		obs:   obs.Default(),
		peers: make(map[string]*peerEntry),
		ttl:   DefaultLookupTTL,
		now:   time.Now,
		conns: make(map[net.Conn]bool),
		vkeys: make(map[string]string),
	}
}

// SetObs redirects the lookup server's metrics to r.
func (s *LookupServer) SetObs(r *obs.Registry) { s.obs = r }

// SetTTL overrides the liveness window (0 or negative disables
// eviction). Call before Listen.
func (s *LookupServer) SetTTL(d time.Duration) {
	s.mu.Lock()
	s.ttl = d
	s.mu.Unlock()
}

// SetAuth token-gates the registry (docs/TENANCY.md): every mutating
// operation — register, heartbeat, unregister, claim, release — must
// carry a bearer token that verifies against the shared secret
// (lookup_auth_failures_total counts refusals). Read operations
// (resolve, list) stay open: the peer directory is not a secret, the
// right to appear in it is. Call before Listen; nil removes the gate.
func (s *LookupServer) SetAuth(a *tenant.Authority) {
	s.mu.Lock()
	s.auth = a
	s.mu.Unlock()
}

// authorize verifies the token of one mutating lookup operation.
func (s *LookupServer) authorize(msg *lookupMsg) error {
	s.mu.Lock()
	a := s.auth
	s.mu.Unlock()
	if a == nil {
		return nil
	}
	if _, err := a.Verify(msg.Token); err != nil {
		s.obs.Counter("lookup_auth_failures_total").Inc()
		return err
	}
	return nil
}

// setNow overrides the registry clock, for eviction tests.
func (s *LookupServer) setNow(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// SetShards turns the registry into the lease authority of an n-shard
// network: peers claim shards through "claim" ops, heartbeats renew
// them, and eviction or unregister releases them — so a dead peer's
// shards become claimable within one TTL. Call before Listen, with the
// same n on every peer (`-shards` on matrixd and lookupd).
func (s *LookupServer) SetShards(n int) {
	s.mu.Lock()
	if n > 0 {
		s.leases = shard.NewLeaseTable(n)
	} else {
		s.leases = nil
	}
	s.mu.Unlock()
}

// leaseTTL returns the lease liveness window. Caller holds s.mu.
func (s *LookupServer) leaseTTL() time.Duration {
	if s.ttl > 0 {
		return s.ttl
	}
	return DefaultLookupTTL
}

// sweepLocked evicts entries beyond the TTL and refreshes the
// lookup_peers_alive gauge. Caller holds s.mu.
func (s *LookupServer) sweepLocked() {
	if s.ttl > 0 {
		cut := s.now().Add(-s.ttl)
		for name, e := range s.peers {
			if e.lastSeen.Before(cut) {
				delete(s.peers, name)
				s.obs.Counter("lookup_evictions_total").Inc()
				if s.leases != nil {
					// The peer is dead as far as the registry is concerned:
					// free its shards so survivors can claim them now rather
					// than waiting out each lease individually.
					s.leases.ReleaseAll(name)
				}
				s.dropVdataLocked(name)
			}
		}
	}
	s.obs.Gauge("lookup_peers_alive").Set(int64(len(s.peers)))
}

// dropVdataLocked forgets every derivation key announced by a departed
// peer. Its catalog may well survive a restart — the peer re-announces
// Keys() on its next Start. Caller holds s.mu.
func (s *LookupServer) dropVdataLocked(name string) {
	for key, holder := range s.vkeys {
		if holder == name {
			delete(s.vkeys, key)
		}
	}
	s.obs.Gauge("lookup_vdata_keys").Set(int64(len(s.vkeys)))
}

// infosLocked snapshots the live peers as gossip rows, sorted by name
// upstream of JSON (map iteration would be unstable). Caller holds s.mu.
func (s *LookupServer) infosLocked() []PeerInfo {
	now := s.now()
	out := make([]PeerInfo, 0, len(s.peers))
	for name, e := range s.peers {
		out = append(out, PeerInfo{
			Name:       name,
			Addr:       e.addr,
			AgeSeconds: now.Sub(e.lastSeen).Seconds(),
			Load:       e.load,
		})
	}
	for i := 1; i < len(out); i++ { // insertion sort: n is small
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Listen binds the registry to addr and returns the bound address.
func (s *LookupServer) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = true
			s.mu.Unlock()
			s.wg.Add(1)
			go s.serve(conn)
		}
	}()
	return l.Addr().String(), nil
}

func (s *LookupServer) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var msg lookupMsg
		if err := dec.Decode(&msg); err != nil {
			return
		}
		var reply lookupMsg
		switch msg.Op {
		case "register", "resolve", "list", "heartbeat", "unregister", "claim", "release", "vput", "vget":
			s.obs.Counter("lookup_requests_total", "op", msg.Op).Inc()
		default:
			s.obs.Counter("lookup_requests_total", "op", "unknown").Inc()
		}
		switch msg.Op {
		case "register", "heartbeat", "unregister", "claim", "release", "vput":
			if err := s.authorize(&msg); err != nil {
				if werr := enc.Encode(lookupMsg{Error: "lookup: " + err.Error()}); werr != nil {
					return
				}
				continue
			}
		}
		switch msg.Op {
		case "register":
			if msg.Name == "" || msg.Addr == "" {
				reply = lookupMsg{Error: "register needs name and addr"}
				break
			}
			s.mu.Lock()
			e := &peerEntry{addr: msg.Addr, lastSeen: s.now()}
			if prev, ok := s.peers[msg.Name]; ok {
				// Re-registration keeps the last gossiped load until the
				// next heartbeat refreshes it.
				e.load = prev.load
			}
			s.peers[msg.Name] = e
			s.sweepLocked()
			s.mu.Unlock()
			reply = lookupMsg{OK: true}
		case "heartbeat":
			// A heartbeat renews the lease, publishes load, and carries
			// back the full live-peer gossip — one round trip keeps a peer
			// both registered and informed.
			if msg.Name == "" || msg.Addr == "" {
				reply = lookupMsg{Error: "heartbeat needs name and addr"}
				break
			}
			s.mu.Lock()
			e := &peerEntry{addr: msg.Addr, lastSeen: s.now()}
			if msg.Load != nil {
				e.load = *msg.Load
			} else if prev, ok := s.peers[msg.Name]; ok {
				e.load = prev.load
			}
			s.peers[msg.Name] = e
			s.sweepLocked()
			infos := s.infosLocked()
			var owners map[int]string
			if s.leases != nil {
				// One round trip keeps a sharded peer registered, its
				// leases renewed, and its ring view current.
				s.leases.Renew(msg.Name, s.now(), s.leaseTTL())
				owners = s.leases.Owners(s.now())
			}
			s.mu.Unlock()
			reply = lookupMsg{OK: true, Infos: infos, Owners: owners}
		case "unregister":
			s.mu.Lock()
			delete(s.peers, msg.Name)
			if s.leases != nil {
				s.leases.ReleaseAll(msg.Name)
			}
			s.dropVdataLocked(msg.Name)
			s.sweepLocked()
			s.mu.Unlock()
			reply = lookupMsg{OK: true}
		case "vput":
			// A peer announces derivation keys its catalog holds. Rows are
			// advisory routing hints: the holder's wire server re-verifies
			// tenancy on the actual lookup (serveVdata), so a poisoned
			// announcement can misroute a probe but never leak an entry.
			if msg.Name == "" || len(msg.Keys) == 0 {
				reply = lookupMsg{Error: "vput needs name and keys"}
				break
			}
			s.mu.Lock()
			for _, k := range msg.Keys {
				if k != "" {
					s.vkeys[k] = msg.Name
				}
			}
			s.obs.Gauge("lookup_vdata_keys").Set(int64(len(s.vkeys)))
			s.mu.Unlock()
			reply = lookupMsg{OK: true}
		case "vget":
			// Open read, like resolve: key placement is not a secret, the
			// entry behind it is (and stays tenant-gated at the holder).
			if msg.Key == "" {
				reply = lookupMsg{Error: "vget needs key"}
				break
			}
			s.mu.Lock()
			s.sweepLocked()
			holder, ok := s.vkeys[msg.Key]
			var addr string
			if ok {
				if e, live := s.peers[holder]; live {
					addr = e.addr
				} else {
					ok = false
				}
			}
			s.mu.Unlock()
			if !ok {
				reply = lookupMsg{Error: "unknown derivation key"}
			} else {
				reply = lookupMsg{OK: true, Name: holder, Addr: addr}
			}
		case "claim":
			if msg.Name == "" {
				reply = lookupMsg{Error: "claim needs name"}
				break
			}
			s.mu.Lock()
			if s.leases == nil {
				s.mu.Unlock()
				reply = lookupMsg{Error: "registry is not sharded"}
				break
			}
			s.sweepLocked()
			now, ttl := s.now(), s.leaseTTL()
			granted := 0
			for _, sh := range msg.Shards {
				if holder, ok := s.leases.Claim(sh, msg.Name, now, ttl); ok && holder == msg.Name {
					granted++
				}
			}
			owners := s.leases.Owners(now)
			s.mu.Unlock()
			s.obs.Counter("lookup_shard_claims_total").Add(int64(granted))
			reply = lookupMsg{OK: true, Owners: owners}
		case "release":
			s.mu.Lock()
			if s.leases == nil {
				s.mu.Unlock()
				reply = lookupMsg{Error: "registry is not sharded"}
				break
			}
			for _, sh := range msg.Shards {
				s.leases.Release(sh, msg.Name)
			}
			owners := s.leases.Owners(s.now())
			s.mu.Unlock()
			reply = lookupMsg{OK: true, Owners: owners}
		case "resolve":
			s.mu.Lock()
			s.sweepLocked()
			e, ok := s.peers[msg.Name]
			s.mu.Unlock()
			if !ok {
				reply = lookupMsg{Error: "unknown peer " + msg.Name}
			} else {
				reply = lookupMsg{OK: true, Addr: e.addr}
			}
		case "list":
			s.mu.Lock()
			s.sweepLocked()
			peers := make(map[string]string, len(s.peers))
			for k, e := range s.peers {
				peers[k] = e.addr
			}
			infos := s.infosLocked()
			s.mu.Unlock()
			reply = lookupMsg{OK: true, Peers: peers, Infos: infos}
		default:
			reply = lookupMsg{Error: "unknown op " + msg.Op}
		}
		if err := enc.Encode(reply); err != nil {
			return
		}
	}
}

// Close stops the registry: the listener and every live connection.
func (s *LookupServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// LookupClient talks to a lookup server.
type LookupClient struct {
	mu    sync.Mutex
	conn  net.Conn
	dec   *json.Decoder
	enc   *json.Encoder
	token string
}

// SetToken attaches a tenant bearer token to every subsequent call —
// required by registries token-gated with LookupServer.SetAuth,
// skipped (harmlessly) by open ones.
func (c *LookupClient) SetToken(tok string) {
	c.mu.Lock()
	c.token = tok
	c.mu.Unlock()
}

// DialLookup connects to a lookup server.
func DialLookup(addr string) (*LookupClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial lookup %s: %w", addr, err)
	}
	return &LookupClient{conn: conn, dec: json.NewDecoder(bufio.NewReader(conn)), enc: json.NewEncoder(conn)}, nil
}

func (c *LookupClient) call(msg lookupMsg) (lookupMsg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if msg.Token == "" {
		msg.Token = c.token
	}
	if err := c.enc.Encode(msg); err != nil {
		return lookupMsg{}, err
	}
	var reply lookupMsg
	if err := c.dec.Decode(&reply); err != nil {
		return lookupMsg{}, err
	}
	if reply.Error != "" {
		return reply, errors.New(reply.Error)
	}
	return reply, nil
}

// Register announces a peer.
func (c *LookupClient) Register(name, addr string) error {
	_, err := c.call(lookupMsg{Op: "register", Name: name, Addr: addr})
	return err
}

// Resolve returns the address of a named peer.
func (c *LookupClient) Resolve(name string) (string, error) {
	reply, err := c.call(lookupMsg{Op: "resolve", Name: name})
	return reply.Addr, err
}

// List returns every registered peer.
func (c *LookupClient) List() (map[string]string, error) {
	reply, err := c.call(lookupMsg{Op: "list"})
	return reply.Peers, err
}

// ListInfos returns every live peer with liveness age and gossiped load.
func (c *LookupClient) ListInfos() ([]PeerInfo, error) {
	reply, err := c.call(lookupMsg{Op: "list"})
	return reply.Infos, err
}

// Heartbeat renews a peer's lease, publishes its load, and returns the
// registry's live-peer gossip.
func (c *LookupClient) Heartbeat(name, addr string, load scheduler.PeerLoad) ([]PeerInfo, error) {
	infos, _, err := c.HeartbeatShards(name, addr, load)
	return infos, err
}

// HeartbeatShards is Heartbeat on a sharded registry: the same renewal
// round trip additionally renews the peer's shard leases and returns
// the live shard→holder map. Against an unsharded registry the map is
// nil.
func (c *LookupClient) HeartbeatShards(name, addr string, load scheduler.PeerLoad) ([]PeerInfo, map[int]string, error) {
	reply, err := c.call(lookupMsg{Op: "heartbeat", Name: name, Addr: addr, Load: &load})
	return reply.Infos, reply.Owners, err
}

// ClaimShards attempts to lease the given shards for name, returning
// the registry's resulting live shard→holder map — which reports both
// what was granted and who holds the refusals.
func (c *LookupClient) ClaimShards(name string, shards []int) (map[int]string, error) {
	reply, err := c.call(lookupMsg{Op: "claim", Name: name, Shards: shards})
	return reply.Owners, err
}

// ReleaseShards frees the given shards if name holds them (the drain
// path), returning the resulting live shard→holder map.
func (c *LookupClient) ReleaseShards(name string, shards []int) (map[int]string, error) {
	reply, err := c.call(lookupMsg{Op: "release", Name: name, Shards: shards})
	return reply.Owners, err
}

// AnnounceVdata records name as the holder of the given derivation
// keys, so other peers' vget probes route to it (docs/VDATA.md). A
// token-gated registry requires the client token, like register.
func (c *LookupClient) AnnounceVdata(name string, keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	_, err := c.call(lookupMsg{Op: "vput", Name: name, Keys: keys})
	return err
}

// ResolveVdata returns the name and address of the live peer holding a
// derivation key; an error means no live holder is known.
func (c *LookupClient) ResolveVdata(key string) (name, addr string, err error) {
	reply, err := c.call(lookupMsg{Op: "vget", Key: key})
	return reply.Name, reply.Addr, err
}

// Unregister removes a peer's registration immediately (a clean
// shutdown, rather than waiting out the TTL).
func (c *LookupClient) Unregister(name string) error {
	_, err := c.call(lookupMsg{Op: "unregister", Name: name})
	return err
}

// Close closes the connection.
func (c *LookupClient) Close() error { return c.conn.Close() }

// Peer is one node of the datagridflow network: a named matrix server
// registered with a lookup service. Status queries for executions owned
// by other peers (recognizable by their "name:" id prefix) are resolved
// through the lookup service and forwarded — the shared-identifier
// property of the paper ("The identifier for any particular task or flow
// can be shared with all other processes").
type Peer struct {
	Name   string
	server *Server
	lookup *LookupClient
	addr   string // bound address, set by Start
	// shardMgr, when set (EnableSharding, before Start), turns this
	// peer into a sharded-ownership node: see shardroute.go.
	shardMgr *shard.Manager
	// replSender/replReceiver, when set (EnableReplication, before
	// Start), make this a replicating node: see repl.go.
	replSender   *replica.Sender
	replReceiver *replica.Receiver
	replCfg      ReplicationConfig
	// lookupToken, when set (SetLookupToken, before Start), rides every
	// lookup registration and heartbeat — required against a registry
	// token-gated with LookupServer.SetAuth (docs/TENANCY.md).
	lookupToken string
	// vcat, when set (EnableVdata, before Start), makes this a
	// derivation-sharing node: pure-step results publish into the
	// catalog, announce to the lookup registry, and misses probe the
	// announced holder (docs/VDATA.md).
	vcat *vdata.Catalog
	// vdataToken, when set (SetVdataToken, before Start), rides every
	// remote derivation lookup — required against peers running with
	// -require-auth, where the tenant identity is re-verified per lookup.
	vdataToken string

	mu      sync.Mutex
	clients map[string]*Client
}

// NewPeer creates a peer over an engine. The engine should have been
// built with matrix.Config{IDPrefix: name + ":"} so its execution ids
// route back to this peer.
func NewPeer(name string, engine *matrix.Engine) *Peer {
	return NewPeerConfig(name, engine, ServerConfig{})
}

// NewPeerConfig is NewPeer with explicit wire-server tuning (admission
// pool size, queue bounds, protocol pinning).
func NewPeerConfig(name string, engine *matrix.Engine, cfg ServerConfig) *Peer {
	return &Peer{Name: name, server: NewServerConfig(engine, cfg), clients: make(map[string]*Client)}
}

// SetLookupToken attaches a tenant bearer token to this peer's lookup
// registration, heartbeats and shard-lease operations. Required when
// the registry is token-gated (LookupServer.SetAuth); harmless
// otherwise. Call before Start.
func (p *Peer) SetLookupToken(tok string) { p.lookupToken = tok }

// EnableVdata attaches a derivation catalog to this peer and wires the
// fleet-wide memoization plane (docs/VDATA.md): the engine consults the
// catalog before running pure steps, every publish announces its key to
// the lookup registry, and local misses probe the announced holder over
// the wire (1.8's vdata verb; older holders degrade to local-only).
// Call before Start.
func (p *Peer) EnableVdata(cat *vdata.Catalog) {
	p.vcat = cat
	cat.SetPeer(p.Name)
	eng := p.server.Engine()
	eng.SetVdata(cat)
	eng.SetVdataRemote(p.vdataRemote)
	eng.SetVdataLocator(p.vdataLocate)
	cat.SetAnnounce(p.announceVdata)
}

// vdataLocate is the engine's holder-location hook: one registry round
// trip, no entry fetch — the vdata-locality placement hint.
func (p *Peer) vdataLocate(key string) (string, bool) {
	if p.lookup == nil {
		return "", false
	}
	name, _, err := p.lookup.ResolveVdata(key)
	return name, err == nil && name != ""
}

// SetVdataToken attaches a tenant bearer token to this peer's remote
// derivation lookups. Required against -require-auth peers, which
// re-verify the claimed tenant on every vdata operation; harmless
// otherwise. Call before Start.
func (p *Peer) SetVdataToken(tok string) { p.vdataToken = tok }

// announceVdata is the catalog's publish hook: best-effort — a failed
// announcement costs remote reuse until the restart re-announcement,
// never correctness.
func (p *Peer) announceVdata(key string) {
	if p.lookup == nil {
		return
	}
	if err := p.lookup.AnnounceVdata(p.Name, []string{key}); err != nil {
		p.server.Engine().Obs().Counter("wire_vdata_announce_errors_total").Inc()
	}
}

// vdataRemote is the engine's remote-lookup hook: locate the announced
// holder through the registry, then fetch the entry over the wire. Any
// failure — no holder, a 1.7 holder without the vdata verb, a token the
// holder refuses — reports a miss and the step simply executes.
func (p *Peer) vdataRemote(tenantID, key string) (vdata.Entry, bool) {
	if p.lookup == nil {
		return vdata.Entry{}, false
	}
	holder, _, err := p.lookup.ResolveVdata(key)
	if err != nil || holder == "" || holder == p.Name {
		return vdata.Entry{}, false
	}
	c, err := p.clientFor(holder)
	if err != nil {
		return vdata.Entry{}, false
	}
	if !c.CanVdata() {
		// Pre-1.8 holder: it memoizes locally but cannot serve lookups —
		// the interop degradation documented in docs/VDATA.md.
		return vdata.Entry{}, false
	}
	info, err := c.vdataMsg(Control{Sub: "lookup", User: tenantID, Key: key, Token: p.vdataToken})
	if err != nil || !info.Found || info.Entry == nil {
		return vdata.Entry{}, false
	}
	ent := *info.Entry
	if ent.Peer == "" {
		ent.Peer = holder
	}
	return ent, true
}

// Start listens on addr and registers with the lookup server at
// lookupAddr. It returns the peer's bound address.
func (p *Peer) Start(addr, lookupAddr string) (string, error) {
	// Route incoming wire status queries through the peer network, so a
	// client of any peer can resolve any execution id (README's two-peer
	// session and docs/WIRE.md §3).
	p.server.statusRouter = p.Status
	bound, err := p.server.Listen(addr)
	if err != nil {
		return "", err
	}
	lc, err := DialLookup(lookupAddr)
	if err != nil {
		p.server.Close()
		return "", err
	}
	lc.SetToken(p.lookupToken)
	p.lookup = lc
	if err := lc.Register(p.Name, bound); err != nil {
		p.server.Close()
		return "", err
	}
	p.addr = bound
	if p.vcat != nil {
		// Re-announce every derivation the catalog already holds: a
		// restarted peer's memoized results become fleet-visible again
		// without recomputation. Best-effort, like the per-publish hook.
		if err := lc.AnnounceVdata(p.Name, p.vcat.Keys()); err != nil {
			p.server.Engine().Obs().Counter("wire_vdata_announce_errors_total").Inc()
		}
	}
	if p.shardMgr != nil {
		// Take an initial position on the ring: one heartbeat learns the
		// live member set and the current owner map, then a rebalance
		// claims whatever the ring assigns us. Later heartbeats (the
		// federation loop) keep it reconciled.
		if infos, owners, err := lc.HeartbeatShards(p.Name, bound, scheduler.PeerLoad{}); err == nil {
			p.shardMgr.SetOwners(owners)
			names := make([]string, 0, len(infos))
			for _, in := range infos {
				names = append(names, in.Name)
			}
			p.RebalanceShards(names)
		}
	}
	return bound, nil
}

// Addr returns the peer's bound address (empty before Start).
func (p *Peer) Addr() string { return p.addr }

// Server returns the peer's wire server.
func (p *Peer) Server() *Server { return p.server }

// Lookup returns the peer's lookup connection (nil before Start).
func (p *Peer) Lookup() *LookupClient { return p.lookup }

// Heartbeat renews this peer's registration with its current load and
// returns the registry's live-peer gossip. The federation layer calls
// it on a timer (docs/FEDERATION.md).
func (p *Peer) Heartbeat(load scheduler.PeerLoad) ([]PeerInfo, error) {
	if p.lookup == nil {
		return nil, errors.New("wire: peer not connected to a lookup server")
	}
	if p.shardMgr == nil {
		infos, err := p.lookup.Heartbeat(p.Name, p.addr, load)
		if err != nil {
			return nil, err
		}
		p.refreshReplication(infoNames(infos))
		return infos, nil
	}
	// On a sharded network the same renewal round trip carries the live
	// owner map back — adopt it so routing always follows the registry.
	infos, owners, err := p.lookup.HeartbeatShards(p.Name, p.addr, load)
	if err != nil {
		return nil, err
	}
	p.shardMgr.SetOwners(owners)
	p.refreshReplication(infoNames(infos))
	return infos, nil
}

// infoNames projects gossip rows to the bare member-name list follower
// placement and promotion work over.
func infoNames(infos []PeerInfo) []string {
	names := make([]string, 0, len(infos))
	for _, in := range infos {
		names = append(names, in.Name)
	}
	return names
}

// OwnerOf extracts the peer name from an execution or node id
// ("matrixA:dgf-000001/flow/step" → "matrixA"); ids without a prefix
// belong to the local peer.
func OwnerOf(id string) string {
	exec := id
	if i := strings.IndexByte(id, '/'); i >= 0 {
		exec = id[:i]
	}
	if i := strings.IndexByte(exec, ':'); i >= 0 {
		return exec[:i]
	}
	return ""
}

// Status resolves a status query anywhere in the network: locally when
// the id belongs to this peer, otherwise by forwarding to the owning
// peer via the lookup service.
func (p *Peer) Status(user, id string, detail bool) (*dgl.FlowStatus, error) {
	engine := p.server.Engine()
	o := engine.Obs()
	owner := OwnerOf(id)
	execID := id
	if i := strings.IndexByte(id, '/'); i >= 0 {
		execID = id[:i]
	}
	local := owner == "" || owner == p.Name
	if !local && p.replReceiver != nil {
		// A promoted execution keeps its dead owner's id prefix. If it
		// now lives here — resident after adoption, or parked in our
		// store — answer locally instead of forwarding to a peer that
		// no longer exists.
		if _, ok := engine.Execution(execID); ok {
			local = true
		} else if _, err := engine.ResurrectFor(execID, "promotion"); err == nil {
			local = true
		}
	}
	if local {
		o.Counter("wire_peer_status_local_total").Inc()
		if _, ok := engine.Execution(execID); !ok {
			// A routed query can land on the owner of a passivated
			// execution — e.g. a peer asking after a flow whose
			// delegating parent was evicted to the store. Resurrect it
			// under the federation label; Engine.Status below would do
			// it too, but would attribute the wake-up to "status".
			_, _ = engine.ResurrectFor(execID, "federation")
		}
		st, err := engine.Status(id, detail)
		if err != nil {
			return nil, err
		}
		return &st, nil
	}
	// Each forward is one routing hop through the datagridflow network.
	o.Counter("wire_peer_forwards_total", "peer", owner).Inc()
	client, err := p.clientFor(owner)
	if err != nil {
		return nil, err
	}
	return client.Status(user, id, detail)
}

// SubmitTo submits a flow to a named peer (itself included).
func (p *Peer) SubmitTo(peerName, user string, flow dgl.Flow) (*dgl.Response, error) {
	if peerName == p.Name {
		return p.server.Engine().Submit(dgl.NewAsyncRequest(user, "", flow))
	}
	client, err := p.clientFor(peerName)
	if err != nil {
		return nil, err
	}
	return client.submitOne(context.Background(), dgl.NewAsyncRequest(user, "", flow))
}

// Engine returns the peer's local engine.
func (p *Peer) Engine() *matrix.Engine { return p.server.Engine() }

// Client returns a pooled, hello-negotiated connection to a named peer,
// dialing through the lookup service on first use. The returned client
// is shared: do not Close it — use DropClient when the peer looks dead.
func (p *Peer) Client(name string) (*Client, error) { return p.clientFor(name) }

// DropClient evicts a pooled connection (after a transport failure), so
// the next Client call re-resolves and re-dials.
func (p *Peer) DropClient(name string) {
	p.mu.Lock()
	c, ok := p.clients[name]
	delete(p.clients, name)
	p.mu.Unlock()
	if ok {
		c.Close()
	}
}

func (p *Peer) clientFor(name string) (*Client, error) {
	p.mu.Lock()
	if c, ok := p.clients[name]; ok {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	if p.lookup == nil {
		return nil, errors.New("wire: peer not connected to a lookup server")
	}
	addr, err := p.lookup.Resolve(name)
	if err != nil {
		return nil, err
	}
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	// Negotiate up front: peer links upgrade to mux when both ends speak
	// >= 1.2, and the hello reply records the remote's feature level for
	// the delegation gate (Client.CanDelegate).
	if _, err := c.Hello(); err != nil {
		c.Close()
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if prev, ok := p.clients[name]; ok {
		c.Close()
		return prev, nil
	}
	p.clients[name] = c
	return c, nil
}

// Close shuts the peer down: server, lookup registration and connection,
// and peer clients. Unregistering is best-effort — a crashed peer never
// gets to; the TTL sweep covers it.
func (p *Peer) Close() {
	if p.shardMgr != nil && p.lookup != nil {
		// Drain before the server stops: park tracked flows and release
		// every owned lease so successors claim them immediately instead
		// of waiting out the TTL.
		owned := p.shardMgr.Owned()
		for _, sh := range owned {
			p.drainShard(sh, p.shardMgr.Tracked(sh))
		}
		if len(owned) > 0 {
			_, _ = p.lookup.ReleaseShards(p.Name, owned)
		}
	}
	p.closeReplication()
	p.server.Close()
	if p.lookup != nil {
		_ = p.lookup.Unregister(p.Name)
		p.lookup.Close()
	}
	p.mu.Lock()
	for _, c := range p.clients {
		c.Close()
	}
	p.clients = map[string]*Client{}
	p.mu.Unlock()
}
