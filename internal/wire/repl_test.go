package wire

import (
	"context"
	"testing"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/replica"
	"datagridflow/internal/store"
)

// startReplPeer builds a replicating peer: fresh engine with a store,
// replication enabled before Start, registered with the lookup.
func startReplPeer(t *testing.T, lookupAddr, name string, mode replica.AckMode, cfg ServerConfig) *Peer {
	t.Helper()
	e := newEngine(t, name+":")
	attachStore(t, e)
	p := NewPeerConfig(name, e, cfg)
	if err := p.EnableReplication(ReplicationConfig{
		Followers:  1,
		Mode:       mode,
		Dir:        t.TempDir(),
		AckTimeout: 2 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start("127.0.0.1:0", lookupAddr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// waitFollowerCaughtUp polls until the owner's follower set has acked
// its full durable cursor, returning that cursor.
func waitFollowerCaughtUp(t *testing.T, owner *Peer) uint64 {
	t.Helper()
	st := owner.server.Engine().Store()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		seq := st.ReplSeq()
		if seq > 0 {
			for _, f := range owner.replSender.Status() {
				if f.AckedSeq >= seq {
					return seq
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower never caught up to seq %d: %+v", st.ReplSeq(), owner.replSender.Status())
	return 0
}

// TestReplicationStreamPromoteAdopt is the full wire-level story: owner
// A streams its record log to follower B over kind-6 frames; A dies
// with its disk; B promotes the replica and adopts A's live flow, which
// resumes and completes on B.
func TestReplicationStreamPromoteAdopt(t *testing.T) {
	_, lookupAddr := startLookup(t)
	a := startReplPeer(t, lookupAddr, "peerA", replica.ModeQuorum, ServerConfig{})
	b := startReplPeer(t, lookupAddr, "peerB", replica.ModeQuorum, ServerConfig{})
	members := []string{"peerA", "peerB"}
	a.refreshReplication(members)
	b.refreshReplication(members)

	// One finished flow and one live (mid-op) flow on A. B registers the
	// same op so the adopted flow validates and resumes there.
	ea, eb := a.server.Engine(), b.server.Engine()
	reached, releaseA := registerParkOp(ea)
	defer close(releaseA)
	_, releaseB := registerParkOp(eb)
	close(releaseB) // adopted run continues straight through on B
	if resp, err := ea.Submit(dgl.NewRequest("user", "", dgl.NewFlow("quick").
		Step("only", dgl.Op(dgl.OpNoop, nil)).Flow())); err != nil || resp.Error != "" {
		t.Fatalf("sync submit: %v %+v", err, resp)
	}
	execID := startParked(t, ea, reached)
	seq := waitFollowerCaughtUp(t, a)

	// The repl verb reports the stream posture.
	ca, err := Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	if _, err := ca.Hello(); err != nil {
		t.Fatal(err)
	}
	if !ca.CanReplicate() {
		t.Fatal("1.6 session refuses replicate frames")
	}
	info, err := ca.Repl()
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != "quorum" || len(info.Followers) != 1 || info.Followers[0].Peer != "peerB" {
		t.Fatalf("repl info: %+v", info)
	}
	if info.Seq != seq || info.Followers[0].AckedSeq < seq {
		t.Fatalf("repl positions: %+v (owner seq %d)", info, seq)
	}

	// B holds a replica of A.
	infoB, err := func() (*ReplInfo, error) {
		cb, err := Dial(b.Addr())
		if err != nil {
			return nil, err
		}
		defer cb.Close()
		if _, err := cb.Hello(); err != nil {
			return nil, err
		}
		return cb.Repl()
	}()
	if err != nil {
		t.Fatal(err)
	}
	if len(infoB.Sources) != 1 || infoB.Sources[0].Source != "peerA" ||
		infoB.Sources[0].LastSeq != seq || infoB.Sources[0].Promoted {
		t.Fatalf("follower sources: %+v", infoB.Sources)
	}

	// Kill A without drain; its store never reopens. B sees A gone from
	// the member set and promotes — the live flow resumes on B.
	a.Close()
	b.refreshReplication([]string{"peerB"})
	if got := eb.Obs().Counter("repl_promoted_flows_total", "source", "peerA").Value(); got != 1 {
		t.Fatalf("repl_promoted_flows_total = %d, want 1 (only the live flow adopts)", got)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, err := eb.Status(execID, false)
		if err == nil && status.State == "succeeded" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("adopted flow %s never completed on survivor: %+v err %v", execID, status, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Promotion is sticky: another refresh must not double-adopt.
	b.refreshReplication([]string{"peerB"})
	if got := eb.Obs().Counter("repl_promoted_flows_total", "source", "peerA").Value(); got != 1 {
		t.Fatalf("second refresh re-promoted: %d", got)
	}
}

// TestReplicateClientRoundTrip drives kind-6 frames through a raw
// client against a replicating server — the binary envelope on a 1.6
// session, and the sniffed JSON fallback on a client pinned to text.
// The two sessions hit the same server and advance the same cursor:
// encoding is a per-session transport choice, not protocol state.
func TestReplicateClientRoundTrip(t *testing.T) {
	_, lookupAddr := startLookup(t)
	b := startReplPeer(t, lookupAddr, "peerB", replica.ModeQuorum, ServerConfig{})
	dial := func(binary bool) *Client {
		c, err := Dial(b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if !binary {
			c.DisableBinary()
		}
		if _, err := c.Hello(); err != nil {
			t.Fatal(err)
		}
		if !c.CanReplicate() {
			t.Fatal("1.6 session refuses replicate frames")
		}
		if c.Binary() != binary {
			t.Fatalf("binary negotiation: got %v, want %v", c.Binary(), binary)
		}
		return c
	}
	block, err := replica.EncodeBlock([]store.Record{
		{Type: store.TypeExecSnap, ID: "x", Request: "<r/>"},
	}, false)
	if err != nil {
		t.Fatal(err)
	}

	bin := dial(true)
	res, err := bin.Replicate(context.Background(), Replicate{
		Op: replica.OpAppend, Source: "peerX", Seq: 1, Count: 1, Block: block,
	})
	if err != nil || !res.OK || res.AckSeq != 1 {
		t.Fatalf("binary replicate: %v %+v", err, res)
	}
	// A gap travels the binary reply path too.
	res, err = bin.Replicate(context.Background(), Replicate{
		Op: replica.OpAppend, Source: "peerX", Seq: 9, Count: 1, Block: block,
	})
	if err != nil || res.OK || !res.NeedSnapshot {
		t.Fatalf("binary gap ack: %v %+v", err, res)
	}

	// The text session continues the same stream where binary left off.
	txt := dial(false)
	endBlock, err := replica.EncodeBlock([]store.Record{{Type: store.TypeExecEnd, ID: "x"}}, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err = txt.Replicate(context.Background(), Replicate{
		Op: replica.OpAppend, Source: "peerX", Seq: 2, Count: 1, Block: endBlock,
	})
	if err != nil || !res.OK || res.AckSeq != 2 {
		t.Fatalf("json replicate: %v %+v", err, res)
	}
	// Error replies stay typed across both encodings.
	if _, err := bin.Replicate(context.Background(), Replicate{
		Op: "bogus", Source: "peerX", Seq: 3,
	}); err == nil {
		t.Fatal("bogus op acked")
	}
}

// TestReplicatePre16FallbackSkipsPeer pins the follower to wire 1.5:
// the owner's frames are skipped with a vacuous ack
// (repl_skipped_peers_total) so the federation keeps flowing — that
// follower simply provides no protection until it upgrades.
func TestReplicatePre16FallbackSkipsPeer(t *testing.T) {
	_, lookupAddr := startLookup(t)
	a := startReplPeer(t, lookupAddr, "peerA", replica.ModeQuorum, ServerConfig{})
	old := startReplPeer(t, lookupAddr, "peerOld", replica.ModeQuorum, ServerConfig{ProtoMinor: 5})
	_ = old
	a.refreshReplication([]string{"peerA", "peerOld"})

	ea := a.server.Engine()
	resp, err := ea.Submit(dgl.NewRequest("user", "", dgl.NewFlow("quick").
		Step("only", dgl.Op(dgl.OpNoop, nil)).Flow()))
	if err != nil || resp.Error != "" {
		t.Fatalf("submit against a pre-1.6 follower: %v %+v", err, resp)
	}
	deadline := time.Now().Add(10 * time.Second)
	for ea.Obs().Counter("repl_skipped_peers_total", "peer", "peerOld").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pre-1.6 follower was never skipped")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The vacuous ack keeps the owner's cursor view moving: the
	// follower reads as caught up even though it holds nothing.
	seq := ea.Store().ReplSeq()
	for _, f := range a.replSender.Status() {
		if f.Peer == "peerOld" && f.AckedSeq < seq {
			t.Fatalf("skipped peer acked %d < %d", f.AckedSeq, seq)
		}
	}
}
