package wire

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/shard"
)

const testShards = 32

// startShardedPeer builds a sharded peer on a fresh engine, registered
// with the lookup at lookupAddr. cfg pins the wire server (protocol
// version pinning for interop tests).
func startShardedPeer(t *testing.T, lookupAddr, name string, cfg ServerConfig) *Peer {
	t.Helper()
	e := newEngine(t, name+":")
	p := NewPeerConfig(name, e, cfg)
	p.EnableSharding(shard.NewManager(shard.Config{
		Self:   name,
		Shards: testShards,
		Obs:    e.Obs(),
		Resident: func(id string) bool {
			_, ok := e.Execution(id)
			return ok
		},
	}))
	if _, err := p.Start("127.0.0.1:0", lookupAddr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// settle runs one rebalance on every peer over the full member set, so
// ring ownership is claimed deterministically without heartbeat timing.
func settle(t *testing.T, peers ...*Peer) {
	t.Helper()
	var names []string
	for _, p := range peers {
		names = append(names, p.Name)
	}
	for _, p := range peers {
		p.RebalanceShards(names)
	}
	for _, p := range peers {
		p.RebalanceShards(names) // second pass adopts released leases
	}
}

// flowOwnedBy brute-forces a flow name whose routing key lands on a
// shard the named peer owns.
func flowOwnedBy(t *testing.T, owner *Peer, user string) (string, int) {
	t.Helper()
	mgr := owner.ShardManager()
	for i := 0; i < 4096; i++ {
		name := fmt.Sprintf("job%d", i)
		sh := mgr.ShardOf(RoutingKey(user, name))
		if mgr.Owns(sh) {
			return name, sh
		}
	}
	t.Fatalf("no flow name routes to %s", owner.Name)
	return "", 0
}

func execFlow(name string) dgl.Flow {
	return dgl.NewFlow(name).
		Step("work", dgl.Op(dgl.OpExec, map[string]string{
			"command": "x", "cpuSeconds": "1",
		})).Flow()
}

func routeCount(p *Peer, outcome string) int64 {
	return p.Engine().Obs().Counter("shard_routes_total", "outcome", outcome).Value()
}

// TestShardedAnyPeerSubmit is the tentpole's core contract: a flow
// submitted to a non-owner peer lands on its shard owner's engine, and
// its owner-prefixed id resolves from anywhere.
func TestShardedAnyPeerSubmit(t *testing.T) {
	_, lookupAddr := startLookupSharded(t, testShards)
	peerA := startShardedPeer(t, lookupAddr, "siteA", ServerConfig{})
	peerB := startShardedPeer(t, lookupAddr, "siteB", ServerConfig{})
	settle(t, peerA, peerB)

	flowName, sh := flowOwnedBy(t, peerB, "user")
	c := dial(t, peerA.Addr())
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(context.Background(), dgl.NewAsyncRequest("user", "", execFlow(flowName)))
	if err != nil {
		t.Fatal(err)
	}
	if serr := res.Err(); serr != nil {
		t.Fatalf("routed submit failed: %v", serr)
	}
	if !strings.HasPrefix(res.ID, "siteB:") {
		t.Fatalf("id = %q, want siteB-prefixed (owner accepted)", res.ID)
	}
	exec, ok := peerB.Engine().Execution(res.ID)
	if !ok {
		t.Fatalf("execution not resident on the owner")
	}
	if err := exec.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, resident := peerA.Engine().Execution(res.ID); resident {
		t.Errorf("execution also resident on the submitting peer")
	}
	if got, _ := peerB.ShardManager().TrackedShard(res.ID); got != sh {
		t.Errorf("owner tracked shard %d, want %d", got, sh)
	}
	if n := routeCount(peerA, "routed"); n != 1 {
		t.Errorf("submitter shard_routes_total{routed} = %d", n)
	}
	if n := routeCount(peerB, "served"); n != 1 {
		t.Errorf("owner shard_routes_total{served} = %d", n)
	}

	// Status of the owner-prefixed id resolves through the submitter.
	st, err := c.Status("user", res.ID, false)
	if err != nil || st.State != "succeeded" {
		t.Errorf("cross-peer status = %+v, %v", st, err)
	}
	// The owner verb names the owner from either side.
	info, err := c.Owner(res.ID)
	if err != nil || info.Peer != "siteB" {
		t.Errorf("Owner(%s) = %+v, %v", res.ID, info, err)
	}
	// A bare routing key resolves via the ring.
	info, err = c.Owner(RoutingKey("user", flowName))
	if err != nil || info.Peer != "siteB" || info.Source != "ring" {
		t.Errorf("Owner(key) = %+v, %v", info, err)
	}
}

// startLookupSharded is startLookup with a shard-lease table.
func startLookupSharded(t *testing.T, shards int) (*LookupServer, string) {
	t.Helper()
	ls, addr := startLookup(t)
	ls.SetShards(shards)
	return ls, addr
}

// TestShardRouteLocalPin: WithRoute(RouteLocal) keeps the flow on the
// accepting peer even when the ring owns it elsewhere.
func TestShardRouteLocalPin(t *testing.T) {
	_, lookupAddr := startLookupSharded(t, testShards)
	peerA := startShardedPeer(t, lookupAddr, "siteA", ServerConfig{})
	peerB := startShardedPeer(t, lookupAddr, "siteB", ServerConfig{})
	settle(t, peerA, peerB)

	flowName, _ := flowOwnedBy(t, peerB, "user")
	c := dial(t, peerA.Addr())
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(context.Background(), dgl.NewAsyncRequest("user", "", execFlow(flowName)),
		WithRoute(RouteLocal))
	if err != nil || res.Err() != nil {
		t.Fatalf("pinned submit: %v / %v", err, res.Err())
	}
	if !strings.HasPrefix(res.ID, "siteA:") {
		t.Fatalf("id = %q, want siteA-prefixed (pinned locally)", res.ID)
	}
	if n := routeCount(peerA, "local"); n != 1 {
		t.Errorf("shard_routes_total{local} = %d", n)
	}
}

// TestShardMixedVersionInterop: when the shard owner predates wire 1.5
// it cannot accept route frames; the submitting peer keeps the flow
// instead of refusing it.
func TestShardMixedVersionInterop(t *testing.T) {
	_, lookupAddr := startLookupSharded(t, testShards)
	peerA := startShardedPeer(t, lookupAddr, "siteA", ServerConfig{})
	peerB := startShardedPeer(t, lookupAddr, "siteB", ServerConfig{ProtoMinor: 4})
	settle(t, peerA, peerB)

	flowName, _ := flowOwnedBy(t, peerB, "user")
	c := dial(t, peerA.Addr())
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(context.Background(), dgl.NewAsyncRequest("user", "", execFlow(flowName)))
	if err != nil || res.Err() != nil {
		t.Fatalf("submit to 1.4 owner: %v / %v", err, res.Err())
	}
	if !strings.HasPrefix(res.ID, "siteA:") {
		t.Fatalf("id = %q, want siteA-prefixed (local accept on unsupported owner)", res.ID)
	}
	if n := routeCount(peerA, "unsupported"); n != 1 {
		t.Errorf("shard_routes_total{unsupported} = %d", n)
	}
	// And a 1.4 server refuses a raw route frame with a protocol error.
	cB := dial(t, peerB.Addr())
	if _, err := cB.Hello(); err != nil {
		t.Fatal(err)
	}
	if cB.CanRoute() {
		t.Fatalf("CanRoute = true against a 1.4 server")
	}
	_, err = cB.Route(context.Background(), Route{User: "user", Shard: 1})
	if !errors.Is(err, dgferr.ErrProtocol) {
		t.Errorf("raw route to 1.4 server = %v, want ErrProtocol", err)
	}
}

// TestShardOwnerFailover kills the owner, expires its leases, and
// checks the survivor takes the shard over and accepts the submission
// itself — E15's failover path in unit form.
func TestShardOwnerFailover(t *testing.T) {
	ls, lookupAddr := startLookupSharded(t, testShards)
	base := time.Now()
	now := base
	var mu sync.Mutex
	ls.setNow(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	ls.SetTTL(30 * time.Second)

	peerA := startShardedPeer(t, lookupAddr, "siteA", ServerConfig{})
	peerB := startShardedPeer(t, lookupAddr, "siteB", ServerConfig{})
	settle(t, peerA, peerB)
	flowName, sh := flowOwnedBy(t, peerB, "user")

	// siteB dies without draining: server down, leases left live. The
	// clock jumps past the TTL, but siteA is NOT told — its routing map
	// still names siteB, so the submit exercises the dead-owner path:
	// dial failure → lease takeover (the registry sweep inside the claim
	// evicts siteB and frees its leases) → local accept.
	peerB.Server().Close()
	mu.Lock()
	now = now.Add(35 * time.Second)
	mu.Unlock()

	c := dial(t, peerA.Addr())
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(context.Background(), dgl.NewAsyncRequest("user", "", execFlow(flowName)))
	if err != nil || res.Err() != nil {
		t.Fatalf("submit after owner death: %v / %v", err, res.Err())
	}
	if !strings.HasPrefix(res.ID, "siteA:") {
		t.Fatalf("id = %q, want siteA-prefixed (failover accept)", res.ID)
	}
	if n := routeCount(peerA, "failover"); n != 1 {
		t.Errorf("shard_routes_total{failover} = %d", n)
	}
	// The takeover claimed the lease: siteA now owns the shard and
	// tracked the accept for future drains.
	if !peerA.ShardManager().Owns(sh) {
		t.Errorf("survivor did not claim shard %d", sh)
	}
	if got, ok := peerA.ShardManager().TrackedShard(res.ID); !ok || got != sh {
		t.Errorf("failover accept untracked: %d, %v", got, ok)
	}
}

// TestShardDrainOnJoin: a solo owner accepts everything; when a second
// peer joins and the ring moves shards over, the next submission of a
// moved key routes to the joiner — only placement moves, not history.
func TestShardDrainOnJoin(t *testing.T) {
	_, lookupAddr := startLookupSharded(t, testShards)
	peerA := startShardedPeer(t, lookupAddr, "siteA", ServerConfig{})
	settle(t, peerA)
	if got := len(peerA.ShardManager().Owned()); got != testShards {
		t.Fatalf("solo peer owns %d/%d shards", got, testShards)
	}

	peerB := startShardedPeer(t, lookupAddr, "siteB", ServerConfig{})
	settle(t, peerA, peerB)
	flowName, sh := flowOwnedBy(t, peerB, "user")
	if peerA.ShardManager().Owns(sh) {
		t.Fatalf("shard %d still owned by siteA after handover", sh)
	}

	c := dial(t, peerA.Addr())
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(context.Background(), dgl.NewAsyncRequest("user", "", execFlow(flowName)))
	if err != nil || res.Err() != nil {
		t.Fatalf("post-join submit: %v / %v", err, res.Err())
	}
	if !strings.HasPrefix(res.ID, "siteB:") {
		t.Errorf("id = %q, want siteB-prefixed (joiner owns the shard)", res.ID)
	}
}

// TestOwnerVerbUnsharded: the owner verb on an unsharded server is a
// typed invalid, not a hang or a panic.
func TestOwnerVerbUnsharded(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c := dial(t, addr)
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Owner("user/flow"); !errors.Is(err, dgferr.ErrInvalid) {
		t.Errorf("Owner on unsharded server = %v, want ErrInvalid", err)
	}
}

// TestSubmitOptions covers the redesigned Submit surface against a
// plain server: sync default, async ack, batch shape, option purity.
func TestSubmitOptions(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c := dial(t, addr)
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}

	// Sync: the response carries the finished status.
	req := dgl.NewRequest("user", "", execFlow("sync"))
	res, err := c.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st, serr := res.Status(); serr != nil || st.State != "succeeded" {
		t.Fatalf("sync status = %+v, %v", st, serr)
	}
	if res.ID != "" {
		t.Errorf("sync submit produced an async id %q", res.ID)
	}

	// Async: WithAsync must not mutate the caller's request.
	req2 := dgl.NewRequest("user", "", execFlow("async"))
	res, err = c.Submit(context.Background(), req2, WithAsync())
	if err != nil || res.Err() != nil {
		t.Fatalf("async submit: %v / %v", err, res.Err())
	}
	if res.ID == "" {
		t.Fatalf("async submit returned no id: %+v", res.Response)
	}
	if req2.Async {
		t.Errorf("WithAsync mutated the caller's request")
	}
	if exec, ok := e.Execution(res.ID); ok {
		_ = exec.Wait()
	}

	// Batch: primary plus two more, answered positionally.
	res, err = c.Submit(context.Background(),
		dgl.NewAsyncRequest("user", "", execFlow("b0")),
		WithBatch(
			dgl.NewAsyncRequest("user", "", execFlow("b1")),
			dgl.NewAsyncRequest("user", "", execFlow("b2")),
		))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 3 {
		t.Fatalf("batch responses = %d, want 3", len(res.Responses))
	}
	if res.Response != res.Responses[0] || res.ID == "" {
		t.Errorf("batch primary not answered first: %+v", res)
	}
	for i, r := range res.Responses {
		if r.Ack == nil || !r.Ack.Valid {
			t.Errorf("batch item %d: %+v", i, r)
			continue
		}
		if exec, ok := e.Execution(r.Ack.ID); ok {
			_ = exec.Wait()
		}
	}

	// No requests at all is a typed invalid.
	if _, err := c.Submit(context.Background(), nil); !errors.Is(err, dgferr.ErrInvalid) {
		t.Errorf("empty submit = %v, want ErrInvalid", err)
	}
}

// TestRedialRefreshesNegotiation is the satellite-3 regression: a
// client that redials after a connection drop must re-run hello so the
// negotiated state (mux, binary, server version) describes the new
// connection — including against a server that came back older.
func TestRedialRefreshesNegotiation(t *testing.T) {
	e := newEngine(t, "")
	s := NewServer(e)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, addr)
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	if !c.Muxed() || !c.Binary() || !c.CanRoute() {
		t.Fatalf("fresh 1.%d session: muxed=%v binary=%v route=%v",
			ProtoMinor, c.Muxed(), c.Binary(), c.CanRoute())
	}

	// Drop the connection out from under the client: in-flight state
	// dies with it.
	c.current().Close()
	if _, err := c.Status("user", "x", false); err == nil {
		t.Fatalf("request survived a dead connection")
	}
	// Same server still up: redial restores the full negotiation.
	if err := c.Redial(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !c.Muxed() || !c.Binary() || !c.CanRoute() {
		t.Errorf("redialed session lost negotiation: muxed=%v binary=%v route=%v",
			c.Muxed(), c.Binary(), c.CanRoute())
	}
	if _, err := c.Status("user", "nope", false); !errors.Is(err, dgferr.ErrNotFound) {
		t.Errorf("post-redial request = %v, want typed ErrNotFound", err)
	}

	// The server restarts downgraded (pinned to 1.1: no mux, no binary,
	// no routing). Redial must renegotiate down, not reuse 1.5 state.
	s.Close()
	s2 := NewServerConfig(e, ServerConfig{ProtoMinor: 1})
	if _, err := s2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	t.Cleanup(s2.Close)
	if err := c.Redial(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Muxed() || c.Binary() || c.CanRoute() {
		t.Errorf("redial against 1.1 server kept 1.5 state: muxed=%v binary=%v route=%v",
			c.Muxed(), c.Binary(), c.CanRoute())
	}
	if _, minor := c.ServerProto(); minor != 1 {
		t.Errorf("negotiated minor = %d, want 1", minor)
	}
	if _, err := c.Status("user", "nope", false); !errors.Is(err, dgferr.ErrNotFound) {
		t.Errorf("downgraded session request = %v, want typed ErrNotFound", err)
	}
}
