package wire

import (
	"strings"
	"sync"
	"testing"

	"datagridflow/internal/dgl"
	"datagridflow/internal/matrix"
	"datagridflow/internal/store"
)

// registerParkOp installs a "park" operation on e that blocks its first
// caller until release is closed (or the engine cancels it) — the hook
// for passivating an execution mid-flow.
func registerParkOp(e *matrix.Engine) (reached, release chan struct{}) {
	reached = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	e.RegisterOp("park", func(c *matrix.OpContext) error {
		once.Do(func() { close(reached) })
		select {
		case <-release:
			return nil
		case <-c.Cancel:
			return matrix.ErrCancelled
		}
	})
	return reached, release
}

func attachStore(t testing.TB, e *matrix.Engine) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	e.SetStore(st)
	return st
}

func parkFlow(name string) dgl.Flow {
	return dgl.NewFlow(name).
		Step("before", dgl.Op(dgl.OpNoop, nil)).
		Step("park", dgl.Op("park", nil)).
		Step("after", dgl.Op(dgl.OpNoop, nil)).Flow()
}

func startParked(t *testing.T, e *matrix.Engine, reached chan struct{}) string {
	t.Helper()
	resp, err := e.Submit(dgl.NewAsyncRequest("user", "", parkFlow("long-run")))
	if err != nil || resp.Error != "" || resp.Ack == nil {
		t.Fatalf("submit: %v / %+v", err, resp)
	}
	<-reached
	return resp.Ack.ID
}

// TestControlStoreAndCompact exercises the "store" and "compact"
// control verbs end to end: stats reflect the engine's store, compact
// reports its run, and a store-less server answers with a clean error.
func TestControlStoreAndCompact(t *testing.T) {
	e := newEngine(t, "")
	st := attachStore(t, e)
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	flow := dgl.NewFlow("job").Step("s", dgl.Op(dgl.OpNoop, nil)).Flow()
	for i := 0; i < 3; i++ {
		if resp, err := c.SubmitFlow("user", flow); err != nil || resp.Error != "" {
			t.Fatalf("submit: %v / %+v", err, resp)
		}
	}
	info, err := c.StoreStats()
	if err != nil {
		t.Fatalf("store stats: %v", err)
	}
	want := st.Stats()
	if info.Segments != want.Segments || info.Records != want.Records {
		t.Fatalf("wire store info %+v vs local stats %+v", info, want)
	}
	if info.Resident != len(e.Executions()) {
		t.Errorf("resident = %d, engine has %d", info.Resident, len(e.Executions()))
	}
	if info.Compaction != nil {
		t.Error("plain store verb carried compaction info")
	}

	// The three flows ended: compaction drops all their records.
	info, err = c.Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if info.Compaction == nil || info.Compaction.RecordsKept != 0 {
		t.Fatalf("compaction info = %+v", info.Compaction)
	}
	if info.Segments != 1 || info.Records != 0 {
		t.Fatalf("post-compact info = %+v", info)
	}

	// A server without a store answers the verbs with an error, not a
	// dropped connection.
	bare := newEngine(t, "bare:")
	_, bareAddr := startServer(t, bare)
	bc, err := Dial(bareAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	if _, err := bc.StoreStats(); err == nil || !strings.Contains(err.Error(), "store") {
		t.Errorf("store verb without store: %v", err)
	}
	if _, err := bc.Compact(); err == nil {
		t.Errorf("compact verb without store: %v", err)
	}
}

// TestResurrectOnWireControl passivates an execution and drives it back
// through the wire layer: a control verb addressed to the passivated id
// resurrects it transparently (the "wire" resurrection path).
func TestResurrectOnWireControl(t *testing.T) {
	e := newEngine(t, "")
	attachStore(t, e)
	reached, release := registerParkOp(e)
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The test engine's grid shares obs.Default(), so assert on the
	// counter's delta, not its absolute value.
	wire0 := e.Obs().Counter("store_resurrections_total", "path", "wire").Value()
	id := startParked(t, e, reached)
	ex, _ := e.Execution(id)
	ex.Pause()
	if err := e.Passivate(id); err != nil {
		t.Fatalf("passivate: %v", err)
	}
	if _, ok := e.Execution(id); ok {
		t.Fatal("still resident")
	}
	close(release)

	// Resume over the wire: the server finds no resident execution and
	// resurrects from the store before applying the verb.
	if err := c.Resume(id); err != nil {
		t.Fatalf("resume over wire: %v", err)
	}
	ex2, ok := e.Execution(id)
	if !ok {
		t.Fatal("wire control did not resurrect the execution")
	}
	if err := ex2.Wait(); err != nil {
		t.Fatalf("resurrected run: %v", err)
	}
	if got := e.Obs().Counter("store_resurrections_total", "path", "wire").Value() - wire0; got != 1 {
		t.Errorf("store_resurrections_total{path=wire} delta = %d", got)
	}
	// Unknown ids still answer not-found, passivation or not.
	if err := c.Resume("dgf-999999"); err == nil {
		t.Error("resume of unknown id succeeded")
	}
}

// TestPeerStatusResurrectsFederation routes a status query from peer A
// to the passivated flow's owner B: B resurrects it under the
// "federation" label before answering.
func TestPeerStatusResurrectsFederation(t *testing.T) {
	_, lookupAddr := startLookup(t)
	peerA := NewPeer("fedA", newEngine(t, "fedA:"))
	if _, err := peerA.Start("127.0.0.1:0", lookupAddr); err != nil {
		t.Fatal(err)
	}
	defer peerA.Close()
	engineB := newEngine(t, "fedB:")
	attachStore(t, engineB)
	reached, release := registerParkOp(engineB)
	peerB := NewPeer("fedB", engineB)
	if _, err := peerB.Start("127.0.0.1:0", lookupAddr); err != nil {
		t.Fatal(err)
	}
	defer peerB.Close()

	fed0 := engineB.Obs().Counter("store_resurrections_total", "path", "federation").Value()
	id := startParked(t, engineB, reached)
	if err := engineB.Passivate(id); err != nil {
		t.Fatalf("passivate: %v", err)
	}
	close(release)

	// A asks after B's flow; the lookup routes the query to B, whose
	// local branch resurrects before answering.
	st, err := peerA.Status("user", id, false)
	if err != nil {
		t.Fatalf("routed status: %v", err)
	}
	if st == nil || st.State == "" {
		t.Fatalf("status = %+v", st)
	}
	if got := engineB.Obs().Counter("store_resurrections_total", "path", "federation").Value() - fed0; got != 1 {
		t.Errorf("store_resurrections_total{path=federation} delta = %d", got)
	}
	ex, ok := engineB.Execution(id)
	if !ok {
		t.Fatal("owner did not resurrect the flow")
	}
	if err := ex.Wait(); err != nil {
		t.Fatalf("resurrected run: %v", err)
	}
}
