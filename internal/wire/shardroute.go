package wire

import (
	"context"
	"fmt"
	"strings"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/shard"
)

// Sharded flow ownership (docs/FEDERATION.md, "Sharded ownership").
//
// A sharded peer routes every flow submission by its routing key
// (user/flowName → shard → lease holder): any peer accepts the submit,
// and the wire layer forwards it to the owner over a KindRoute frame —
// one hop, terminal at the receiver. The pieces:
//
//   - routeSubmit: the Server.submitRouter hook — the routing decision
//     on the accepting peer.
//   - handleRoute: the Server.routeHandler hook — the terminal hop on
//     the owning peer.
//   - resolveOwner: the "owner" control verb.
//   - RebalanceShards: the claim → drain cycle, driven from the
//     federation heartbeat.
//
// Every availability edge falls back to accepting locally rather than
// refusing the flow: an unassigned shard, an owner that predates wire
// 1.5, an unreachable owner after bounded retries. The
// shard_routes_total{outcome} counter says which path each submission
// took.

// routeRetries bounds how many ownership hops routeSubmit chases (a
// NotOwner refusal or dead owner per hop) before accepting locally.
const routeRetries = 3

// RoutingKey maps a submission to its placement key: flows of the same
// user and flow name always land on the same shard, wherever they were
// submitted.
func RoutingKey(user, flowName string) string {
	return user + "/" + flowName
}

// EnableSharding attaches a shard manager to this peer: flow
// submissions route to shard owners, KindRoute frames are accepted,
// and the "owner" control verb resolves. Call before Start. The
// engine gains an ownership check so an auto-routed flow that lands
// after a drain is refused rather than silently split-brained.
func (p *Peer) EnableSharding(mgr *shard.Manager) {
	p.shardMgr = mgr
	p.server.submitRouter = p.routeSubmit
	p.server.routeHandler = p.handleRoute
	p.server.ownerResolver = p.resolveOwner
	engine := p.server.Engine()
	engine.SetOwnershipCheck(func(req *dgl.Request) error {
		// Only explicitly auto-routed submissions are vetted: routed and
		// locally-pinned requests ("local") and unrouted ones ("") pass,
		// so triggers and direct engine callers are unaffected.
		if req.Route != dgl.RouteAuto || req.Flow == nil {
			return nil
		}
		holder, sh, ok := mgr.OwnerOf(RoutingKey(req.User.Name, req.Flow.Name))
		if ok && holder != mgr.Self() {
			return fmt.Errorf("%w: shard %d moved to %s during submit",
				dgferr.ErrResourceDown, sh, holder)
		}
		return nil
	})
}

// ShardManager returns the peer's shard manager (nil when unsharded).
func (p *Peer) ShardManager() *shard.Manager { return p.shardMgr }

// routeSubmit is the Server.submitRouter hook: it owns placement of
// every wire flow submission on a sharded peer. "local" requests pin
// here; anything else resolves the shard owner and forwards, with
// bounded retries across ownership movement and a local-accept
// fallback when no owner is reachable — availability over placement.
func (p *Peer) routeSubmit(req *dgl.Request) *dgl.Response {
	mgr := p.shardMgr
	key := RoutingKey(req.User.Name, req.Flow.Name)
	sh := mgr.ShardOf(key)
	if req.Route == dgl.RouteLocal {
		return p.acceptLocal(req, sh, "local")
	}
	holder, ok := mgr.OwnerOfShard(sh)
	if !ok {
		// No live lease anywhere: claim it opportunistically — first
		// submission wins the shard — and fall back to a local accept if
		// the registry is unreachable.
		if h, claimed := p.claimShard(sh); claimed {
			holder, ok = h, true
		}
		if !ok {
			return p.acceptLocal(req, sh, "unassigned")
		}
	}
	if holder == p.Name {
		return p.acceptLocal(req, sh, "local")
	}
	data, err := dgl.Marshal(req)
	if err != nil {
		return &dgl.Response{Error: dgferr.Encode(err)}
	}
	// The token rides the route envelope so the owning peer re-verifies
	// the same identity the accepting peer did (docs/TENANCY.md).
	rt := Route{User: req.User.Name, Token: req.Token, Request: string(data), Shard: sh, Origin: p.Name}
	for attempt := 0; attempt < routeRetries; attempt++ {
		client, cerr := p.clientFor(holder)
		if cerr != nil {
			// Owner unresolvable or unreachable at dial time: try to take
			// the shard over (its lease may have died with it).
			next, recovered := p.claimShard(sh)
			if !recovered || next == holder {
				break
			}
			holder = next
			if holder == p.Name {
				return p.acceptLocal(req, sh, "failover")
			}
			continue
		}
		if !client.CanRoute() {
			// The owner predates wire 1.5: it cannot accept a route frame,
			// so the flow stays where it was submitted — mixed-version
			// interop keeps every peer accepting (docs/WIRE.md).
			return p.acceptLocal(req, sh, "unsupported")
		}
		res, rerr := client.Route(context.Background(), rt)
		if res == nil {
			// Transport failure: the owner may be dead. Drop the pooled
			// connection and attempt a takeover before retrying.
			p.DropClient(holder)
			next, recovered := p.claimShard(sh)
			if !recovered || next == holder {
				break
			}
			holder = next
			if holder == p.Name {
				return p.acceptLocal(req, sh, "failover")
			}
			continue
		}
		if res.NotOwner {
			// Ownership moved between our routing decision and delivery;
			// chase the refusal's forwarding hint.
			next := res.Owner
			if next == "" || next == holder {
				if next, ok = p.claimShard(sh); !ok || next == holder {
					break
				}
			}
			holder = next
			if holder == p.Name {
				return p.acceptLocal(req, sh, "failover")
			}
			continue
		}
		if rerr != nil {
			// The owner ran (or refused) the submission and reported a
			// typed failure — that is the answer, not a routing problem.
			p.countRoute("routed")
			return &dgl.Response{Error: dgferr.Encode(rerr)}
		}
		resp, perr := parseResponsePayload([]byte(res.Response))
		if perr != nil {
			return &dgl.Response{Error: dgferr.Encode(
				fmt.Errorf("%w: bad routed response: %v", dgferr.ErrInvalid, perr))}
		}
		p.countRoute("routed")
		return resp
	}
	// Retries exhausted with no reachable owner: keep the flow here so
	// the submission survives the owner's death (E15's failover path).
	return p.acceptLocal(req, sh, "failover")
}

// acceptLocal pins a submission to this peer's engine, tracking owned
// async accepts for drain hand-off. outcome labels the routing path in
// shard_routes_total.
func (p *Peer) acceptLocal(req *dgl.Request, sh int, outcome string) *dgl.Response {
	p.countRoute(outcome)
	r := *req
	r.Route = dgl.RouteLocal // terminal: never re-routed, never refused by the ownership check
	resp, err := p.server.Engine().Submit(&r)
	if err != nil {
		return &dgl.Response{Error: dgferr.Encode(err)}
	}
	if p.shardMgr.Owns(sh) && resp.Ack != nil && resp.Ack.Valid {
		p.shardMgr.Track(resp.Ack.ID, sh)
	}
	return resp
}

// claimShard opportunistically claims one shard, adopting the
// registry's resulting owner map. It returns the shard's live holder —
// this peer on a granted claim, the refusing holder otherwise.
func (p *Peer) claimShard(sh int) (string, bool) {
	if p.lookup == nil {
		return "", false
	}
	owners, err := p.lookup.ClaimShards(p.Name, []int{sh})
	if err != nil {
		return "", false
	}
	p.shardMgr.SetOwners(owners)
	return p.shardMgr.OwnerOfShard(sh)
}

// handleRoute is the Server.routeHandler hook: the terminal hop of
// shard routing. It refuses with NotOwner (and the live holder as a
// forwarding hint) when this peer no longer holds the shard, otherwise
// accepts the embedded request locally and tracks async accepts for
// drain hand-off.
func (p *Peer) handleRoute(rt Route) RouteResult {
	mgr := p.shardMgr
	if !mgr.Owns(rt.Shard) {
		holder, _ := mgr.OwnerOfShard(rt.Shard)
		p.countRoute("refused")
		return RouteResult{NotOwner: true, Owner: holder, Error: dgferr.Encode(fmt.Errorf(
			"%w: peer %s does not own shard %d", dgferr.ErrResourceDown, p.Name, rt.Shard))}
	}
	req, err := decodeRequestPayload([]byte(rt.Request))
	if err != nil {
		return RouteResult{Error: dgferr.Encode(
			fmt.Errorf("%w: bad routed request: %v", dgferr.ErrInvalid, err))}
	}
	if req.Flow == nil {
		return RouteResult{Error: dgferr.Encode(
			fmt.Errorf("%w: routed request carries no flow", dgferr.ErrInvalid))}
	}
	req.Route = dgl.RouteLocal // terminal hop: one forward, no loops
	resp, err := p.server.Engine().Submit(req)
	if err != nil {
		return RouteResult{Error: dgferr.Encode(err)}
	}
	if resp.Ack != nil && resp.Ack.Valid {
		mgr.Track(resp.Ack.ID, rt.Shard)
	}
	data, merr := dgl.Marshal(resp)
	if merr != nil {
		return RouteResult{Error: dgferr.Encode(merr)}
	}
	p.countRoute("served")
	return RouteResult{OK: true, Response: string(data)}
}

// resolveOwner services the "owner" control verb: which peer owns an
// execution id or routing key, and how we know (OwnerInfo.Source).
func (p *Peer) resolveOwner(id string) (*OwnerInfo, error) {
	mgr := p.shardMgr
	exec := id
	if i := strings.IndexByte(id, '/'); i >= 0 && OwnerOf(id) != "" {
		// Only peel node suffixes off prefixed execution ids: a bare
		// "user/flow" string is a routing key, whose '/' is structural.
		exec = id[:i]
	}
	if sh, ok := mgr.TrackedShard(exec); ok {
		return &OwnerInfo{ID: id, Peer: p.Name, Addr: p.addr, Shard: sh, Source: "tracked"}, nil
	}
	if owner := OwnerOf(exec); owner != "" {
		info := &OwnerInfo{ID: id, Peer: owner, Shard: -1, Source: "prefix"}
		p.fillOwnerAddr(info)
		return info, nil
	}
	if holder, sh, ok := mgr.OwnerOf(id); ok {
		info := &OwnerInfo{ID: id, Peer: holder, Shard: sh, Source: "ring"}
		p.fillOwnerAddr(info)
		return info, nil
	}
	return nil, fmt.Errorf("%w: no owner known for %s", dgferr.ErrNotFound, id)
}

// fillOwnerAddr best-effort resolves an owner's wire address.
func (p *Peer) fillOwnerAddr(info *OwnerInfo) {
	if info.Peer == p.Name {
		info.Addr = p.addr
		return
	}
	if p.lookup != nil {
		if addr, err := p.lookup.Resolve(info.Peer); err == nil {
			info.Addr = addr
		}
	}
}

// RebalanceShards runs one claim → drain cycle over the live member
// set (the federation heartbeat's gossip view): claim what the ring
// assigns us, adopt the registry's owner map, and drain shards the
// ring moved away — parking their tracked flows in the flow-state
// store so only new submissions land on the new owner. Reports whether
// the owned set changed.
func (p *Peer) RebalanceShards(members []string) bool {
	mgr := p.shardMgr
	if mgr == nil || p.lookup == nil {
		return false
	}
	// Replication follows the same membership view: follower placement
	// tracks the ring, and a vanished member's replica is promoted by
	// its successor (repl.go) — the disk-loss half of the failover this
	// claim/drain cycle handles the lease half of.
	defer p.refreshReplication(members)
	return mgr.Rebalance(members,
		func(shards []int) (map[int]string, error) {
			return p.lookup.ClaimShards(p.Name, shards)
		},
		func(shards []int) error {
			_, err := p.lookup.ReleaseShards(p.Name, shards)
			return err
		},
		p.drainShard)
}

// drainShard parks a drained shard's tracked flows via store
// passivation. Stores are per-peer, so an already-accepted flow stays
// recoverable on this peer (it resurrects here on demand); the drain
// moves future placement, not history.
func (p *Peer) drainShard(sh int, execIDs []string) {
	engine := p.server.Engine()
	for _, id := range execIDs {
		// Best-effort: a running or storeless execution stays resident
		// and tracked; the next rebalance prunes what has finished.
		if err := engine.Passivate(id); err == nil {
			p.shardMgr.Untrack(id)
		}
	}
}

// countRoute counts one routing outcome in shard_routes_total.
func (p *Peer) countRoute(outcome string) {
	p.server.Engine().Obs().Counter("shard_routes_total", "outcome", outcome).Inc()
}
