package wire

import (
	"testing"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/obs"
	"datagridflow/internal/vfs"
)

// newObservedEngine builds an engine whose grid has its own registry,
// so metric assertions are isolated from other tests.
func newObservedEngine(t testing.TB, prefix string) (*matrix.Engine, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	g := dgms.New(dgms.Options{Obs: reg})
	if err := g.RegisterResource(vfs.New("disk"+prefix, "sdsc", vfs.Disk, 0)); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		t.Fatal(err)
	}
	if err := g.Namespace().SetPermission("/grid", "user", namespace.PermWrite); err != nil {
		t.Fatal(err)
	}
	return matrix.NewEngineConfig(g, matrix.Config{IDPrefix: prefix}), reg
}

// TestMetricsControlOp fetches the engine's snapshot over the wire and
// checks the wire layer's own traffic shows up in it.
func TestMetricsControlOp(t *testing.T) {
	e, _ := newObservedEngine(t, "")
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	flow := dgl.NewFlow("f").
		Step("ingest", dgl.Op(dgl.OpIngest, map[string]string{
			"path": "/grid/m.dat", "size": "10", "resource": "disk",
		})).Flow()
	if _, err := c.SubmitFlow("user", flow); err != nil {
		t.Fatal(err)
	}

	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	counter := func(name string) int64 {
		var total int64
		for _, p := range snap.Counters {
			if p.Name == name {
				total += p.Value
			}
		}
		return total
	}
	if got := counter("wire_connections_total"); got < 1 {
		t.Errorf("wire_connections_total = %d, want >= 1", got)
	}
	// The DGL submit frame plus the metrics control frame itself.
	if got := counter("wire_frames_in_total"); got < 2 {
		t.Errorf("wire_frames_in_total = %d, want >= 2", got)
	}
	if got := counter("matrix_flows_succeeded_total"); got != 1 {
		t.Errorf("matrix_flows_succeeded_total = %d, want 1", got)
	}
	if counter("wire_bytes_in_total") <= 0 || counter("wire_bytes_out_total") <= 0 {
		t.Error("wire byte counters did not advance")
	}
}

// TestWireStatusRouting drives cross-peer status resolution through the
// wire itself: a client of peer B queries an id owned by peer A, and B
// forwards it — one routing hop, visible in B's metrics.
func TestWireStatusRouting(t *testing.T) {
	ls := NewLookupServer()
	lookupAddr, err := ls.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()

	engineA, _ := newObservedEngine(t, "matrixA:")
	peerA := NewPeer("matrixA", engineA)
	if _, err := peerA.Start("127.0.0.1:0", lookupAddr); err != nil {
		t.Fatal(err)
	}
	defer peerA.Close()
	engineB, regB := newObservedEngine(t, "matrixB:")
	peerB := NewPeer("matrixB", engineB)
	addrB, err := peerB.Start("127.0.0.1:0", lookupAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer peerB.Close()

	ex, err := engineA.Run("user", dgl.NewFlow("onA").
		Step("s", dgl.Op(dgl.OpNoop, nil)).Flow())
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}

	c, err := Dial(addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Status("user", ex.ID, false)
	if err != nil {
		t.Fatalf("cross-peer wire status: %v", err)
	}
	if st.Name != "onA" || st.State != "succeeded" {
		t.Fatalf("forwarded status = %+v", st)
	}
	forwards := regB.Counter("wire_peer_forwards_total", "peer", "matrixA").Value()
	if forwards != 1 {
		t.Errorf("wire_peer_forwards_total{peer=matrixA} = %d, want 1", forwards)
	}
	// An id B owns is answered locally, not forwarded.
	bex, err := engineB.Run("user", dgl.NewFlow("onB").
		Step("s", dgl.Op(dgl.OpNoop, nil)).Flow())
	if err != nil {
		t.Fatal(err)
	}
	if err := bex.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Status("user", bex.ID, false); err != nil {
		t.Fatal(err)
	}
	if got := regB.Counter("wire_peer_forwards_total", "peer", "matrixA").Value(); got != forwards {
		t.Errorf("local status incremented forwards (%d)", got)
	}
	if got := regB.Counter("wire_peer_status_local_total").Value(); got < 1 {
		t.Errorf("wire_peer_status_local_total = %d, want >= 1", got)
	}
}
