package wire

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/scheduler"
)

func startLookup(t *testing.T) (*LookupServer, string) {
	t.Helper()
	ls := NewLookupServer()
	addr, err := ls.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ls.Close)
	return ls, addr
}

func TestLookupTTLEviction(t *testing.T) {
	ls, addr := startLookup(t)
	base := time.Now()
	now := base
	var mu sync.Mutex
	ls.setNow(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	ls.SetTTL(30 * time.Second)
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	c, err := DialLookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register("stale", "10.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("fresh", "10.0.0.2:1"); err != nil {
		t.Fatal(err)
	}
	advance(20 * time.Second)
	// fresh heartbeats inside the TTL; stale stays silent.
	if _, err := c.Heartbeat("fresh", "10.0.0.2:1", scheduler.PeerLoad{Running: 3}); err != nil {
		t.Fatal(err)
	}
	advance(15 * time.Second) // stale is now 35s silent, fresh 15s
	infos, err := c.ListInfos()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "fresh" {
		t.Fatalf("after TTL sweep: %+v", infos)
	}
	if infos[0].Load.Running != 3 {
		t.Errorf("gossiped load = %+v", infos[0].Load)
	}
	if infos[0].AgeSeconds < 14 || infos[0].AgeSeconds > 16 {
		t.Errorf("age = %v", infos[0].AgeSeconds)
	}
	if _, err := c.Resolve("stale"); err == nil {
		t.Error("evicted peer still resolves")
	}
	// A heartbeat re-registers an evicted peer (lease renewal).
	if _, err := c.Heartbeat("stale", "10.0.0.1:1", scheduler.PeerLoad{}); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Resolve("stale"); err != nil || got != "10.0.0.1:1" {
		t.Errorf("heartbeat re-register: %q, %v", got, err)
	}
	// TTL 0 disables eviction.
	ls.SetTTL(0)
	advance(time.Hour)
	if _, err := c.Resolve("stale"); err != nil {
		t.Errorf("eviction ran with ttl disabled: %v", err)
	}
}

func TestLookupHeartbeatKeepsPriorLoad(t *testing.T) {
	_, addr := startLookup(t)
	c, err := DialLookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Heartbeat("p", "10.0.0.1:1", scheduler.PeerLoad{Running: 7}); err != nil {
		t.Fatal(err)
	}
	// A plain register (no load) must not wipe the gossiped load; the
	// next loadless heartbeat must keep it too.
	if err := c.Register("p", "10.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	infos, err := c.ListInfos()
	if err != nil || len(infos) != 1 {
		t.Fatalf("infos = %+v, %v", infos, err)
	}
	if infos[0].Load.Running != 7 {
		t.Errorf("load after re-register = %+v", infos[0].Load)
	}
	// Heartbeat with empty name rejected.
	if _, err := c.Heartbeat("", "x", scheduler.PeerLoad{}); err == nil {
		t.Error("empty heartbeat accepted")
	}
}

func TestLookupUnregister(t *testing.T) {
	_, addr := startLookup(t)
	c, err := DialLookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register("gone", "10.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unregister("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve("gone"); err == nil {
		t.Error("unregistered peer still resolves")
	}
	// Unregistering an unknown peer is not an error (idempotent).
	if err := c.Unregister("never"); err != nil {
		t.Errorf("unregister unknown = %v", err)
	}
}

func TestLookupConcurrentRegisterResolve(t *testing.T) {
	_, addr := startLookup(t)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := DialLookup(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			name := fmt.Sprintf("peer-%d", w)
			for i := 0; i < 20; i++ {
				if err := c.Register(name, fmt.Sprintf("10.0.0.%d:%d", w, i)); err != nil {
					errs <- err
					return
				}
				if _, err := c.Resolve(name); err != nil {
					errs <- err
					return
				}
				if _, err := c.Heartbeat(name, fmt.Sprintf("10.0.0.%d:%d", w, i), scheduler.PeerLoad{Running: int64(i)}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c, err := DialLookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	infos, err := c.ListInfos()
	if err != nil || len(infos) != workers {
		t.Fatalf("infos = %d, %v", len(infos), err)
	}
	// Sorted by name.
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Name > infos[i].Name {
			t.Fatalf("unsorted infos: %+v", infos)
		}
	}
}

func TestLookupShutdownWithOpenConns(t *testing.T) {
	ls, addr := startLookup(t)
	var clients []*LookupClient
	for i := 0; i < 4; i++ {
		c, err := DialLookup(addr)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		if err := c.Register(fmt.Sprintf("p%d", i), "10.0.0.1:1"); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() { ls.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("lookup Close hung with open connections")
	}
	// Requests on the severed connections fail cleanly, not hang.
	for _, c := range clients {
		if _, err := c.Resolve("p0"); err == nil {
			t.Error("resolve on closed lookup succeeded")
		}
		c.Close()
	}
}

func TestPeerHeartbeatAndDropClient(t *testing.T) {
	_, lookupAddr := startLookup(t)
	peerA := NewPeer("hbA", newEngine(t, "hbA:"))
	if _, err := peerA.Start("127.0.0.1:0", lookupAddr); err != nil {
		t.Fatal(err)
	}
	defer peerA.Close()
	peerB := NewPeer("hbB", newEngine(t, "hbB:"))
	if _, err := peerB.Start("127.0.0.1:0", lookupAddr); err != nil {
		t.Fatal(err)
	}
	defer peerB.Close()

	infos, err := peerA.Heartbeat(scheduler.PeerLoad{Inflight: 1, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("gossip = %+v", infos)
	}
	// The pooled client negotiates hello, so its feature level is known.
	c, err := peerA.Client("hbB")
	if err != nil {
		t.Fatal(err)
	}
	if !c.CanDelegate() {
		t.Error("peer link did not negotiate delegate support")
	}
	again, err := peerA.Client("hbB")
	if err != nil || again != c {
		t.Errorf("client not pooled: %p vs %p (%v)", again, c, err)
	}
	peerA.DropClient("hbB")
	fresh, err := peerA.Client("hbB")
	if err != nil {
		t.Fatal(err)
	}
	if fresh == c {
		t.Error("DropClient did not evict the pooled connection")
	}
	// Peer without a lookup cannot heartbeat.
	solo := NewPeer("solo", newEngine(t, "solo:"))
	if _, err := solo.Heartbeat(scheduler.PeerLoad{}); err == nil {
		t.Error("heartbeat without lookup accepted")
	}
	// Resolve-miss through the peer's client pool.
	if _, err := peerA.Client("nosuch"); err == nil {
		t.Error("client for unknown peer accepted")
	}
}
