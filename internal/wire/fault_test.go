package wire

import (
	"context"
	"errors"
	"testing"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/fault"
	"datagridflow/internal/matrix"
	"datagridflow/internal/sim"
)

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestHelloNegotiation(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c := dial(t, addr)
	proto, err := c.Hello()
	if err != nil {
		t.Fatalf("Hello: %v", err)
	}
	if proto != ProtoVersion(ProtoMajor, ProtoMinor) {
		t.Errorf("server proto = %q, want %q", proto, ProtoVersion(ProtoMajor, ProtoMinor))
	}
}

func TestHelloMajorMismatch(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c := dial(t, addr)
	// A hypothetical incompatible client offers major 99.
	_, err := c.controlMsg(context.Background(), Control{Op: "hello", Proto: "99.0"})
	if !errors.Is(err, dgferr.ErrProtocol) {
		t.Errorf("major mismatch = %v, want ErrProtocol", err)
	}
	// Garbled versions also land in the protocol class.
	_, err = c.controlMsg(context.Background(), Control{Op: "hello", Proto: "banana"})
	if !errors.Is(err, dgferr.ErrProtocol) {
		t.Errorf("bad version = %v, want ErrProtocol", err)
	}
	// Same-major minor skew is compatible.
	res, err := c.controlMsg(context.Background(), Control{Op: "hello",
		Proto: ProtoVersion(ProtoMajor, ProtoMinor+5)})
	if err != nil || !res.OK {
		t.Errorf("minor skew rejected: %v %+v", err, res)
	}
}

// TestTypedErrorsOverWire: the acceptance criterion — a client-side
// errors.Is against the taxonomy sentinels holds for failures produced
// deep inside the remote engine.
func TestTypedErrorsOverWire(t *testing.T) {
	e := newEngine(t, "")
	// Force an always-down resource so the retry budget burns out.
	in, err := fault.NewInjector(e.Grid().Clock(), fault.Plan{
		Events: []fault.Event{{Target: "disk", Kind: fault.ResourceDown}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Grid().SetFault(in)
	_, addr := startServer(t, e)
	c := dial(t, addr)

	st := dgl.Step{
		Name: "ingest", OnError: dgl.OnErrorRetry, Retries: 2,
		Operation: dgl.Op(dgl.OpIngest, map[string]string{
			"path": "/grid/f.dat", "size": "100", "resource": "disk",
		}),
	}
	_, err = c.RunFlow(context.Background(), "user", dgl.NewFlow("f").StepWith(st).Flow())
	if !errors.Is(err, dgferr.ErrRetryExhausted) {
		t.Errorf("errors.Is(err, ErrRetryExhausted) = false over the wire: %v", err)
	}
	if dgferr.Retryable(err) {
		t.Errorf("exhausted remote failure still marked retryable")
	}

	// Status of an unknown execution: the not-found class crosses too.
	if _, err := c.Status("user", "no-such-exec", false); !errors.Is(err, dgferr.ErrNotFound) {
		t.Errorf("unknown execution = %v, want ErrNotFound", err)
	}
}

// TestPeerCrashDropsConnections: a peer-crash window severs connections
// at the frame boundary; after the window the server accepts again.
func TestPeerCrashDropsConnections(t *testing.T) {
	e := newEngine(t, "")
	clock := sim.NewVirtualClock(sim.Epoch)
	in, err := fault.NewInjector(clock, fault.Plan{Events: []fault.Event{
		{At: time.Minute, Target: "srv", Kind: fault.PeerCrash, Duration: time.Minute},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s, addr := startServer(t, e)
	s.SetFault(in, "srv")

	flow := dgl.NewFlow("f").Step("ingest", dgl.Op(dgl.OpIngest, map[string]string{
		"path": "/grid/crash.dat", "size": "100", "resource": "disk",
	})).Flow()

	c := dial(t, addr)
	if _, err := c.RunFlow(context.Background(), "user", flow); err != nil {
		t.Fatalf("before crash window: %v", err)
	}
	clock.Advance(90 * time.Second) // into the crash window
	if _, err := c.SubmitContext(context.Background(), dgl.NewStatusRequest("user", "x", false)); err == nil {
		t.Fatal("request survived the crash window")
	}
	clock.Advance(time.Minute) // the server "restarts"
	c2 := dial(t, addr)
	if _, err := c2.Status("user", "no-such", false); !errors.Is(err, dgferr.ErrNotFound) {
		t.Errorf("after restart: %v, want a served (typed) response", err)
	}
}

func TestClientContextCancellation(t *testing.T) {
	e := newEngine(t, "")
	release := make(chan struct{})
	e.RegisterOp("hang", func(*matrix.OpContext) error { <-release; return nil })
	_, addr := startServer(t, e)
	c := dial(t, addr)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.SubmitContext(ctx, dgl.NewRequest("user", "",
		dgl.NewFlow("f").Step("h", dgl.Op("hang", nil)).Flow()))
	if !errors.Is(err, dgferr.ErrCancelled) {
		t.Errorf("cancelled round trip = %v, want ErrCancelled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("cancellation did not interrupt in-flight I/O promptly")
	}
	// Unblock the server-side execution before the server's Close cleanup
	// runs (cleanups are LIFO: Close would otherwise wait on this conn).
	close(release)
}
