package wire

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"datagridflow/internal/dgl"
)

// benchPayload is a representative DGL request document (~½ KiB).
var benchPayload = func() []byte {
	req := dgl.NewAsyncRequest("user", "", dgl.NewFlow("bench").
		Step("a", dgl.Op(dgl.OpNoop, map[string]string{"k1": "v1", "k2": "v2"})).
		Step("b", dgl.Op(dgl.OpNoop, nil)).
		Step("c", dgl.Op(dgl.OpNoop, nil)).Flow())
	data, err := dgl.Marshal(req)
	if err != nil {
		panic(err)
	}
	return data
}()

func BenchmarkFrameEncode(b *testing.B) {
	b.SetBytes(int64(len(benchPayload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io.Discard, KindDGL, benchPayload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	var one bytes.Buffer
	if err := WriteFrame(&one, KindDGL, benchPayload); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(benchPayload)))
	b.ReportAllocs()
	r := bytes.NewReader(nil)
	for i := 0; i < b.N; i++ {
		r.Reset(one.Bytes())
		if _, _, err := ReadFrame(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMuxFrameEncode(b *testing.B) {
	b.SetBytes(int64(len(benchPayload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteMuxFrame(io.Discard, KindDGL, uint64(i), benchPayload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMuxFrameDecode(b *testing.B) {
	var one bytes.Buffer
	if err := WriteMuxFrame(&one, KindDGL, 7, benchPayload); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(benchPayload)))
	b.ReportAllocs()
	r := bytes.NewReader(nil)
	for i := 0; i < b.N; i++ {
		r.Reset(one.Bytes())
		if _, _, _, err := ReadMuxFrame(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialRoundTrip measures one-at-a-time request/response over
// a live TCP connection with the pre-1.2 serial framing.
func BenchmarkSerialRoundTrip(b *testing.B) {
	e := newEngine(b, "")
	_, addr := startServer(b, e)
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	flow := noopFlow("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SubmitAsync("user", flow); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	e.Prune(0)
}

// BenchmarkPipelinedRoundTrip measures the same request mix over a
// multiplexed session with 16 concurrent submitters sharing one
// connection — the pipelining win the 1.2 protocol exists for.
func BenchmarkPipelinedRoundTrip(b *testing.B) {
	e := newEngine(b, "")
	_, addr := startServer(b, e)
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		b.Fatal(err)
	}
	if !c.Muxed() {
		b.Fatal("session not muxed")
	}
	const workers = 16
	flow := noopFlow("bench")
	b.ResetTimer()
	var wg sync.WaitGroup
	iters := make(chan struct{}, b.N)
	for i := 0; i < b.N; i++ {
		iters <- struct{}{}
	}
	close(iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range iters {
				if _, err := c.SubmitAsyncContext(context.Background(), "user", flow); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	e.Prune(0)
}

// BenchmarkBatchRoundTrip measures throughput when flows travel 32 to a
// frame.
func BenchmarkBatchRoundTrip(b *testing.B) {
	e := newEngine(b, "")
	_, addr := startServer(b, e)
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		b.Fatal(err)
	}
	const batch = 32
	reqs := make([]*dgl.Request, batch)
	for i := range reqs {
		reqs[i] = dgl.NewAsyncRequest("user", "", noopFlow(fmt.Sprintf("b%d", i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		if _, err := c.SubmitBatch(context.Background(), "user", reqs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	e.Prune(0)
}
