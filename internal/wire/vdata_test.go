package wire

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/obs"
	"datagridflow/internal/tenant"
	"datagridflow/internal/vdata"
	"datagridflow/internal/vfs"
)

// newVdataPeer stands up a peer whose engine has a memory-only
// derivation catalog attached, on its own metrics registry so counter
// assertions do not cross-talk. minor pins the wire server's protocol
// (0 keeps the current one).
func newVdataPeer(t testing.TB, name, lookupAddr string, minor int) (*Peer, *matrix.Engine, *vdata.Catalog, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	g := dgms.New(dgms.Options{Obs: reg})
	if err := g.RegisterResource(vfs.New("disk-"+name, "sdsc", vfs.Disk, 0)); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		t.Fatal(err)
	}
	if err := g.Namespace().SetPermission("/grid", "user", namespace.PermWrite); err != nil {
		t.Fatal(err)
	}
	e := matrix.NewEngineConfig(g, matrix.Config{IDPrefix: name + ":"})
	cat, err := vdata.Open("", reg)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPeerConfig(name, e, ServerConfig{ProtoMinor: minor})
	p.EnableVdata(cat)
	if _, err := p.Start("127.0.0.1:0", lookupAddr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p, e, cat, reg
}

func wirePureFlow() dgl.Flow {
	return dgl.NewFlow("derive").
		PureStep("fft", dgl.Op(dgl.OpExec, map[string]string{
			"command": "fft /grid/raw", "cpuSeconds": "5", "resultVar": "spectrum",
		}), "/grid/derived/spectrum.dat").
		Flow()
}

// TestVdataVerbRoundTrip covers the wire 1.8 vdata verb end to end over
// a plain client: stats, publish, tenant-scoped lookup, invalidate.
func TestVdataVerbRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	e := newEngine(t, "")
	cat, err := vdata.Open("", reg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetVdata(cat)
	_, addr := startServer(t, e)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	if !c.CanVdata() {
		t.Fatal("CanVdata() = false against a current server")
	}

	info, err := c.VdataStats()
	if err != nil || !info.Enabled || info.Entries != 0 {
		t.Fatalf("stats = %+v / %v", info, err)
	}
	ent := vdata.Entry{
		Key: vdata.Key("fft", []string{"/grid/derived/a"}, map[string]string{"n": "1"}, "user"),
		Op:  "fft", Outputs: []string{"/grid/derived/a"}, Result: "done",
	}
	if err := c.VdataPublish("user", ent); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.VdataLookup("user", ent.Key)
	if err != nil || !ok || got.Result != "done" || got.Tenant != "user" {
		t.Fatalf("lookup = %+v ok=%v err=%v", got, ok, err)
	}
	// The same key under another identity is invisible.
	if _, ok, err := c.VdataLookup("other", ent.Key); err != nil || ok {
		t.Fatalf("cross-tenant lookup = ok=%v err=%v", ok, err)
	}
	// Invalidation by output path drops the entry.
	n, err := c.VdataInvalidate("user", "/grid/derived/a")
	if err != nil || n != 1 {
		t.Fatalf("invalidate = %d / %v", n, err)
	}
	if _, ok, _ := c.VdataLookup("user", ent.Key); ok {
		t.Fatal("entry survived invalidation")
	}
}

// TestVdataVerbWithoutCatalog: a 1.8 server with no catalog attached
// answers stats with Enabled false instead of erroring.
func TestVdataVerbWithoutCatalog(t *testing.T) {
	e := newEngine(t, "")
	_, addr := startServer(t, e)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	info, err := c.VdataStats()
	if err != nil || info.Enabled {
		t.Fatalf("stats without catalog = %+v / %v", info, err)
	}
}

// TestVdataVerbAgainstOldServer: against a server pinned below 1.8 the
// client refuses locally with a typed protocol error — the degradation
// is local-only memoization, not a confusing remote failure.
func TestVdataVerbAgainstOldServer(t *testing.T) {
	e := newEngine(t, "old")
	s := NewServerConfig(e, ServerConfig{ProtoMinor: 7})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	if c.CanVdata() {
		t.Fatal("CanVdata() = true against a 1.7 server")
	}
	if _, err := c.VdataStats(); !errors.Is(err, dgferr.ErrProtocol) {
		t.Fatalf("stats against 1.7 = %v, want typed ErrProtocol", err)
	}
}

// TestVdataVerbRequiresTenantMatch: on a require-auth server the vdata
// verb re-verifies the caller per operation, like submissions.
func TestVdataVerbRequiresTenantMatch(t *testing.T) {
	reg := obs.NewRegistry()
	e := newEngine(t, "")
	cat, err := vdata.Open("", reg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetVdata(cat)
	s := NewServer(e)
	auth, err := tenant.NewAuthority([]byte("wire-test-secret"))
	if err != nil {
		t.Fatal(err)
	}
	s.SetTenancy(auth, tenant.NewRegistry(tenant.Quota{}, obs.NewRegistry()), true)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetToken(mint(t, auth, "alice"))
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	ent := vdata.Entry{
		Key: vdata.Key("fft", []string{"/grid/derived/a"}, nil, "alice"),
		Op:  "fft", Outputs: []string{"/grid/derived/a"}, Result: "done",
		// A forged tenant claim inside the entry is overridden server-side.
		Tenant: "bob",
	}
	if err := c.VdataPublish("alice", ent); err != nil {
		t.Fatal(err)
	}
	got, ok := cat.Lookup("alice", ent.Key)
	if !ok || got.Tenant != "alice" {
		t.Fatalf("published entry = %+v ok=%v, want tenant alice", got, ok)
	}
	// A lookup claiming another tenant's identity is refused.
	if _, _, err := c.VdataLookup("bob", ent.Key); !errors.Is(err, dgferr.ErrAuth) {
		t.Fatalf("imposter lookup = %v, want typed ErrAuth", err)
	}
	// A tokenless client is refused outright on a require-auth server.
	anon, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	if _, err := anon.Hello(); err != nil {
		t.Fatal(err)
	}
	if _, err := anon.VdataStats(); !errors.Is(err, dgferr.ErrAuth) {
		t.Fatalf("tokenless stats = %v, want typed ErrAuth", err)
	}
}

// TestVdataFleetRemoteReuse is the tentpole's cross-peer story: peerA
// computes a pure derivation, peerB's miss resolves the holder through
// the registry, fetches the entry over the wire, grafts it locally, and
// skips execution — counted in vdata_remote_hits_total.
func TestVdataFleetRemoteReuse(t *testing.T) {
	_, lookupAddr := startLookup(t)
	_, eA, _, _ := newVdataPeer(t, "peerA", lookupAddr, 0)
	_, eB, catB, regB := newVdataPeer(t, "peerB", lookupAddr, 0)

	ex, err := eA.Run("user", wirePureFlow())
	if err != nil || ex.Err() != nil {
		t.Fatalf("peerA run: %v / %v", err, ex.Err())
	}
	ex, err = eB.Run("user", wirePureFlow())
	if err != nil || ex.Err() != nil {
		t.Fatalf("peerB run: %v / %v", err, ex.Err())
	}
	if got := regB.Counter("vdata_remote_hits_total").Value(); got != 1 {
		t.Fatalf("vdata_remote_hits_total = %d, want 1", got)
	}
	// The graft keeps its origin and lands in peerB's own catalog, so the
	// next run hits locally without a network trip.
	keys := catB.Keys()
	if len(keys) != 1 {
		t.Fatalf("peerB catalog keys = %v", keys)
	}
	if ent, ok := catB.Lookup("user", keys[0]); !ok || ent.Peer != "peerA" {
		t.Fatalf("grafted entry = %+v ok=%v", ent, ok)
	}
	ex, err = eB.Run("user", wirePureFlow())
	if err != nil || ex.Err() != nil {
		t.Fatalf("peerB warm run: %v / %v", err, ex.Err())
	}
	if got := regB.Counter("vdata_remote_hits_total").Value(); got != 1 {
		t.Fatalf("warm run went remote: vdata_remote_hits_total = %d", got)
	}
	if got := regB.Counter("vdata_hits_total").Value(); got != 2 {
		t.Fatalf("vdata_hits_total = %d, want 2", got)
	}
}

// TestVdataMixedFleet17x18: a 1.7 peer in the fleet memoizes locally
// but cannot serve remote lookups — a 1.8 peer's probe degrades to a
// miss and the step simply executes. Nothing fails, nothing hangs.
func TestVdataMixedFleet17x18(t *testing.T) {
	_, lookupAddr := startLookup(t)
	// peerOld speaks 1.7: its catalog works locally, its server refuses
	// the vdata verb.
	_, eOld, _, regOld := newVdataPeer(t, "peerOld", lookupAddr, 7)
	_, eNew, _, regNew := newVdataPeer(t, "peerNew", lookupAddr, 0)

	ex, err := eOld.Run("user", wirePureFlow())
	if err != nil || ex.Err() != nil {
		t.Fatalf("peerOld run: %v / %v", err, ex.Err())
	}
	// peerNew resolves peerOld as holder, but the negotiated session is
	// 1.7 — the probe reports a miss and the step executes locally.
	ex, err = eNew.Run("user", wirePureFlow())
	if err != nil || ex.Err() != nil {
		t.Fatalf("peerNew run: %v / %v", err, ex.Err())
	}
	if got := regNew.Counter("vdata_remote_hits_total").Value(); got != 0 {
		t.Fatalf("vdata_remote_hits_total = %d against a 1.7 holder", got)
	}
	if got := regNew.Counter("vdata_misses_total").Value(); got != 1 {
		t.Fatalf("vdata_misses_total = %d, want 1", got)
	}
	// The old peer's local memoization still works: a second run there
	// hits its own catalog.
	ex, err = eOld.Run("user", wirePureFlow())
	if err != nil || ex.Err() != nil {
		t.Fatalf("peerOld warm run: %v / %v", err, ex.Err())
	}
	if got := regOld.Counter("vdata_hits_total").Value(); got != 1 {
		t.Fatalf("peerOld local hits = %d, want 1", got)
	}
}

// TestLookupVdataRegistry covers the registry half: vput/vget routing,
// and rows dying with their peer (eviction and unregister).
func TestLookupVdataRegistry(t *testing.T) {
	ls, addr := startLookup(t)
	base := time.Now()
	now := base
	var mu sync.Mutex
	ls.setNow(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	ls.SetTTL(30 * time.Second)

	c, err := DialLookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register("peerA", "127.0.0.1:1111"); err != nil {
		t.Fatal(err)
	}
	if err := c.AnnounceVdata("peerA", []string{"k1", "k2"}); err != nil {
		t.Fatal(err)
	}
	name, holderAddr, err := c.ResolveVdata("k1")
	if err != nil || name != "peerA" || holderAddr != "127.0.0.1:1111" {
		t.Fatalf("vget = %q %q %v", name, holderAddr, err)
	}
	if _, _, err := c.ResolveVdata("nope"); err == nil {
		t.Fatal("unknown key resolved")
	}
	// Unregister drops the peer's announcements with it.
	if err := c.Unregister("peerA"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ResolveVdata("k1"); err == nil {
		t.Fatal("key survived unregister")
	}
	// Eviction does too: register, announce, let the TTL lapse.
	if err := c.Register("peerB", "127.0.0.1:2222"); err != nil {
		t.Fatal(err)
	}
	if err := c.AnnounceVdata("peerB", []string{"k3"}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(31 * time.Second)
	mu.Unlock()
	if _, _, err := c.ResolveVdata("k3"); err == nil {
		t.Fatal("key survived holder eviction")
	}
}

// TestLookupVdataAuthGating: on a token-gated registry vput is a
// mutating op (refused tokenless), vget stays open like resolve.
func TestLookupVdataAuthGating(t *testing.T) {
	auth, err := tenant.NewAuthority([]byte("lookup-secret"))
	if err != nil {
		t.Fatal(err)
	}
	ls := NewLookupServer()
	ls.SetAuth(auth)
	addr, err := ls.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()

	c, err := DialLookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AnnounceVdata("peerA", []string{"k1"}); err == nil ||
		!strings.Contains(err.Error(), "token") {
		t.Fatalf("tokenless vput = %v, want token refusal", err)
	}
	tok, err := auth.Mint("ops", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c.SetToken(tok)
	if err := c.Register("peerA", "127.0.0.1:1111"); err != nil {
		t.Fatal(err)
	}
	if err := c.AnnounceVdata("peerA", []string{"k1"}); err != nil {
		t.Fatal(err)
	}
	// Reads stay open, even from a tokenless connection.
	open, err := DialLookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer open.Close()
	if name, _, err := open.ResolveVdata("k1"); err != nil || name != "peerA" {
		t.Fatalf("open vget = %q / %v", name, err)
	}
}
