package wire

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/obs"
	"datagridflow/internal/scheduler"
	"datagridflow/internal/tenant"
)

// tenantServer stands up a server with the tenancy plane attached and
// returns the authority for minting test tokens.
func tenantServer(t testing.TB, require bool, cfg ServerConfig) (*Server, string, *tenant.Authority, *tenant.Registry) {
	t.Helper()
	e := newEngine(t, "")
	s := NewServerConfig(e, cfg)
	auth, err := tenant.NewAuthority([]byte("wire-test-secret"))
	if err != nil {
		t.Fatal(err)
	}
	reg := tenant.NewRegistry(tenant.Quota{}, obs.NewRegistry())
	s.SetTenancy(auth, reg, require)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, addr, auth, reg
}

func mint(t testing.TB, auth *tenant.Authority, name string) string {
	t.Helper()
	tok, err := auth.Mint(name, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

// TestHelloTokenExchange covers the wire 1.7 credential exchange: a
// valid token yields the verified tenant on the hello result; a forged
// token fails the handshake before anything is submitted.
func TestHelloTokenExchange(t *testing.T) {
	_, addr, auth, _ := tenantServer(t, false, ServerConfig{})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetToken(mint(t, auth, "alice"))
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	if got := c.Tenant(); got != "alice" {
		t.Errorf("Tenant() = %q, want alice", got)
	}
	if !c.CanTenant() {
		t.Errorf("CanTenant() = false on a 1.7 server")
	}

	// Forged token: handshake refused.
	bad, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	bad.SetToken("dgt1.YWxpY2U.9999999999.Zm9yZ2Vk")
	if _, err := bad.Hello(); err == nil {
		t.Fatal("hello with a forged token succeeded")
	}
}

// TestRequireAuthRejectsTokenless covers -tenant-require: submissions
// without a token are refused with a typed auth error; the same flow
// under a minted token is admitted under the token's tenant.
func TestRequireAuthRejectsTokenless(t *testing.T) {
	_, addr, auth, _ := tenantServer(t, true, ServerConfig{})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.SubmitFlow("user", noopFlow("f"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Fatal("tokenless submit admitted on a require-auth server")
	}
	if !errors.Is(dgferr.Decode(resp.Error), dgferr.ErrAuth) {
		t.Errorf("tokenless submit error = %q, want typed ErrAuth", resp.Error)
	}

	c.SetToken(mint(t, auth, "alice"))
	resp, err = c.SubmitFlow("alice", noopFlow("f"))
	if err != nil || resp.Error != "" {
		t.Fatalf("tokened submit = %v / %q", err, resp.Error)
	}
}

// TestTokenUserMismatch: a request claiming a user other than the
// token's tenant is an identity forgery and must be refused.
func TestTokenUserMismatch(t *testing.T) {
	_, addr, auth, _ := tenantServer(t, false, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetToken(mint(t, auth, "alice"))
	resp, err := c.SubmitFlow("bob", noopFlow("f"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" || !errors.Is(dgferr.Decode(resp.Error), dgferr.ErrAuth) {
		t.Errorf("mismatched user = %q, want typed ErrAuth", resp.Error)
	}
	// Empty claimed user defers to the token.
	resp, err = c.SubmitFlow("", noopFlow("f"))
	if err != nil || resp.Error != "" {
		t.Fatalf("empty-user submit = %v / %q", err, resp.Error)
	}
}

// TestMixedVersionInterop16x17 covers both directions of the 1.6↔1.7
// interop story (docs/WIRE.md): a pre-tenant client against a tenancy
// server is anonymous-but-admitted, and a tokened client against a
// pre-tenant server works because the appended token fields are
// skipped by the older decoders.
func TestMixedVersionInterop16x17(t *testing.T) {
	// Pre-tenant (tokenless, today's framing) client → 1.7 server.
	_, addr, _, _ := tenantServer(t, false, ServerConfig{})
	old, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	if _, err := old.Hello(); err != nil {
		t.Fatal(err)
	}
	if got := old.Tenant(); got != "" {
		t.Errorf("tokenless hello negotiated tenant %q", got)
	}
	resp, err := old.SubmitFlow("user", noopFlow("f"))
	if err != nil || resp.Error != "" {
		t.Fatalf("anonymous-but-admitted submit = %v / %q", err, resp.Error)
	}

	// Tokened 1.7 client → server pinned to 1.6 (pre-tenant). The token
	// rides the request and is ignored; the session reports no tenant
	// support and the tenants verb refuses.
	e := newEngine(t, "old")
	s := NewServerConfig(e, ServerConfig{ProtoMinor: 6})
	oldAddr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	auth, err := tenant.NewAuthority([]byte("wire-test-secret"))
	if err != nil {
		t.Fatal(err)
	}
	nc, err := Dial(oldAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetToken(mint(t, auth, "alice"))
	if _, err := nc.Hello(); err != nil {
		t.Fatal(err)
	}
	if nc.CanTenant() {
		t.Errorf("CanTenant() = true against a 1.6 server")
	}
	if got := nc.Tenant(); got != "" {
		t.Errorf("1.6 server granted tenant %q", got)
	}
	resp, err = nc.SubmitFlow("user", noopFlow("f"))
	if err != nil || resp.Error != "" {
		t.Fatalf("tokened submit to 1.6 server = %v / %q", err, resp.Error)
	}
	if _, err := nc.Tenants(0); err == nil {
		t.Error("tenants verb succeeded against a 1.6 server")
	}
}

// TestTenantsVerbRoundTrip: the control verb reports the server's
// tenancy posture and per-tenant usage.
func TestTenantsVerbRoundTrip(t *testing.T) {
	_, addr, auth, reg := tenantServer(t, false, ServerConfig{})
	reg.Register("alice", tenant.Quota{Weight: 4})
	reg.Register("bob", tenant.Quota{Weight: 2})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetToken(mint(t, auth, "alice"))
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	resp, err := c.SubmitFlow("alice", noopFlow("f"))
	if err != nil || resp.Error != "" {
		t.Fatalf("submit = %v / %q", err, resp.Error)
	}
	info, err := c.Tenants(10)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Enabled || !info.Auth || info.Require {
		t.Errorf("posture = %+v, want enabled auth-on require-off", info)
	}
	if info.Registered != 2 {
		t.Errorf("registered = %d, want 2", info.Registered)
	}
	var alice *tenant.Info
	for i := range info.Tenants {
		if info.Tenants[i].Name == "alice" {
			alice = &info.Tenants[i]
		}
	}
	if alice == nil || alice.Weight != 4 {
		t.Errorf("alice row = %+v", alice)
	}
}

// TestBatchEnvelopeIdentity: batch items run under the envelope's
// verified identity; an item claiming a different user fails alone
// without sinking the batch.
func TestBatchEnvelopeIdentity(t *testing.T) {
	_, addr, auth, _ := tenantServer(t, false, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetToken(mint(t, auth, "alice"))
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	reqs := []*dgl.Request{
		dgl.NewAsyncRequest("", "", noopFlow("a")),      // inherits the envelope identity
		dgl.NewAsyncRequest("alice", "", noopFlow("b")), // matches: fine
		dgl.NewAsyncRequest("mallory", "", noopFlow("c")),
	}
	resps, err := c.SubmitBatch(context.Background(), "alice", reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 3 {
		t.Fatalf("responses = %d, want 3", len(resps))
	}
	if resps[0].Error != "" || resps[1].Error != "" {
		t.Errorf("conforming items failed: %q / %q", resps[0].Error, resps[1].Error)
	}
	if resps[2].Error == "" || !errors.Is(dgferr.Decode(resps[2].Error), dgferr.ErrAuth) {
		t.Errorf("imposter item = %q, want typed ErrAuth", resps[2].Error)
	}
}

// TestQuotaRejectionOverWire: a flows-in-flight quota breach surfaces
// to the client as a typed ErrQuota, and releasing the flow frees the
// slot.
func TestQuotaRejectionOverWire(t *testing.T) {
	// A real clock: the holding flow must still be in flight when the
	// second one arrives (the default test grid completes sleeps
	// instantly on its virtual clock).
	e := newRealClockEngine(t)
	s := NewServer(e)
	auth, err := tenant.NewAuthority([]byte("wire-test-secret"))
	if err != nil {
		t.Fatal(err)
	}
	reg := tenant.NewRegistry(tenant.Quota{}, obs.NewRegistry())
	reg.Register("alice", tenant.Quota{MaxFlows: 1})
	s.SetTenancy(auth, reg, false)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetToken(mint(t, auth, "alice"))
	if _, err := c.Hello(); err != nil {
		t.Fatal(err)
	}
	hold := dgl.NewFlow("hold").
		Step("op", dgl.Op(dgl.OpSleep, map[string]string{"duration": "30s"})).Flow()
	id, err := c.SubmitAsync("alice", hold)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitAsync("alice", hold)
	if err == nil || !errors.Is(err, dgferr.ErrQuota) {
		t.Fatalf("second flow = %v, want typed ErrQuota", err)
	}
	// Cancelling the holder frees the slot (and the test goroutine).
	if err := c.Cancel(id); err != nil {
		t.Fatal(err)
	}
}

// TestLookupAuthGating: a token-gated registry refuses mutating
// operations without a token, keeps reads open, and admits a tokened
// peer end to end (Peer.SetLookupToken).
func TestLookupAuthGating(t *testing.T) {
	auth, err := tenant.NewAuthority([]byte("lookup-secret"))
	if err != nil {
		t.Fatal(err)
	}
	ls := NewLookupServer()
	ls.SetAuth(auth)
	addr, err := ls.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()

	lc, err := DialLookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.Register("peerA", "127.0.0.1:9999"); err == nil ||
		!strings.Contains(err.Error(), "token") {
		t.Fatalf("tokenless register = %v, want token refusal", err)
	}
	// Reads stay open: the directory is not a secret.
	if _, err := lc.List(); err != nil {
		t.Fatalf("tokenless list refused: %v", err)
	}

	tok, err := auth.Mint("ops", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	lc.SetToken(tok)
	if err := lc.Register("peerA", "127.0.0.1:9999"); err != nil {
		t.Fatalf("tokened register = %v", err)
	}
	if _, err := lc.Heartbeat("peerA", "127.0.0.1:9999", scheduler.PeerLoad{}); err != nil {
		t.Fatalf("tokened heartbeat = %v", err)
	}
	if got, err := lc.Resolve("peerA"); err != nil || got != "127.0.0.1:9999" {
		t.Fatalf("resolve = %q / %v", got, err)
	}
	if err := lc.Unregister("peerA"); err != nil {
		t.Fatalf("tokened unregister = %v", err)
	}

	// End to end: a peer started with SetLookupToken registers itself.
	e := newEngine(t, "lk")
	p := NewPeer("peerB", e)
	p.SetLookupToken(tok)
	if _, err := p.Start("127.0.0.1:0", addr); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got, err := lc.Resolve("peerB"); err != nil || got == "" {
		t.Fatalf("peerB registration = %q / %v", got, err)
	}
}
