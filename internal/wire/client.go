package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"datagridflow/internal/codec"
	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/obs"
	"datagridflow/internal/vdata"
)

// Client is a connection to one matrix server. A fresh client speaks
// the serial protocol — one request in flight at a time, matching
// pre-1.2 servers. Calling Hello negotiates the protocol version; when
// both ends speak >= 1.2 the session upgrades to multiplexed framing
// and the client pipelines: any number of goroutines may issue
// requests concurrently over the one connection, each completed
// through its own channel when the matching response id arrives.
//
// Server-reported failures come back as typed errors: the server
// encodes its error class on the wire (docs/WIRE.md, "Typed errors")
// and the client rebuilds it, so errors.Is against the datagridflow
// sentinels (ErrNotFound, ErrRetryExhausted, ...) works across the
// network. A connection lost with requests in flight fails every one
// of them with a resource-down class error — never a hang.
type Client struct {
	// addr is the dial target, retained so Redial can re-establish the
	// session after a connection drop.
	addr string
	// timeout bounds each request in nanoseconds (atomic: SetTimeout
	// may race with in-flight round trips).
	timeout atomic.Int64

	// writeMu serializes frame writes; in serial mode it spans the whole
	// round trip (write + read), in mux mode only the write.
	writeMu sync.Mutex

	mu      sync.Mutex
	conn    net.Conn
	muxed   bool
	closed  bool
	nextID  uint64
	pending map[uint64]chan muxReply
	readErr error // terminal until Redial: set once the mux read loop exits
	// helloed records that Hello negotiated at least once, so Redial
	// knows to re-run the handshake: negotiated state (mux, binary
	// codec, server version) belongs to a connection, not the client,
	// and must be refreshed on every new conn.
	helloed bool
	// serverMajor/serverMinor record the version the server advertised
	// in the hello reply (zero before Hello) — the feature gate for
	// delegation and the binary codec.
	serverMajor int
	serverMinor int
	// binary is set by Hello when both ends speak >= 1.4 (and
	// DisableBinary wasn't called): requests are encoded with
	// internal/codec instead of XML/JSON. Responses are always decoded
	// by sniffing, so the flag only governs what this client sends.
	binary    bool
	binaryOff bool
	// token is the tenant bearer token attached to every submit, batch,
	// delegate and route frame (SetToken, docs/TENANCY.md). tenant
	// records the identity the server verified in the hello reply.
	token  string
	tenant string
}

// muxReply is one matched response delivered to a pipelined waiter.
type muxReply struct {
	kind    byte
	payload []byte
}

// Dial connects to a matrix server.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a matrix server honouring the context's
// deadline and cancellation.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Client{addr: addr, conn: conn}, nil
}

// SetTimeout bounds every subsequent request (write + read) by d on the
// wall clock; zero restores unbounded requests. Per-request contexts
// (SubmitContext) compose with it — whichever limit is tighter wins.
// Safe to call concurrently with in-flight requests.
func (c *Client) SetTimeout(d time.Duration) { c.timeout.Store(int64(d)) }

// SetToken attaches a tenant bearer token (tenant.Authority.Mint,
// docs/TENANCY.md) to every subsequent submit, batch, delegate and
// route frame, and offers it during Hello so the server can verify the
// session identity up front. An empty string detaches. Pre-1.7 servers
// skip the token field and account the caller as anonymous — sending
// one is always safe.
func (c *Client) SetToken(tok string) {
	c.mu.Lock()
	c.token = tok
	c.mu.Unlock()
}

// Token returns the tenant bearer token set with SetToken.
func (c *Client) Token() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.token
}

// Tenant returns the identity the server verified during Hello, or ""
// when no token was offered (or the server predates tenancy).
func (c *Client) Tenant() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenant
}

// Close closes the connection. Pipelined requests still in flight fail
// with a cancelled-class error.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	return conn.Close()
}

// current returns the live connection. Frame I/O additionally holds
// writeMu, which Redial also takes — so a round trip never straddles a
// connection swap.
func (c *Client) current() net.Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn
}

// Muxed reports whether Hello negotiated the multiplexed protocol on
// this connection.
func (c *Client) Muxed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.muxed
}

// Binary reports whether Hello negotiated the binary codec on this
// connection (both ends >= 1.4 and DisableBinary not called).
func (c *Client) Binary() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.binary
}

// DisableBinary pins this client to the legacy text encodings (XML
// requests, JSON envelopes) even against a 1.4 server — an interop and
// benchmarking knob. Safe at any point: calling it after Hello stops
// binary encoding from the next request on.
func (c *Client) DisableBinary() {
	c.mu.Lock()
	c.binaryOff = true
	c.binary = false
	c.mu.Unlock()
}

// roundTrip performs one request-response, dispatching on the session
// mode. The serial path holds writeMu for the whole exchange; the mux
// path registers a completion channel keyed by request id.
func (c *Client) roundTrip(ctx context.Context, kind byte, payload []byte) (byte, []byte, error) {
	for {
		if c.Muxed() {
			return c.roundTripMux(ctx, kind, payload)
		}
		c.writeMu.Lock()
		if c.Muxed() {
			// Another goroutine upgraded the session while we waited for
			// the lock; retry on the mux path.
			c.writeMu.Unlock()
			continue
		}
		k, resp, err := c.serialRoundTripLocked(ctx, kind, payload)
		c.writeMu.Unlock()
		return k, resp, err
	}
}

// serialRoundTripLocked performs one framed request-response; the
// caller holds writeMu. The context's deadline/cancellation and the
// client timeout apply to the connection for the duration.
func (c *Client) serialRoundTripLocked(ctx context.Context, kind byte, payload []byte) (byte, []byte, error) {
	conn := c.current()
	deadline := time.Time{}
	if d := time.Duration(c.timeout.Load()); d > 0 {
		deadline = time.Now().Add(d)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline) // zero clears
	stop := context.AfterFunc(ctx, func() {
		// Cancellation interrupts in-flight I/O by expiring the deadline.
		_ = conn.SetDeadline(time.Now())
	})
	defer stop()
	if err := WriteFrame(conn, kind, payload); err != nil {
		return 0, nil, c.ctxErr(ctx, err)
	}
	k, resp, err := ReadFrame(conn)
	if err != nil {
		return 0, nil, c.ctxErr(ctx, err)
	}
	return k, resp, nil
}

// roundTripMux pipelines one request: write the frame with a fresh id,
// then wait on the per-request completion channel. Cancellation
// abandons the request (the response, if it ever arrives, is
// discarded) without disturbing other in-flight requests.
func (c *Client) roundTripMux(ctx context.Context, kind byte, payload []byte) (byte, []byte, error) {
	if d := time.Duration(c.timeout.Load()); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	ch := make(chan muxReply, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return 0, nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := WriteMuxFrame(c.current(), kind, id, payload)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		rerr := c.readErr
		c.mu.Unlock()
		if rerr != nil {
			return 0, nil, rerr
		}
		return 0, nil, c.ctxErr(ctx, err)
	}
	select {
	case r, ok := <-ch:
		if !ok {
			// Channel closed by failAll: the connection died.
			c.mu.Lock()
			rerr := c.readErr
			c.mu.Unlock()
			return 0, nil, rerr
		}
		return r.kind, r.payload, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: %v", dgferr.ErrCancelled, ctx.Err())
	}
}

// upgrade switches the session to multiplexed framing and starts the
// response reader. Caller holds writeMu (so no serial round trip can
// interleave between the hello reply and the reader start).
func (c *Client) upgrade() {
	conn := c.current()
	// Clear any deadline left by the hello round trip: mux reads block
	// indefinitely and complete per-request via completion channels.
	_ = conn.SetDeadline(time.Time{})
	c.mu.Lock()
	c.muxed = true
	c.pending = make(map[uint64]chan muxReply)
	c.mu.Unlock()
	go c.readLoop(conn)
}

// readLoop is the mux-mode response pump: it matches response ids to
// pending requests until the connection dies, then fails everything
// still in flight. It is pinned to the connection it was started for:
// after a Redial the stale loop's exit must not poison the fresh
// session, so failure is scoped through failAllFor.
func (c *Client) readLoop(conn net.Conn) {
	for {
		kind, id, payload, err := ReadMuxFrame(conn)
		if err != nil {
			c.failAllFor(conn, err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok {
			ch <- muxReply{kind: kind, payload: payload} // buffered; never blocks
		}
	}
}

// failAllFor records the terminal connection error and fails every
// in-flight request with a typed error: cancelled if the client closed
// the connection itself, resource-down (transient — retry after Redial
// or on a fresh connection) otherwise. A loop whose connection has
// already been replaced by Redial is stale: its error belongs to the
// old session and is dropped.
func (c *Client) failAllFor(conn net.Conn, cause error) {
	c.mu.Lock()
	if c.conn != conn {
		c.mu.Unlock()
		return
	}
	if c.readErr == nil {
		if c.closed {
			c.readErr = fmt.Errorf("%w: wire: client closed", dgferr.ErrCancelled)
		} else {
			c.readErr = fmt.Errorf("%w: wire: connection lost: %v", dgferr.ErrResourceDown, cause)
		}
	}
	pending := c.pending
	c.pending = make(map[uint64]chan muxReply)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Redial tears down the dead connection and dials the server again,
// re-running the hello handshake when the old session had negotiated
// one. Negotiated state — mux framing, the binary codec, the server's
// advertised version — belongs to a connection, not the client; a
// redial that skipped the handshake would happily send binary mux
// frames to a server that never agreed to them on this session (or,
// after a server downgrade, to one that cannot speak them at all).
// In-flight requests on the old session fail with their original
// resource-down error. Safe to call concurrently; requests issued
// during the redial block until it completes.
func (c *Client) Redial(ctx context.Context) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("%w: wire: client closed", dgferr.ErrCancelled)
	}
	old := c.conn
	addr := c.addr
	helloed := c.helloed
	c.mu.Unlock()
	if addr == "" {
		return fmt.Errorf("%w: wire: client was not dialed (no address to redial)", dgferr.ErrInvalid)
	}
	_ = old.Close() // unblocks a stale read loop; its exit is scoped to old
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("%w: wire: redial %s: %v", dgferr.ErrResourceDown, addr, err)
	}
	c.mu.Lock()
	c.conn = conn
	// Fresh session: everything Hello negotiated is void until it runs
	// again, so the client drops back to serial XML/JSON framing.
	c.muxed = false
	c.pending = nil
	c.readErr = nil
	c.serverMajor, c.serverMinor = 0, 0
	c.binary = false
	c.mu.Unlock()
	if helloed {
		if _, err := c.helloLocked(); err != nil {
			return err
		}
	}
	return nil
}

// ctxErr maps an I/O error caused by context cancellation back to the
// context's error, wrapped in the cancelled class.
func (c *Client) ctxErr(ctx context.Context, err error) error {
	if ctx.Err() == nil {
		// The connection deadline derived from the context can fire a
		// beat before the context's own timer; if the context is at its
		// deadline, wait for it to notice so the caller sees the
		// cancellation class rather than a raw i/o timeout.
		if d, ok := ctx.Deadline(); ok && time.Until(d) < time.Millisecond {
			select {
			case <-ctx.Done():
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	if ctx.Err() != nil {
		return fmt.Errorf("%w: %v", dgferr.ErrCancelled, ctx.Err())
	}
	return err
}

// SubmitContext sends one DGL request under a context: the deadline
// bounds the round trip and cancellation interrupts in-flight I/O
// (serial mode) or abandons the pipelined request (mux mode).
//
// Deprecated: use Submit(ctx, req) — this wrapper remains for source
// compatibility with the pre-1.5 submit surface.
func (c *Client) SubmitContext(ctx context.Context, req *dgl.Request) (*dgl.Response, error) {
	return c.submitOne(ctx, req)
}

// submitOne is the single-request transport core shared by Submit and
// the deprecated wrappers.
func (c *Client) submitOne(ctx context.Context, req *dgl.Request) (*dgl.Response, error) {
	if tok := c.Token(); tok != "" && req.Token == "" {
		// Attach the session token without mutating the caller's request.
		stamped := *req
		stamped.Token = tok
		req = &stamped
	}
	var data []byte
	if c.Binary() {
		enc := codec.GetEncoder()
		defer codec.PutEncoder(enc)
		codec.AppendRequest(enc, req)
		data = enc.Bytes()
	} else {
		var err error
		if data, err = dgl.Marshal(req); err != nil {
			return nil, err
		}
	}
	kind, payload, err := c.roundTrip(ctx, KindDGL, data)
	if err != nil {
		return nil, err
	}
	if kind != KindDGL {
		return nil, errors.New("wire: unexpected frame kind in response")
	}
	return parseResponsePayload(payload)
}

// parseResponsePayload sniffs a DGL response payload's encoding —
// servers mirror the request encoding, but decoding never assumes.
func parseResponsePayload(payload []byte) (*dgl.Response, error) {
	if codec.IsBinary(payload) {
		return codec.DecodeResponse(payload)
	}
	return dgl.ParseResponse(payload)
}

// SubmitBatch submits N requests in one round trip on a multiplexed
// session (the KindBatch frame), falling back to sequential submission
// against pre-1.2 serial servers.
//
// Deprecated: use Submit(ctx, nil, WithBatch(reqs...), WithUser(user))
// — this wrapper remains for source compatibility with the pre-1.5
// submit surface.
func (c *Client) SubmitBatch(ctx context.Context, user string, reqs []*dgl.Request) ([]*dgl.Response, error) {
	return c.submitBatch(ctx, user, reqs)
}

// submitBatch is the batch transport core shared by Submit and the
// deprecated SubmitBatch wrapper. The reply is positional: item i's
// response answers reqs[i], with per-item failures carried in each
// response's Error field (decode with dgferr.Decode). A transport
// failure aborts the whole call with a typed error. user names the
// identity the server's admission scheduler accounts the batch to.
func (c *Client) submitBatch(ctx context.Context, user string, reqs []*dgl.Request) ([]*dgl.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if !c.Muxed() {
		// Pre-1.2 fallback: one serial round trip per item.
		out := make([]*dgl.Response, len(reqs))
		for i, req := range reqs {
			resp, err := c.SubmitContext(ctx, req)
			if err != nil {
				return nil, err
			}
			out[i] = resp
		}
		return out, nil
	}
	var payload []byte
	if c.Binary() {
		// Binary envelope with binary items: each item is encoded into a
		// pooled scratch encoder and streamed straight into the envelope —
		// one copy per item. Collecting the items first would copy every
		// payload twice, which dominates batch CPU once items carry
		// multi-kilobyte variable sets.
		enc := codec.GetEncoder()
		defer codec.PutEncoder(enc)
		appendBatchStart(enc, user, c.Token())
		ie := codec.GetEncoder()
		for _, req := range reqs {
			ie.Reset()
			codec.AppendRequest(ie, req)
			appendBatchItem(enc, ie.Bytes())
		}
		codec.PutEncoder(ie)
		payload = enc.Bytes()
	} else {
		b := Batch{User: user, Token: c.Token(), Requests: make([]string, len(reqs))}
		for i, req := range reqs {
			data, err := dgl.Marshal(req)
			if err != nil {
				return nil, fmt.Errorf("wire: batch item %d: %w", i, err)
			}
			b.Requests[i] = string(data)
		}
		var err error
		if payload, err = json.Marshal(b); err != nil {
			return nil, err
		}
	}
	kind, resp, err := c.roundTrip(ctx, KindBatch, payload)
	if err != nil {
		return nil, err
	}
	if kind != KindBatch {
		return nil, errors.New("wire: unexpected frame kind in batch response")
	}
	var ok bool
	var errText string
	var docs [][]byte
	if codec.IsBinary(resp) {
		if ok, errText, docs, err = decodeBatchResult(resp); err != nil {
			return nil, fmt.Errorf("wire: bad batch reply: %w", err)
		}
	} else {
		var res BatchResult
		if err := json.Unmarshal(resp, &res); err != nil {
			return nil, fmt.Errorf("wire: bad batch reply: %w", err)
		}
		ok, errText = res.OK, res.Error
		docs = make([][]byte, len(res.Responses))
		for i, d := range res.Responses {
			docs[i] = []byte(d)
		}
	}
	if !ok {
		return nil, dgferr.Decode(errText)
	}
	if len(docs) != len(reqs) {
		return nil, fmt.Errorf("wire: batch reply has %d items, want %d", len(docs), len(reqs))
	}
	out := make([]*dgl.Response, len(reqs))
	for i, doc := range docs {
		r, err := parseResponsePayload(doc)
		if err != nil {
			return nil, fmt.Errorf("wire: batch reply item %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// SubmitFlow submits a flow synchronously and returns the final status.
func (c *Client) SubmitFlow(user string, flow dgl.Flow) (*dgl.Response, error) {
	return c.submitOne(context.Background(), dgl.NewRequest(user, "", flow))
}

// RunFlow submits a flow synchronously and returns its final status
// tree, decoding a server-side failure into a typed error — the
// convenience entry point for "run this and tell me, typed, why it
// failed".
func (c *Client) RunFlow(ctx context.Context, user string, flow dgl.Flow) (*dgl.FlowStatus, error) {
	resp, err := c.submitOne(ctx, dgl.NewRequest(user, "", flow))
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return resp.Status, dgferr.Decode(resp.Error)
	}
	if resp.Status == nil {
		return nil, errors.New("wire: empty response")
	}
	return resp.Status, nil
}

// SubmitAsync submits a flow asynchronously and returns the execution id
// from the acknowledgement.
//
// Deprecated: use Submit(ctx, dgl.NewRequest(user, "", flow),
// WithAsync()) and read SubmitResult.ID — this wrapper remains for
// source compatibility with the pre-1.5 submit surface.
func (c *Client) SubmitAsync(user string, flow dgl.Flow) (string, error) {
	return c.SubmitAsyncContext(context.Background(), user, flow)
}

// SubmitAsyncContext is SubmitAsync under a context.
//
// Deprecated: see SubmitAsync.
func (c *Client) SubmitAsyncContext(ctx context.Context, user string, flow dgl.Flow) (string, error) {
	resp, err := c.submitOne(ctx, dgl.NewAsyncRequest(user, "", flow))
	if err != nil {
		return "", err
	}
	if resp.Error != "" {
		return "", dgferr.Decode(resp.Error)
	}
	if resp.Ack == nil || !resp.Ack.Valid {
		return "", errors.New("wire: missing acknowledgement")
	}
	return resp.Ack.ID, nil
}

// Status queries the status of an execution, flow or step id.
func (c *Client) Status(user, id string, detail bool) (*dgl.FlowStatus, error) {
	resp, err := c.submitOne(context.Background(), dgl.NewStatusRequest(user, id, detail))
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, dgferr.Decode(resp.Error)
	}
	if resp.Status == nil {
		return nil, errors.New("wire: empty status response")
	}
	return resp.Status, nil
}

// control sends one control verb.
func (c *Client) control(op, id string) (ControlResult, error) {
	return c.controlMsg(context.Background(), Control{Op: op, ID: id})
}

func (c *Client) controlMsg(ctx context.Context, msg Control) (ControlResult, error) {
	var data []byte
	if c.Binary() {
		enc := codec.GetEncoder()
		defer codec.PutEncoder(enc)
		appendControl(enc, &msg)
		data = enc.Bytes()
	} else {
		var err error
		if data, err = json.Marshal(msg); err != nil {
			return ControlResult{}, err
		}
	}
	kind, payload, err := c.roundTrip(ctx, KindControl, data)
	if err != nil {
		return ControlResult{}, err
	}
	if kind != KindControl {
		return ControlResult{}, errors.New("wire: unexpected frame kind in response")
	}
	var res ControlResult
	if codec.IsBinary(payload) {
		if res, err = decodeControlResult(payload); err != nil {
			return ControlResult{}, err
		}
	} else if err := json.Unmarshal(payload, &res); err != nil {
		return ControlResult{}, err
	}
	if !res.OK && res.Error != "" {
		return res, dgferr.Decode(res.Error)
	}
	return res, nil
}

// Hello negotiates the protocol version with the server: it offers the
// client's version and returns the server's. Servers reject a major
// mismatch with an error carrying the protocol class
// (errors.Is(err, dgferr.ErrProtocol)). When both ends speak >= 1.2
// the session upgrades to multiplexed framing: subsequent requests
// pipeline over the connection and SubmitBatch uses batch frames.
// Against an older serial server the client simply stays serial —
// Hello is the negotiation point, and not calling it leaves the
// session serial regardless of server version.
func (c *Client) Hello() (serverProto string, err error) {
	msg := Control{Op: "hello", Proto: ProtoVersion(ProtoMajor, ProtoMinor), Token: c.Token()}
	if c.Muxed() {
		// Already negotiated: a repeat hello is an ordinary control verb.
		res, err := c.controlMsg(context.Background(), msg)
		if err != nil {
			return "", err
		}
		c.mu.Lock()
		c.tenant = res.Tenant
		c.mu.Unlock()
		return res.Proto, nil
	}
	c.writeMu.Lock()
	if c.Muxed() {
		// Raced with another Hello that upgraded first.
		c.writeMu.Unlock()
		res, err := c.controlMsg(context.Background(), msg)
		if err != nil {
			return "", err
		}
		c.mu.Lock()
		c.tenant = res.Tenant
		c.mu.Unlock()
		return res.Proto, nil
	}
	proto, err := c.helloLocked()
	c.writeMu.Unlock()
	return proto, err
}

// helloLocked runs the serial hello negotiation; the caller holds
// writeMu and the session is not muxed. Shared between Hello and
// Redial (which must refresh negotiated state on the new connection
// before releasing the session to callers).
func (c *Client) helloLocked() (serverProto string, err error) {
	msg := Control{Op: "hello", Proto: ProtoVersion(ProtoMajor, ProtoMinor), Token: c.Token()}
	data, err := json.Marshal(msg)
	if err != nil {
		return "", err
	}
	kind, payload, err := c.serialRoundTripLocked(context.Background(), KindControl, data)
	if err != nil {
		return "", err
	}
	var res ControlResult
	if kind == KindControl {
		err = json.Unmarshal(payload, &res)
	} else {
		err = errors.New("wire: unexpected frame kind in hello response")
	}
	if err == nil && !res.OK && res.Error != "" {
		err = dgferr.Decode(res.Error)
	}
	if err == nil && res.OK {
		if major, minor, perr := ParseProtoVersion(res.Proto); perr == nil {
			c.mu.Lock()
			c.serverMajor, c.serverMinor = major, minor
			// Both ends >= 1.4: switch the hot paths to the binary codec
			// (docs/CODEC.md). The hello exchange itself always rides
			// JSON — it is what discovers whether binary is safe.
			c.binary = !c.binaryOff && BinarySupported(major, minor)
			c.tenant = res.Tenant
			c.helloed = true
			c.mu.Unlock()
			if MuxSupported(major, minor) {
				// Both ends speak >= 1.2: the server switched to mux framing
				// right after this reply; follow before releasing writeMu.
				c.upgrade()
			}
		}
	}
	if err != nil {
		return "", err
	}
	return res.Proto, nil
}

// ServerProto returns the version the server advertised in the hello
// reply, or zeros before Hello has completed.
func (c *Client) ServerProto() (major, minor int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serverMajor, c.serverMinor
}

// CanDelegate reports whether this session may carry delegate frames:
// the session is multiplexed and the server advertised >= 1.3 in its
// hello reply. Against an older server the federation layer never sends
// a delegate frame — the subflow stays local (docs/FEDERATION.md).
func (c *Client) CanDelegate() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.muxed && DelegateSupported(c.serverMajor, c.serverMinor)
}

// Delegate asks the server to execute a subflow on this peer's behalf
// and waits for its final status. A non-nil result with res.OK false
// means the remote ran (or refused) the work and reported a typed
// failure — err carries the decoded class and res.ID/res.Status what
// the remote knows. A nil result means transport failure: the caller
// cannot know whether the remote ran anything (the at-least-once caveat
// in docs/FEDERATION.md).
func (c *Client) Delegate(ctx context.Context, d Delegate) (*DelegateResult, error) {
	if !c.CanDelegate() {
		return nil, fmt.Errorf("%w: server does not accept delegate frames (need >= %s)",
			dgferr.ErrProtocol, ProtoVersion(ProtoMajor, delegateMinor))
	}
	var payload []byte
	if c.Binary() {
		enc := codec.GetEncoder()
		defer codec.PutEncoder(enc)
		appendDelegate(enc, &d)
		payload = enc.Bytes()
	} else {
		var err error
		if payload, err = json.Marshal(d); err != nil {
			return nil, err
		}
	}
	kind, resp, err := c.roundTrip(ctx, KindDelegate, payload)
	if err != nil {
		return nil, err
	}
	if kind != KindDelegate {
		return nil, errors.New("wire: unexpected frame kind in delegate response")
	}
	var res DelegateResult
	if codec.IsBinary(resp) {
		if res, err = decodeDelegateResult(resp); err != nil {
			return nil, fmt.Errorf("wire: bad delegate reply: %w", err)
		}
	} else if err := json.Unmarshal(resp, &res); err != nil {
		return nil, fmt.Errorf("wire: bad delegate reply: %w", err)
	}
	if !res.OK {
		return &res, dgferr.Decode(res.Error)
	}
	return &res, nil
}

// CanRoute reports whether this session may carry route frames: the
// session is multiplexed and the server advertised >= 1.5 in its hello
// reply. Against an older server the sharding layer never sends a
// route frame — the submission stays local-accepted
// (docs/FEDERATION.md, "Sharded ownership").
func (c *Client) CanRoute() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.muxed && RouteSupported(c.serverMajor, c.serverMinor)
}

// Route hands a submission to the peer that owns its shard and waits
// for the acceptance outcome. A result with res.NotOwner set means the
// target no longer holds the shard (ownership moved between the
// routing decision and delivery) and res.Owner names where it went —
// the caller re-resolves and retries. A transport failure returns a
// nil result; the caller cannot know whether the remote accepted.
func (c *Client) Route(ctx context.Context, rt Route) (*RouteResult, error) {
	if !c.CanRoute() {
		return nil, fmt.Errorf("%w: server does not accept route frames (need >= %s)",
			dgferr.ErrProtocol, ProtoVersion(ProtoMajor, routeMinor))
	}
	// Route envelopes always ride JSON: the hot payload is the embedded
	// request document, which keeps whatever encoding the origin chose.
	payload, err := json.Marshal(rt)
	if err != nil {
		return nil, err
	}
	kind, resp, err := c.roundTrip(ctx, KindRoute, payload)
	if err != nil {
		return nil, err
	}
	if kind != KindRoute {
		return nil, errors.New("wire: unexpected frame kind in route response")
	}
	var res RouteResult
	if err := json.Unmarshal(resp, &res); err != nil {
		return nil, fmt.Errorf("wire: bad route reply: %w", err)
	}
	if !res.OK && res.Error != "" {
		return &res, dgferr.Decode(res.Error)
	}
	return &res, nil
}

// CanReplicate reports whether this session may carry replicate
// frames: the session is multiplexed and the server advertised >= 1.6
// in its hello reply. Against an older server the replication layer
// never sends one — that follower is skipped
// (repl_skipped_peers_total) until it upgrades, the sniff-side of the
// 1.5/1.6 fallback (docs/REPLICATION.md).
func (c *Client) CanReplicate() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.muxed && ReplicateSupported(c.serverMajor, c.serverMinor)
}

// Replicate delivers one replication frame — an append block of the
// local store's record stream, or a catch-up snapshot — to a follower
// and returns its ack. A result with NeedSnapshot set means the
// follower is missing records below the frame's sequence; the sender
// ships a snapshot and retries. A transport failure returns a nil
// result.
func (c *Client) Replicate(ctx context.Context, f Replicate) (*ReplicateResult, error) {
	if !c.CanReplicate() {
		return nil, fmt.Errorf("%w: server does not accept replicate frames (need >= %s)",
			dgferr.ErrProtocol, ProtoVersion(ProtoMajor, replMinor))
	}
	// The envelope rides binary when the session negotiated it (>= 1.4
	// both ends): replication is the owner's hot path under quorum ack,
	// and the JSON envelope's marshal + base64 of the block is pure
	// per-frame overhead. The record block inside keeps the sender's
	// store encoding either way — envelope and block encodings are
	// independent.
	var payload []byte
	if c.Binary() {
		enc := codec.GetEncoder()
		defer codec.PutEncoder(enc)
		appendReplicate(enc, &f)
		payload = enc.Bytes()
	} else {
		var err error
		if payload, err = json.Marshal(f); err != nil {
			return nil, err
		}
	}
	kind, resp, err := c.roundTrip(ctx, KindReplicate, payload)
	if err != nil {
		return nil, err
	}
	if kind != KindReplicate {
		return nil, errors.New("wire: unexpected frame kind in replicate response")
	}
	// Servers mirror the request encoding, but decoding never assumes.
	var res ReplicateResult
	if codec.IsBinary(resp) {
		if res, err = decodeReplicateResult(resp); err != nil {
			return nil, fmt.Errorf("wire: bad replicate reply: %w", err)
		}
	} else if err := json.Unmarshal(resp, &res); err != nil {
		return nil, fmt.Errorf("wire: bad replicate reply: %w", err)
	}
	if res.Error != "" {
		return &res, dgferr.Decode(res.Error)
	}
	return &res, nil
}

// Repl retrieves the server's replication posture — ack mode, follower
// acknowledgement positions and standby sources — over the control
// extension. Requires a replicating 1.6 server.
func (c *Client) Repl() (*ReplInfo, error) {
	res, err := c.control("repl", "")
	if err != nil {
		return nil, err
	}
	if res.Repl == nil {
		return nil, errors.New("wire: empty repl reply")
	}
	return res.Repl, nil
}

// CanTenant reports whether the server advertised tenancy-aware wire
// support (>= 1.7) in its hello reply: the "tenants" control verb and
// token verification on submit, batch, delegate and route frames.
// Against an older server tokens are skipped and the caller is
// accounted as anonymous (docs/TENANCY.md).
func (c *Client) CanTenant() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return TenantSupported(c.serverMajor, c.serverMinor)
}

// Tenants retrieves the server's tenancy posture — whether tenancy and
// token auth are enabled, the registered-tenant count, and up to limit
// per-tenant usage rows ordered by activity (0 applies the server
// default). Requires a 1.7 server.
func (c *Client) Tenants(limit int) (*TenantsInfo, error) {
	res, err := c.controlMsg(context.Background(), Control{Op: "tenants", Limit: limit})
	if err != nil {
		return nil, err
	}
	if res.Tenants == nil {
		return nil, errors.New("wire: empty tenants reply")
	}
	return res.Tenants, nil
}

// CanVdata reports whether the server advertised virtual-data wire
// support (>= 1.8) in its hello reply: the "vdata" control verb for
// fleet-wide derivation lookup, publish and invalidation. Against an
// older server the memoization plane degrades to local-only
// (docs/VDATA.md).
func (c *Client) CanVdata() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return VdataSupported(c.serverMajor, c.serverMinor)
}

// vdataMsg sends one "vdata" sub-operation, carrying the session token
// and the claimed tenant identity for per-tenant re-verification.
func (c *Client) vdataMsg(msg Control) (*VdataInfo, error) {
	if !c.CanVdata() {
		return nil, fmt.Errorf("%w: server does not speak the vdata verb (need >= %s)",
			dgferr.ErrProtocol, ProtoVersion(ProtoMajor, vdataMinor))
	}
	msg.Op = "vdata"
	if msg.Token == "" {
		msg.Token = c.Token()
	}
	res, err := c.controlMsg(context.Background(), msg)
	if err != nil {
		return nil, err
	}
	if res.Vdata == nil {
		return nil, errors.New("wire: empty vdata reply")
	}
	return res.Vdata, nil
}

// VdataStats retrieves the server's derivation-catalog shape. Requires
// a 1.8 server; Enabled false means no catalog is attached there.
func (c *Client) VdataStats() (*VdataInfo, error) {
	return c.vdataMsg(Control{Sub: "stats"})
}

// VdataLookup resolves a derivation key in the server's catalog under
// the given tenant identity. ok false with a nil error means the server
// holds no such derivation (or holds it under another tenant).
func (c *Client) VdataLookup(user, key string) (*vdata.Entry, bool, error) {
	info, err := c.vdataMsg(Control{Sub: "lookup", User: user, Key: key})
	if err != nil {
		return nil, false, err
	}
	if !info.Found || info.Entry == nil {
		return nil, false, nil
	}
	return info.Entry, true, nil
}

// VdataPublish records a derivation in the server's catalog under the
// caller's resolved tenant (the entry's own Tenant field is overridden
// server-side — no cross-tenant writes).
func (c *Client) VdataPublish(user string, ent vdata.Entry) error {
	raw, err := json.Marshal(ent)
	if err != nil {
		return err
	}
	_, err = c.vdataMsg(Control{Sub: "publish", User: user, Data: string(raw)})
	return err
}

// VdataInvalidate drops the tenant's derivations matching target — a
// derivation key or an output path — returning how many were removed.
func (c *Client) VdataInvalidate(user, target string) (int, error) {
	info, err := c.vdataMsg(Control{Sub: "invalidate", User: user, Key: target})
	if err != nil {
		return 0, err
	}
	return info.Removed, nil
}

// Owner asks the server which peer owns a flow or execution id,
// resolved from tracked accepts, owner-prefixed ids, or the shard
// ring (OwnerInfo.Source says which). Requires a sharded 1.5 server.
func (c *Client) Owner(id string) (*OwnerInfo, error) {
	res, err := c.control("owner", id)
	if err != nil {
		return nil, err
	}
	if res.Owner == nil {
		return nil, fmt.Errorf("%w: server reported no owner for %s", dgferr.ErrNotFound, id)
	}
	return res.Owner, nil
}

// Pause suspends an execution on the server.
func (c *Client) Pause(id string) error {
	_, err := c.control("pause", id)
	return err
}

// Resume continues a paused execution.
func (c *Client) Resume(id string) error {
	_, err := c.control("resume", id)
	return err
}

// Cancel stops an execution.
func (c *Client) Cancel(id string) error {
	_, err := c.control("cancel", id)
	return err
}

// Restart re-runs a terminal execution, returning the new execution id.
func (c *Client) Restart(id string) (string, error) {
	res, err := c.control("restart", id)
	if err != nil {
		return "", err
	}
	return res.ID, nil
}

// List returns the server's tracked executions.
func (c *Client) List() ([]ExecutionInfo, error) {
	res, err := c.control("list", "")
	if err != nil {
		return nil, err
	}
	return res.Executions, nil
}

// StoreStats retrieves the server's flow-state store summary (segment
// count, snapshot lag, passivated/resident counts) over the control
// extension.
func (c *Client) StoreStats() (*StoreInfo, error) {
	res, err := c.control("store", "")
	if err != nil {
		return nil, err
	}
	if res.Store == nil {
		return nil, errors.New("wire: empty store reply")
	}
	return res.Store, nil
}

// Compact asks the server to compact its flow-state store, returning
// the post-compaction summary with the compaction's record counts.
func (c *Client) Compact() (*StoreInfo, error) {
	res, err := c.control("compact", "")
	if err != nil {
		return nil, err
	}
	if res.Store == nil {
		return nil, errors.New("wire: empty compact reply")
	}
	return res.Store, nil
}

// Metrics retrieves the server engine's metrics snapshot over the
// control extension — the wire twin of the -metrics-addr HTTP endpoint.
func (c *Client) Metrics() (*obs.Snapshot, error) {
	res, err := c.control("metrics", "")
	if err != nil {
		return nil, err
	}
	if len(res.Metrics) == 0 {
		return nil, errors.New("wire: empty metrics reply")
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(res.Metrics, &snap); err != nil {
		return nil, fmt.Errorf("wire: bad metrics reply: %w", err)
	}
	return &snap, nil
}
