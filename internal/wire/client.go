package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/obs"
)

// Client is a connection to one matrix server. It serializes requests
// (one in flight at a time), matching the request-response protocol.
// Server-reported failures come back as typed errors: the server
// encodes its error class on the wire (docs/WIRE.md, "Typed errors")
// and the client rebuilds it, so errors.Is against the datagridflow
// sentinels (ErrNotFound, ErrRetryExhausted, ...) works across the
// network.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
}

// Dial connects to a matrix server.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a matrix server honouring the context's
// deadline and cancellation.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// SetTimeout bounds every subsequent request (write + read) by d on the
// wall clock; zero restores unbounded requests. Per-request contexts
// (SubmitContext) compose with it — whichever limit is tighter wins.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip performs one framed request-response under the client lock,
// applying the context's deadline/cancellation and the client timeout to
// the connection for the duration of the exchange.
func (c *Client) roundTrip(ctx context.Context, kind byte, payload []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	deadline := time.Time{}
	if c.timeout > 0 {
		deadline = time.Now().Add(c.timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	_ = c.conn.SetDeadline(deadline) // zero clears
	stop := context.AfterFunc(ctx, func() {
		// Cancellation interrupts in-flight I/O by expiring the deadline.
		_ = c.conn.SetDeadline(time.Now())
	})
	defer stop()
	if err := WriteFrame(c.conn, kind, payload); err != nil {
		return 0, nil, c.ctxErr(ctx, err)
	}
	k, resp, err := ReadFrame(c.conn)
	if err != nil {
		return 0, nil, c.ctxErr(ctx, err)
	}
	return k, resp, nil
}

// ctxErr maps an I/O error caused by context cancellation back to the
// context's error, wrapped in the cancelled class.
func (c *Client) ctxErr(ctx context.Context, err error) error {
	if ctx.Err() == nil {
		// The connection deadline derived from the context can fire a
		// beat before the context's own timer; if the context is at its
		// deadline, wait for it to notice so the caller sees the
		// cancellation class rather than a raw i/o timeout.
		if d, ok := ctx.Deadline(); ok && time.Until(d) < time.Millisecond {
			select {
			case <-ctx.Done():
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	if ctx.Err() != nil {
		return fmt.Errorf("%w: %v", dgferr.ErrCancelled, ctx.Err())
	}
	return err
}

// Submit sends a DGL request and returns the server's response.
func (c *Client) Submit(req *dgl.Request) (*dgl.Response, error) {
	return c.SubmitContext(context.Background(), req)
}

// SubmitContext is Submit under a context: the deadline bounds the
// round trip and cancellation interrupts in-flight I/O.
func (c *Client) SubmitContext(ctx context.Context, req *dgl.Request) (*dgl.Response, error) {
	data, err := dgl.Marshal(req)
	if err != nil {
		return nil, err
	}
	kind, payload, err := c.roundTrip(ctx, KindDGL, data)
	if err != nil {
		return nil, err
	}
	if kind != KindDGL {
		return nil, errors.New("wire: unexpected frame kind in response")
	}
	return dgl.ParseResponse(payload)
}

// SubmitFlow submits a flow synchronously and returns the final status.
func (c *Client) SubmitFlow(user string, flow dgl.Flow) (*dgl.Response, error) {
	return c.Submit(dgl.NewRequest(user, "", flow))
}

// RunFlow submits a flow synchronously and returns its final status
// tree, decoding a server-side failure into a typed error — the
// convenience entry point for "run this and tell me, typed, why it
// failed".
func (c *Client) RunFlow(ctx context.Context, user string, flow dgl.Flow) (*dgl.FlowStatus, error) {
	resp, err := c.SubmitContext(ctx, dgl.NewRequest(user, "", flow))
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return resp.Status, dgferr.Decode(resp.Error)
	}
	if resp.Status == nil {
		return nil, errors.New("wire: empty response")
	}
	return resp.Status, nil
}

// SubmitAsync submits a flow asynchronously and returns the execution id
// from the acknowledgement.
func (c *Client) SubmitAsync(user string, flow dgl.Flow) (string, error) {
	resp, err := c.Submit(dgl.NewAsyncRequest(user, "", flow))
	if err != nil {
		return "", err
	}
	if resp.Error != "" {
		return "", dgferr.Decode(resp.Error)
	}
	if resp.Ack == nil || !resp.Ack.Valid {
		return "", errors.New("wire: missing acknowledgement")
	}
	return resp.Ack.ID, nil
}

// Status queries the status of an execution, flow or step id.
func (c *Client) Status(user, id string, detail bool) (*dgl.FlowStatus, error) {
	resp, err := c.Submit(dgl.NewStatusRequest(user, id, detail))
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, dgferr.Decode(resp.Error)
	}
	if resp.Status == nil {
		return nil, errors.New("wire: empty status response")
	}
	return resp.Status, nil
}

// control sends one control verb.
func (c *Client) control(op, id string) (ControlResult, error) {
	return c.controlMsg(context.Background(), Control{Op: op, ID: id})
}

func (c *Client) controlMsg(ctx context.Context, msg Control) (ControlResult, error) {
	data, err := json.Marshal(msg)
	if err != nil {
		return ControlResult{}, err
	}
	kind, payload, err := c.roundTrip(ctx, KindControl, data)
	if err != nil {
		return ControlResult{}, err
	}
	if kind != KindControl {
		return ControlResult{}, errors.New("wire: unexpected frame kind in response")
	}
	var res ControlResult
	if err := json.Unmarshal(payload, &res); err != nil {
		return ControlResult{}, err
	}
	if !res.OK && res.Error != "" {
		return res, dgferr.Decode(res.Error)
	}
	return res, nil
}

// Hello negotiates the protocol version with the server: it offers the
// client's version and returns the server's. Servers reject a major
// mismatch with an error carrying the protocol class
// (errors.Is(err, dgferr.ErrProtocol)). Calling Hello is optional —
// same-build client/server pairs interoperate without it — but
// recommended as the first exchange on a fresh connection.
func (c *Client) Hello() (serverProto string, err error) {
	res, err := c.controlMsg(context.Background(), Control{
		Op: "hello", Proto: ProtoVersion(ProtoMajor, ProtoMinor),
	})
	if err != nil {
		return "", err
	}
	return res.Proto, nil
}

// Pause suspends an execution on the server.
func (c *Client) Pause(id string) error {
	_, err := c.control("pause", id)
	return err
}

// Resume continues a paused execution.
func (c *Client) Resume(id string) error {
	_, err := c.control("resume", id)
	return err
}

// Cancel stops an execution.
func (c *Client) Cancel(id string) error {
	_, err := c.control("cancel", id)
	return err
}

// Restart re-runs a terminal execution, returning the new execution id.
func (c *Client) Restart(id string) (string, error) {
	res, err := c.control("restart", id)
	if err != nil {
		return "", err
	}
	return res.ID, nil
}

// List returns the server's tracked executions.
func (c *Client) List() ([]ExecutionInfo, error) {
	res, err := c.control("list", "")
	if err != nil {
		return nil, err
	}
	return res.Executions, nil
}

// Metrics retrieves the server engine's metrics snapshot over the
// control extension — the wire twin of the -metrics-addr HTTP endpoint.
func (c *Client) Metrics() (*obs.Snapshot, error) {
	res, err := c.control("metrics", "")
	if err != nil {
		return nil, err
	}
	if len(res.Metrics) == 0 {
		return nil, errors.New("wire: empty metrics reply")
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(res.Metrics, &snap); err != nil {
		return nil, fmt.Errorf("wire: bad metrics reply: %w", err)
	}
	return &snap, nil
}
