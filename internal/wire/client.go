package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"datagridflow/internal/dgl"
	"datagridflow/internal/obs"
)

// Client is a connection to one matrix server. It serializes requests
// (one in flight at a time), matching the request-response protocol.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a matrix server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// Submit sends a DGL request and returns the server's response.
func (c *Client) Submit(req *dgl.Request) (*dgl.Response, error) {
	data, err := dgl.Marshal(req)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.conn, KindDGL, data); err != nil {
		return nil, err
	}
	kind, payload, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if kind != KindDGL {
		return nil, errors.New("wire: unexpected frame kind in response")
	}
	return dgl.ParseResponse(payload)
}

// SubmitFlow submits a flow synchronously and returns the final status.
func (c *Client) SubmitFlow(user string, flow dgl.Flow) (*dgl.Response, error) {
	return c.Submit(dgl.NewRequest(user, "", flow))
}

// SubmitAsync submits a flow asynchronously and returns the execution id
// from the acknowledgement.
func (c *Client) SubmitAsync(user string, flow dgl.Flow) (string, error) {
	resp, err := c.Submit(dgl.NewAsyncRequest(user, "", flow))
	if err != nil {
		return "", err
	}
	if resp.Error != "" {
		return "", errors.New(resp.Error)
	}
	if resp.Ack == nil || !resp.Ack.Valid {
		return "", errors.New("wire: missing acknowledgement")
	}
	return resp.Ack.ID, nil
}

// Status queries the status of an execution, flow or step id.
func (c *Client) Status(user, id string, detail bool) (*dgl.FlowStatus, error) {
	resp, err := c.Submit(dgl.NewStatusRequest(user, id, detail))
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	if resp.Status == nil {
		return nil, errors.New("wire: empty status response")
	}
	return resp.Status, nil
}

// control sends one control verb.
func (c *Client) control(op, id string) (ControlResult, error) {
	data, err := json.Marshal(Control{Op: op, ID: id})
	if err != nil {
		return ControlResult{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.conn, KindControl, data); err != nil {
		return ControlResult{}, err
	}
	kind, payload, err := ReadFrame(c.conn)
	if err != nil {
		return ControlResult{}, err
	}
	if kind != KindControl {
		return ControlResult{}, errors.New("wire: unexpected frame kind in response")
	}
	var res ControlResult
	if err := json.Unmarshal(payload, &res); err != nil {
		return ControlResult{}, err
	}
	if !res.OK && res.Error != "" {
		return res, errors.New(res.Error)
	}
	return res, nil
}

// Pause suspends an execution on the server.
func (c *Client) Pause(id string) error {
	_, err := c.control("pause", id)
	return err
}

// Resume continues a paused execution.
func (c *Client) Resume(id string) error {
	_, err := c.control("resume", id)
	return err
}

// Cancel stops an execution.
func (c *Client) Cancel(id string) error {
	_, err := c.control("cancel", id)
	return err
}

// Restart re-runs a terminal execution, returning the new execution id.
func (c *Client) Restart(id string) (string, error) {
	res, err := c.control("restart", id)
	if err != nil {
		return "", err
	}
	return res.ID, nil
}

// List returns the server's tracked executions.
func (c *Client) List() ([]ExecutionInfo, error) {
	res, err := c.control("list", "")
	if err != nil {
		return nil, err
	}
	return res.Executions, nil
}

// Metrics retrieves the server engine's metrics snapshot over the
// control extension — the wire twin of the -metrics-addr HTTP endpoint.
func (c *Client) Metrics() (*obs.Snapshot, error) {
	res, err := c.control("metrics", "")
	if err != nil {
		return nil, err
	}
	if len(res.Metrics) == 0 {
		return nil, errors.New("wire: empty metrics reply")
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(res.Metrics, &snap); err != nil {
		return nil, fmt.Errorf("wire: bad metrics reply: %w", err)
	}
	return &snap, nil
}
