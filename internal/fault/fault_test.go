package fault

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/obs"
	"datagridflow/internal/sim"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	in := Plan{
		Seed: 42,
		Events: []Event{
			{At: 30 * time.Second, Target: "disk1", Kind: ResourceDown, Duration: 5 * time.Minute},
			{Target: "disk2", Kind: ResourceFlaky, Prob: 0.25},
			{At: time.Hour, Target: "matrixA", Kind: PeerCrash, Duration: time.Minute},
			{Target: "matrixB", Kind: ConnDrop, Prob: 0.1},
			{Target: "tape", Kind: Latency, Delay: 2 * time.Second},
		},
	}
	data, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Seed != in.Seed || len(out.Events) != len(in.Events) {
		t.Fatalf("round trip = %+v", out)
	}
	for i := range in.Events {
		if in.Events[i] != out.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, in.Events[i], out.Events[i])
		}
	}
}

func TestParsePlanHandWritten(t *testing.T) {
	// The documented hand-writable form: durations as strings.
	doc := `{"seed": 7, "events": [
		{"at": "30s", "target": "disk1", "kind": "resource-down", "duration": "5m"},
		{"target": "disk1", "kind": "resource-flaky", "prob": 0.5}
	]}`
	p, err := ParsePlan([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Events[0].At != 30*time.Second || p.Events[0].Duration != 5*time.Minute {
		t.Errorf("parsed event = %+v", p.Events[0])
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Events: []Event{{Kind: ResourceDown}}},                              // no target
		{Events: []Event{{Target: "x", Kind: "meteor-strike"}}},              // unknown kind
		{Events: []Event{{Target: "x", Kind: ResourceFlaky, Prob: 1.5}}},     // prob out of range
		{Events: []Event{{Target: "x", Kind: ConnDrop, Prob: -0.1}}},         // prob out of range
		{Events: []Event{{Target: "x", Kind: ResourceDown, At: -time.Hour}}}, // negative offset
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, dgferr.ErrInvalid) {
			t.Errorf("plan %d: Validate = %v, want ErrInvalid", i, err)
		}
		if _, err := NewInjector(sim.NewVirtualClock(sim.Epoch), p); err == nil {
			t.Errorf("plan %d: NewInjector accepted invalid plan", i)
		}
	}
}

func TestOutageWindow(t *testing.T) {
	clock := sim.NewVirtualClock(sim.Epoch)
	in, err := NewInjector(clock, Plan{Events: []Event{
		{At: time.Minute, Target: "disk1", Kind: ResourceDown, Duration: time.Minute},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckOp("disk1"); err != nil {
		t.Errorf("before window: %v", err)
	}
	clock.Advance(90 * time.Second)
	if err := in.CheckOp("disk1"); !errors.Is(err, dgferr.ErrResourceDown) {
		t.Errorf("inside window: %v, want ErrResourceDown", err)
	}
	if !in.Down("disk1") {
		t.Errorf("Down = false inside window")
	}
	if err := in.CheckOp("disk2"); err != nil {
		t.Errorf("other target faulted: %v", err)
	}
	clock.Advance(time.Minute)
	if err := in.CheckOp("disk1"); err != nil {
		t.Errorf("after window: %v", err)
	}
	if in.Down("disk1") {
		t.Errorf("Down = true after window")
	}
}

func TestOpenEndedWindow(t *testing.T) {
	clock := sim.NewVirtualClock(sim.Epoch)
	in, err := NewInjector(clock, Plan{Events: []Event{
		{Target: "disk1", Kind: ResourceDown}, // Duration 0: holds forever
	}})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(1000 * time.Hour)
	if err := in.CheckOp("disk1"); !errors.Is(err, dgferr.ErrResourceDown) {
		t.Errorf("open-ended window lapsed: %v", err)
	}
}

func TestFlakyDeterminism(t *testing.T) {
	// The same seeded plan replayed against the same operation sequence
	// must produce the identical fault sequence.
	run := func(seed int64) []bool {
		in, err := NewInjector(sim.NewVirtualClock(sim.Epoch), Plan{
			Seed:   seed,
			Events: []Event{{Target: "disk1", Kind: ResourceFlaky, Prob: 0.3}},
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.CheckOp("disk1") != nil
		}
		return out
	}
	a, b := run(7), run(7)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: fault sequences diverge under the same seed", i)
		}
		if a[i] {
			fired++
		}
	}
	// Statistically ~60/200 at prob 0.3; fail only on gross miscalibration.
	if fired < 30 || fired > 90 {
		t.Errorf("prob 0.3 fired %d/200 times", fired)
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced the identical 200-op fault sequence")
	}
}

func TestFlakyProbEdges(t *testing.T) {
	clock := sim.NewVirtualClock(sim.Epoch)
	in, _ := NewInjector(clock, Plan{Events: []Event{
		{Target: "never", Kind: ResourceFlaky, Prob: 0},
		{Target: "always", Kind: ResourceFlaky, Prob: 1},
	}})
	for i := 0; i < 50; i++ {
		if err := in.CheckOp("never"); err != nil {
			t.Fatalf("prob 0 fired: %v", err)
		}
		if err := in.CheckOp("always"); err == nil {
			t.Fatalf("prob 1 did not fire")
		}
	}
}

func TestLatencyChargesClock(t *testing.T) {
	clock := sim.NewVirtualClock(sim.Epoch)
	in, err := NewInjector(clock, Plan{Events: []Event{
		{Target: "disk1", Kind: Latency, Delay: 3 * time.Second},
	}})
	if err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	if err := in.CheckOp("disk1"); err != nil {
		t.Fatal(err)
	}
	if got := clock.Now().Sub(before); got != 3*time.Second {
		t.Errorf("latency charged %v, want 3s", got)
	}
}

func TestConnFault(t *testing.T) {
	clock := sim.NewVirtualClock(sim.Epoch)
	in, err := NewInjector(clock, Plan{Events: []Event{
		{At: time.Minute, Target: "matrixA", Kind: PeerCrash, Duration: time.Minute},
		{Target: "matrixB", Kind: Latency, Delay: time.Second},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if drop, _ := in.ConnFault("matrixA"); drop {
		t.Errorf("dropped before crash window")
	}
	clock.Advance(90 * time.Second)
	if drop, _ := in.ConnFault("matrixA"); !drop {
		t.Errorf("survived inside crash window")
	}
	if !in.Down("matrixA") {
		t.Errorf("Down = false during peer crash")
	}
	clock.Advance(time.Minute)
	if drop, _ := in.ConnFault("matrixA"); drop {
		t.Errorf("dropped after restart")
	}
	if drop, delay := in.ConnFault("matrixB"); drop || delay != time.Second {
		t.Errorf("latency fault = %v %v", drop, delay)
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if err := in.CheckOp("disk1"); err != nil {
		t.Errorf("nil CheckOp = %v", err)
	}
	if drop, delay := in.ConnFault("x"); drop || delay != 0 {
		t.Errorf("nil ConnFault = %v %v", drop, delay)
	}
	if in.Down("x") {
		t.Errorf("nil Down = true")
	}
}

func TestInjectionMetrics(t *testing.T) {
	clock := sim.NewVirtualClock(sim.Epoch)
	in, err := NewInjector(clock, Plan{Events: []Event{
		{Target: "disk1", Kind: ResourceDown},
	}})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	in.SetObs(reg)
	_ = in.CheckOp("disk1")
	_ = in.CheckOp("disk1")
	if got := reg.Counter("fault_injections_total", "kind", string(ResourceDown)).Value(); got != 2 {
		t.Errorf("fault_injections_total = %v, want 2", got)
	}
}
