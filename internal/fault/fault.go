// Package fault is the deterministic fault-injection plane of the
// reproduction. The paper's whole premise is that datagridflows are
// *long-run* processes that outlive transient resource, network and
// server failures; this package makes those failures happen on demand,
// reproducibly, against the simulation substrate.
//
// A Plan is a seeded schedule of fault events against named targets:
// resource outage windows, flaky windows (per-operation error
// probability), wire-level connection drops, peer crash/restart windows
// and induced latency. An Injector evaluates the plan against the sim
// clock; the DGMS consults it on every storage operation
// (dgms.Options.Fault / Grid.SetFault) and wire servers consult it per
// frame (wire.Server.SetFault).
//
// Determinism: windowed faults depend only on the clock, and
// probabilistic faults hash (seed, target, per-target operation ordinal)
// — so a sequential workload replayed under the same plan produces the
// identical fault sequence, which the fault-plan determinism test
// asserts. See docs/FAULTS.md for the schedule format and semantics.
package fault

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/obs"
	"datagridflow/internal/sim"
)

// Kind names a fault type.
type Kind string

// Fault kinds.
const (
	// ResourceDown takes the target storage resource offline for the
	// window: every operation against it fails with ErrResourceDown.
	ResourceDown Kind = "resource-down"
	// ResourceFlaky makes operations against the target fail with
	// probability Prob during the window.
	ResourceFlaky Kind = "resource-flaky"
	// PeerCrash crashes the target wire server for the window: the
	// server drops every connection that sends a frame, simulating a
	// matrixd crash; after the window it accepts again (restart).
	PeerCrash Kind = "peer-crash"
	// ConnDrop drops wire connections to the target with probability
	// Prob per frame during the window.
	ConnDrop Kind = "conn-drop"
	// Latency adds Delay of induced latency to every operation or frame
	// against the target during the window.
	Latency Kind = "latency"
)

// Event is one scheduled fault: at offset At from the injector's epoch,
// the fault Kind applies to Target for Duration.
type Event struct {
	// At is the window start, as an offset from the injector epoch.
	At time.Duration `json:"-"`
	// Target names what fails: a resource name for storage faults, a
	// server/peer name for wire faults.
	Target string `json:"target"`
	// Kind selects the fault type.
	Kind Kind `json:"kind"`
	// Duration is the window length. Zero means open-ended (the fault
	// holds from At onward).
	Duration time.Duration `json:"-"`
	// Prob is the per-operation failure probability for ResourceFlaky
	// and ConnDrop.
	Prob float64 `json:"prob,omitempty"`
	// Delay is the induced latency per operation for Latency events.
	Delay time.Duration `json:"-"`
}

// active reports whether the event's window covers the offset t.
func (e *Event) active(t time.Duration) bool {
	if t < e.At {
		return false
	}
	return e.Duration == 0 || t < e.At+e.Duration
}

// eventJSON is the wire/file form of Event: durations as strings
// ("30s", "5m") so plans are hand-writable.
type eventJSON struct {
	At       string  `json:"at"`
	Target   string  `json:"target"`
	Kind     Kind    `json:"kind"`
	Duration string  `json:"duration,omitempty"`
	Prob     float64 `json:"prob,omitempty"`
	Delay    string  `json:"delay,omitempty"`
}

// MarshalJSON renders the event with human-readable durations.
func (e Event) MarshalJSON() ([]byte, error) {
	out := eventJSON{
		At: e.At.String(), Target: e.Target, Kind: e.Kind, Prob: e.Prob,
	}
	if e.Duration != 0 {
		out.Duration = e.Duration.String()
	}
	if e.Delay != 0 {
		out.Delay = e.Delay.String()
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses the human-readable event form.
func (e *Event) UnmarshalJSON(data []byte) error {
	var in eventJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	parse := func(s, field string) (time.Duration, error) {
		if s == "" {
			return 0, nil
		}
		d, err := time.ParseDuration(s)
		if err != nil {
			return 0, fmt.Errorf("fault: event %s: bad %s %q: %w", in.Target, field, s, err)
		}
		return d, nil
	}
	var err error
	if e.At, err = parse(in.At, "at"); err != nil {
		return err
	}
	if e.Duration, err = parse(in.Duration, "duration"); err != nil {
		return err
	}
	if e.Delay, err = parse(in.Delay, "delay"); err != nil {
		return err
	}
	e.Target, e.Kind, e.Prob = in.Target, in.Kind, in.Prob
	return nil
}

// Plan is a reproducible fault schedule: a seed plus events. The same
// plan against the same workload yields the same fault sequence.
type Plan struct {
	Seed   int64   `json:"seed"`
	Events []Event `json:"events"`
}

// Validate checks the plan's events for well-formedness.
func (p *Plan) Validate() error {
	for i, e := range p.Events {
		if e.Target == "" {
			return fmt.Errorf("%w: fault event %d has no target", dgferr.ErrInvalid, i)
		}
		switch e.Kind {
		case ResourceDown, PeerCrash, Latency:
		case ResourceFlaky, ConnDrop:
			if e.Prob < 0 || e.Prob > 1 {
				return fmt.Errorf("%w: fault event %d: prob %v outside [0,1]", dgferr.ErrInvalid, i, e.Prob)
			}
		default:
			return fmt.Errorf("%w: fault event %d: unknown kind %q", dgferr.ErrInvalid, i, e.Kind)
		}
		if e.At < 0 || e.Duration < 0 || e.Delay < 0 {
			return fmt.Errorf("%w: fault event %d: negative duration", dgferr.ErrInvalid, i)
		}
	}
	return nil
}

// ParsePlan decodes and validates a JSON plan document.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: fault plan: %v", dgferr.ErrInvalid, err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Injector evaluates a Plan against a clock. It is safe for concurrent
// use. The zero value is not usable; construct with NewInjector.
type Injector struct {
	clock sim.Clock
	epoch time.Time
	plan  Plan
	obs   *obs.Registry

	mu       sync.Mutex
	ordinals map[string]uint64 // per-target operation counters
}

// NewInjector builds an injector whose epoch (the zero point of event
// offsets) is the clock's current time. The plan is validated.
func NewInjector(clock sim.Clock, plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		clock:    clock,
		epoch:    clock.Now(),
		plan:     plan,
		ordinals: make(map[string]uint64),
	}, nil
}

// SetObs directs the injector's metrics (fault_injections_total) into a
// registry. The DGMS wires this to the grid registry on SetFault.
func (in *Injector) SetObs(r *obs.Registry) {
	in.mu.Lock()
	in.obs = r
	in.mu.Unlock()
}

// Plan returns a copy of the injector's schedule.
func (in *Injector) Plan() Plan {
	out := Plan{Seed: in.plan.Seed, Events: make([]Event, len(in.plan.Events))}
	copy(out.Events, in.plan.Events)
	return out
}

// count bumps the injection counter for a fired fault.
func (in *Injector) count(kind Kind) {
	in.mu.Lock()
	r := in.obs
	in.mu.Unlock()
	if r != nil {
		r.Counter("fault_injections_total", "kind", string(kind)).Inc()
	}
}

// ordinal returns the 1-based index of this operation against target —
// the deterministic replacement for an RNG draw sequence.
func (in *Injector) ordinal(target string) uint64 {
	in.mu.Lock()
	in.ordinals[target]++
	n := in.ordinals[target]
	in.mu.Unlock()
	return n
}

// roll makes the deterministic probabilistic decision for the n-th
// operation on target: hash(seed, target, n) scaled to [0,1) < prob.
func (in *Injector) roll(target string, n uint64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(in.plan.Seed) >> (8 * i))
		buf[8+i] = byte(n >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(target))
	return float64(h.Sum64()>>11)/float64(1<<53) < prob
}

// CheckOp evaluates the plan for one storage operation against target.
// It returns a typed error (dgferr.ErrResourceDown) if a fault fires,
// charging induced latency to the clock first. A nil *Injector (no plan
// attached) never fires.
func (in *Injector) CheckOp(target string) error {
	if in == nil {
		return nil
	}
	t := in.clock.Now().Sub(in.epoch)
	var flaky *Event
	for i := range in.plan.Events {
		e := &in.plan.Events[i]
		if e.Target != target || !e.active(t) {
			continue
		}
		switch e.Kind {
		case ResourceDown:
			in.count(ResourceDown)
			return fmt.Errorf("%w: injected outage on %s", dgferr.ErrResourceDown, target)
		case ResourceFlaky:
			if flaky == nil || e.Prob > flaky.Prob {
				flaky = e
			}
		case Latency:
			in.count(Latency)
			in.clock.Sleep(e.Delay)
		}
	}
	if flaky != nil && in.roll(target, in.ordinal(target), flaky.Prob) {
		in.count(ResourceFlaky)
		return fmt.Errorf("%w: injected flake on %s", dgferr.ErrResourceDown, target)
	}
	return nil
}

// ConnFault evaluates the plan for one wire frame against target (a
// server or peer name). drop reports the connection should be severed
// (peer crash window or probabilistic connection drop); delay is induced
// latency the server charges before handling the frame.
func (in *Injector) ConnFault(target string) (drop bool, delay time.Duration) {
	if in == nil {
		return false, 0
	}
	t := in.clock.Now().Sub(in.epoch)
	for i := range in.plan.Events {
		e := &in.plan.Events[i]
		if e.Target != target || !e.active(t) {
			continue
		}
		switch e.Kind {
		case PeerCrash:
			in.count(PeerCrash)
			return true, 0
		case ConnDrop:
			if in.roll(target, in.ordinal(target), e.Prob) {
				in.count(ConnDrop)
				return true, 0
			}
		case Latency:
			in.count(Latency)
			delay += e.Delay
		}
	}
	return false, delay
}

// Down reports whether target is inside a ResourceDown or PeerCrash
// window right now — introspection for schedulers and tests.
func (in *Injector) Down(target string) bool {
	if in == nil {
		return false
	}
	t := in.clock.Now().Sub(in.epoch)
	for i := range in.plan.Events {
		e := &in.plan.Events[i]
		if e.Target == target && e.active(t) && (e.Kind == ResourceDown || e.Kind == PeerCrash) {
			return true
		}
	}
	return false
}
