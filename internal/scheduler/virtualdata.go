package scheduler

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
)

// Catalog is the virtual-data catalog (the GriPhyN Chimera analog): it
// records which transformation, applied to which inputs, derived which
// output. A recorded derivation whose output still exists lets the
// broker skip recomputation — "If the required output data is already
// available (virtual data), it need not be derived again."
type Catalog struct {
	mu sync.RWMutex
	// byKey maps derivation keys to output paths.
	byKey map[string]string
	// byOutput maps output paths to their derivation keys (for
	// invalidation when data is deleted).
	byOutput map[string]string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byKey: make(map[string]string), byOutput: make(map[string]string)}
}

// key derives the catalog key for (transformation, inputs). Input order
// is irrelevant: the same data through the same code is the same
// derivation.
func key(transformation string, inputs []string) string {
	sorted := append([]string(nil), inputs...)
	sort.Strings(sorted)
	h := sha256.Sum256([]byte(transformation + "\x00" + strings.Join(sorted, "\x00")))
	return hex.EncodeToString(h[:16])
}

// Record notes that output was derived from inputs by transformation.
func (c *Catalog) Record(transformation string, inputs []string, output string) {
	k := key(transformation, inputs)
	c.mu.Lock()
	c.byKey[k] = output
	c.byOutput[output] = k
	c.mu.Unlock()
}

// Lookup returns the output previously derived for (transformation,
// inputs), if recorded.
func (c *Catalog) Lookup(transformation string, inputs []string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out, ok := c.byKey[key(transformation, inputs)]
	return out, ok
}

// Has reports whether the exact derivation (including the output path) is
// recorded.
func (c *Catalog) Has(transformation string, inputs []string, output string) bool {
	got, ok := c.Lookup(transformation, inputs)
	return ok && got == output
}

// Invalidate removes the derivation that produced output (call when the
// output is deleted from the grid).
func (c *Catalog) Invalidate(output string) {
	c.mu.Lock()
	if k, ok := c.byOutput[output]; ok {
		delete(c.byKey, k)
		delete(c.byOutput, output)
	}
	c.mu.Unlock()
}

// Len returns the number of recorded derivations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byKey)
}
