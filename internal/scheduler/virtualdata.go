package scheduler

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
)

// Catalog is the virtual-data catalog (the GriPhyN Chimera analog): it
// records which transformation, applied to which inputs, derived which
// output. A recorded derivation whose output still exists lets the
// broker skip recomputation — "If the required output data is already
// available (virtual data), it need not be derived again."
type Catalog struct {
	mu sync.RWMutex
	// byKey maps derivation keys to output paths.
	byKey map[string]string
	// byOutput maps output paths to the set of derivation keys that
	// produced them (for invalidation when data is deleted). A set, not
	// a single key: two transformations may legally derive the same
	// output path, and deleting that path must invalidate both.
	byOutput map[string]map[string]struct{}
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byKey: make(map[string]string), byOutput: make(map[string]map[string]struct{})}
}

// key derives the catalog key for (transformation, inputs). Input order
// is irrelevant: the same data through the same code is the same
// derivation.
func key(transformation string, inputs []string) string {
	sorted := append([]string(nil), inputs...)
	sort.Strings(sorted)
	h := sha256.Sum256([]byte(transformation + "\x00" + strings.Join(sorted, "\x00")))
	return hex.EncodeToString(h[:16])
}

// Record notes that output was derived from inputs by transformation.
// Re-recording a key with a new output path retires the stale reverse
// entry, so invalidating the old path can never delete the live
// derivation.
func (c *Catalog) Record(transformation string, inputs []string, output string) {
	k := key(transformation, inputs)
	c.mu.Lock()
	if old, ok := c.byKey[k]; ok && old != output {
		if set := c.byOutput[old]; set != nil {
			delete(set, k)
			if len(set) == 0 {
				delete(c.byOutput, old)
			}
		}
	}
	c.byKey[k] = output
	set := c.byOutput[output]
	if set == nil {
		set = make(map[string]struct{})
		c.byOutput[output] = set
	}
	set[k] = struct{}{}
	c.mu.Unlock()
}

// Lookup returns the output previously derived for (transformation,
// inputs), if recorded.
func (c *Catalog) Lookup(transformation string, inputs []string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out, ok := c.byKey[key(transformation, inputs)]
	return out, ok
}

// Has reports whether the exact derivation (including the output path) is
// recorded.
func (c *Catalog) Has(transformation string, inputs []string, output string) bool {
	got, ok := c.Lookup(transformation, inputs)
	return ok && got == output
}

// Invalidate removes every derivation that produced output (call when
// the output is deleted from the grid). A key is only dropped if it
// still points at this output — a derivation re-recorded against a new
// path since then survives its old path's deletion.
func (c *Catalog) Invalidate(output string) {
	c.mu.Lock()
	for k := range c.byOutput[output] {
		if c.byKey[k] == output {
			delete(c.byKey, k)
		}
	}
	delete(c.byOutput, output)
	c.mu.Unlock()
}

// Len returns the number of recorded derivations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byKey)
}
