package scheduler

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/obs"
)

func TestAdmissionImmediate(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAdmission(2, 4, reg)
	if err := a.Acquire(context.Background(), "u1"); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(context.Background(), "u2"); err != nil {
		t.Fatal(err)
	}
	if got := a.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	a.Release()
	a.Release()
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
	if got := reg.Counter("sched_admitted_total").Value(); got != 2 {
		t.Fatalf("sched_admitted_total = %d, want 2", got)
	}
}

func TestAdmissionQueueFullRejects(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAdmission(1, 1, reg)
	if err := a.Acquire(context.Background(), "hog"); err != nil {
		t.Fatal(err)
	}
	// One waiter fits the queue...
	done := make(chan error, 1)
	go func() { done <- a.Acquire(context.Background(), "hog") }()
	waitFor(t, func() bool { return a.Waiting() == 1 })
	// ...the next is shed with a typed capacity error.
	err := a.Acquire(context.Background(), "hog")
	if !errors.Is(err, ErrAdmission) || !errors.Is(err, dgferr.ErrCapacity) {
		t.Fatalf("over-queue error = %v, want ErrAdmission (capacity class)", err)
	}
	if got := reg.Counter("sched_rejected_total").Value(); got != 1 {
		t.Fatalf("sched_rejected_total = %d, want 1", got)
	}
	a.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	a.Release()
}

func TestAdmissionContextCancel(t *testing.T) {
	a := NewAdmission(1, 8, obs.NewRegistry())
	if err := a.Acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Acquire(ctx, "b") }()
	waitFor(t, func() bool { return a.Waiting() == 1 })
	cancel()
	err := <-done
	if !errors.Is(err, dgferr.ErrCancelled) {
		t.Fatalf("cancelled waiter error = %v, want cancelled class", err)
	}
	if got := a.Waiting(); got != 0 {
		t.Fatalf("waiting after cancel = %d, want 0", got)
	}
	// The cancelled waiter must not absorb the next release.
	a.Release()
	if err := a.Acquire(context.Background(), "c"); err != nil {
		t.Fatalf("post-cancel acquire: %v", err)
	}
	a.Release()
}

// TestAdmissionFairness saturates the pool with one chatty user, then
// checks a second user's single request is granted ahead of the chatty
// user's backlog (round-robin across users, not global FIFO).
func TestAdmissionFairness(t *testing.T) {
	a := NewAdmission(1, 64, obs.NewRegistry())
	if err := a.Acquire(context.Background(), "chatty"); err != nil {
		t.Fatal(err)
	}
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	admit := func(user string) {
		defer wg.Done()
		if err := a.Acquire(context.Background(), user); err != nil {
			t.Errorf("acquire %s: %v", user, err)
			return
		}
		mu.Lock()
		order = append(order, user)
		mu.Unlock()
		a.Release()
	}
	// Chatty queues 8 requests first; quiet queues 1 after.
	wg.Add(8)
	for i := 0; i < 8; i++ {
		go admit("chatty")
	}
	waitFor(t, func() bool { return a.Waiting() == 8 })
	wg.Add(1)
	go admit("quiet")
	waitFor(t, func() bool { return a.Waiting() == 9 })

	a.Release() // free the slot; the queue drains round-robin
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	pos := -1
	for i, u := range order {
		if u == "quiet" {
			pos = i
		}
	}
	// Round-robin alternates chatty/quiet, so quiet lands at index 0 or
	// 1 of 9 — never behind the whole chatty backlog.
	if pos < 0 || pos > 1 {
		t.Fatalf("quiet user granted at position %d of %v, want <= 1", pos, order)
	}
}

// TestAdmissionConcurrencyBound hammers the scheduler from many
// goroutines and asserts the concurrency ceiling is never pierced.
func TestAdmissionConcurrencyBound(t *testing.T) {
	const limit = 4
	a := NewAdmission(limit, 1024, obs.NewRegistry())
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := string(rune('a' + i%8))
			for j := 0; j < 20; j++ {
				if err := a.Acquire(context.Background(), user); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				cur.Add(-1)
				a.Release()
			}
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > limit {
		t.Fatalf("peak concurrency %d exceeds capacity %d", p, limit)
	}
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight at rest = %d, want 0", got)
	}
}

func TestAdmissionTryAcquire(t *testing.T) {
	a := NewAdmission(1, 4, obs.NewRegistry())
	if !a.TryAcquire() {
		t.Fatal("first TryAcquire refused")
	}
	if a.TryAcquire() {
		t.Fatal("second TryAcquire admitted past capacity")
	}
	a.Release()
	if !a.TryAcquire() {
		t.Fatal("TryAcquire refused after release")
	}
	a.Release()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
