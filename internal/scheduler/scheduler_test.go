package scheduler

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/infra"
	"datagridflow/internal/matrix"
	"datagridflow/internal/provenance"
	"datagridflow/internal/sim"
	"datagridflow/internal/vfs"
)

// testRig builds a two-domain grid: data lives at sdsc; ncsa has the
// faster cluster but must pull inputs across a slow link.
func testRig(t testing.TB) (*dgms.Grid, *Broker) {
	t.Helper()
	g := dgms.New(dgms.Options{})
	desc := &infra.Description{
		Domains: []infra.Domain{
			{
				Name:    "sdsc",
				Storage: []infra.Storage{{Name: "sdsc-disk", Class: "disk"}},
				Compute: []infra.Compute{{Name: "sdsc-cluster", Nodes: 4, Power: 1.0}},
			},
			{
				Name:    "ncsa",
				Storage: []infra.Storage{{Name: "ncsa-disk", Class: "disk"}},
				Compute: []infra.Compute{{Name: "ncsa-cluster", Nodes: 4, Power: 2.0}},
			},
		},
		Links: []infra.Link{{From: "sdsc", To: "ncsa", BandwidthMBps: 1, LatencyMs: 50, Symmetric: true}},
	}
	nodes, err := desc.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid/in"); err != nil {
		t.Fatal(err)
	}
	return g, NewBroker(g, nodes, 42)
}

func ingest(t testing.TB, g *dgms.Grid, path string, size int64, res string) {
	t.Helper()
	if err := g.Ingest(g.Admin(), path, size, nil, res); err != nil {
		t.Fatal(err)
	}
}

func TestPlanPrefersDataLocality(t *testing.T) {
	g, b := testRig(t)
	// 1 GiB input at sdsc: moving it over a 1 MiB/s link costs ~1000 s,
	// far more than the 2× compute advantage at ncsa.
	ingest(t, g, "/grid/in/big", 1<<30, "sdsc-disk")
	task := &Task{Name: "t", Transformation: "sum", CPUSeconds: 100, Inputs: []string{"/grid/in/big"}}
	chosen, cands, err := b.Plan(task, CostBased)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Node.Name != "sdsc-cluster" {
		t.Errorf("chose %s, want sdsc-cluster (data locality)", chosen.Node.Name)
	}
	if len(cands) != 2 || cands[0].Estimate.Total() > cands[1].Estimate.Total() {
		t.Errorf("candidates unsorted: %+v", cands)
	}
	if chosen.Estimate.DataMoved != 0 {
		t.Errorf("local placement moved %d bytes", chosen.Estimate.DataMoved)
	}
	if chosen.InputSources["/grid/in/big"] != "sdsc-disk" {
		t.Errorf("input source = %v", chosen.InputSources)
	}
}

func TestPlanPrefersFastComputeForCPUBound(t *testing.T) {
	g, b := testRig(t)
	// Tiny input, huge compute: the 2× ncsa cluster wins despite the
	// transfer.
	ingest(t, g, "/grid/in/small", 1024, "sdsc-disk")
	task := &Task{Name: "t", Transformation: "mc", CPUSeconds: 10000, Inputs: []string{"/grid/in/small"}}
	chosen, _, err := b.Plan(task, CostBased)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Node.Name != "ncsa-cluster" {
		t.Errorf("chose %s, want ncsa-cluster (compute bound)", chosen.Node.Name)
	}
	if chosen.Estimate.Compute != 5000*time.Second {
		t.Errorf("compute estimate = %v", chosen.Estimate.Compute)
	}
}

func TestReplicaSelectionInPlanning(t *testing.T) {
	g, b := testRig(t)
	ingest(t, g, "/grid/in/data", 100<<20, "sdsc-disk")
	if err := g.Replicate(g.Admin(), "/grid/in/data", "ncsa-disk"); err != nil {
		t.Fatal(err)
	}
	// With replicas in both domains, each cluster reads locally; the
	// faster cluster wins.
	task := &Task{Name: "t", Transformation: "x", CPUSeconds: 100, Inputs: []string{"/grid/in/data"}}
	chosen, _, err := b.Plan(task, CostBased)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Node.Name != "ncsa-cluster" || chosen.InputSources["/grid/in/data"] != "ncsa-disk" {
		t.Errorf("replica selection: node=%s sources=%v", chosen.Node.Name, chosen.InputSources)
	}
	if chosen.Estimate.DataMoved != 0 {
		t.Errorf("moved %d bytes despite local replica", chosen.Estimate.DataMoved)
	}
}

func TestPlanErrors(t *testing.T) {
	g, b := testRig(t)
	task := &Task{Name: "t", Inputs: []string{"/grid/in/missing"}}
	if _, _, err := b.Plan(task, CostBased); !errors.Is(err, ErrNoInput) {
		t.Errorf("missing input: %v", err)
	}
	empty := NewBroker(g, nil, 1)
	if _, _, err := empty.Plan(&Task{Name: "t"}, CostBased); !errors.Is(err, ErrNoNodes) {
		t.Errorf("no nodes: %v", err)
	}
	// All replicas offline.
	ingest(t, g, "/grid/in/dead", 10, "sdsc-disk")
	res, _ := g.Resource("sdsc-disk")
	res.SetOffline(true)
	if _, _, err := b.Plan(&Task{Name: "t", Inputs: []string{"/grid/in/dead"}}, CostBased); !errors.Is(err, ErrNoInput) {
		t.Errorf("offline replicas: %v", err)
	}
	res.SetOffline(false)
}

func TestStrategies(t *testing.T) {
	g, b := testRig(t)
	ingest(t, g, "/grid/in/f", 1<<30, "sdsc-disk")
	task := &Task{Name: "t", Transformation: "x", CPUSeconds: 10, Inputs: []string{"/grid/in/f"}}
	// Static always lands on the first node in inventory order.
	chosen, _, err := b.Plan(task, StaticPlacement)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Node.Name != "sdsc-cluster" {
		t.Errorf("static chose %s", chosen.Node.Name)
	}
	// Random is reproducible for a fixed seed.
	b2 := NewBroker(g, b.nodes, 7)
	b3 := NewBroker(g, b.nodes, 7)
	for i := 0; i < 5; i++ {
		p2, _, err2 := b2.Plan(task, RandomPlacement)
		p3, _, err3 := b3.Plan(task, RandomPlacement)
		if err2 != nil || err3 != nil || p2.Node.Name != p3.Node.Name {
			t.Errorf("random not reproducible at %d", i)
		}
	}
	for _, s := range []Strategy{CostBased, RandomPlacement, StaticPlacement, Strategy(9)} {
		if s.String() == "" {
			t.Errorf("empty strategy name")
		}
	}
}

func TestExecuteRegistersOutputAndDerivation(t *testing.T) {
	g, b := testRig(t)
	ingest(t, g, "/grid/in/raw", 10<<20, "sdsc-disk")
	task := &Task{
		Name: "derive", Transformation: "fft", CPUSeconds: 50,
		Inputs: []string{"/grid/in/raw"}, Output: "/grid/in/spectrum", OutputSize: 5 << 20,
	}
	chosen, err := b.Execute(task, CostBased, "")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Namespace().Exists("/grid/in/spectrum") {
		t.Errorf("output not registered")
	}
	// Output landed in the executing node's domain.
	reps, _ := g.Namespace().Replicas("/grid/in/spectrum")
	res, _ := g.Resource(reps[0].Resource)
	if res.Domain() != chosen.Node.Domain {
		t.Errorf("output in %s, node in %s", res.Domain(), chosen.Node.Domain)
	}
	if !b.Catalog().Has("fft", []string{"/grid/in/raw"}, "/grid/in/spectrum") {
		t.Errorf("derivation not recorded")
	}
	executed, skipped := b.Stats()
	if executed != 1 || skipped != 0 {
		t.Errorf("stats = %d, %d", executed, skipped)
	}
	// Re-executing the same derivation is a virtual-data hit.
	if _, err := b.Execute(task, CostBased, ""); err != nil {
		t.Fatal(err)
	}
	executed, skipped = b.Stats()
	if executed != 1 || skipped != 1 {
		t.Errorf("after rerun: %d, %d", executed, skipped)
	}
	if n := g.Provenance().Count(provenance.Filter{Action: "task.virtual-data-hit"}); n != 1 {
		t.Errorf("virtual-data provenance = %d", n)
	}
	// Deleting the output invalidates the shortcut: next run recomputes.
	if err := g.Delete(g.Admin(), "/grid/in/spectrum"); err != nil {
		t.Fatal(err)
	}
	b.Catalog().Invalidate("/grid/in/spectrum")
	if _, err := b.Execute(task, CostBased, ""); err != nil {
		t.Fatal(err)
	}
	executed, _ = b.Stats()
	if executed != 2 {
		t.Errorf("recompute after invalidation: executed = %d", executed)
	}
}

func TestExecuteQueueing(t *testing.T) {
	g, b := testRig(t)
	ingest(t, g, "/grid/in/x", 1024, "sdsc-disk")
	start := g.Clock().Now()
	// 12 CPU-bound tasks on 4+4 nodes: some queue.
	for i := 0; i < 12; i++ {
		task := &Task{
			Name: fmt.Sprintf("t%d", i), Transformation: "sim", CPUSeconds: 3600,
			Inputs: []string{"/grid/in/x"},
		}
		if _, err := b.Execute(task, CostBased, ""); err != nil {
			t.Fatal(err)
		}
	}
	ms := b.Makespan(start)
	if ms <= 0 {
		t.Fatalf("makespan = %v", ms)
	}
	// 12 tasks × 3600 ref-seconds across 4 slots at 1× plus 4 at 2× —
	// perfectly packed lower bound is 12*3600/(4*1+4*2) = 3600 s; the
	// greedy broker should be within 3× of that and beyond 0.
	if ms < time.Hour/2 || ms > 6*time.Hour {
		t.Errorf("makespan out of plausible band: %v", ms)
	}
	// Queue wait visible to subsequent plans.
	task := &Task{Name: "late", Transformation: "sim", CPUSeconds: 1, Inputs: []string{"/grid/in/x"}}
	chosen, _, err := b.Plan(task, CostBased)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Estimate.Queue <= 0 {
		t.Errorf("no queue wait after saturating the clusters")
	}
}

func TestExecuteNoStorageForOutput(t *testing.T) {
	g := dgms.New(dgms.Options{})
	if err := g.RegisterResource(vfs.New("d", "sdsc", vfs.Disk, 0)); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateCollectionAll(g.Admin(), "/grid"); err != nil {
		t.Fatal(err)
	}
	ingest(t, g, "/grid/x", 10, "d")
	// Compute domain has no storage at all.
	b := NewBroker(g, []infra.ComputeNode{{Name: "c", Domain: "empty", Nodes: 1, Power: 1}}, 1)
	task := &Task{Name: "t", Transformation: "x", CPUSeconds: 1,
		Inputs: []string{"/grid/x"}, Output: "/grid/out", OutputSize: 10}
	if _, err := b.Execute(task, CostBased, ""); err == nil {
		t.Errorf("no-storage execute accepted")
	}
	// Explicit output resource rescues it.
	if _, err := b.Execute(task, CostBased, "d"); err != nil {
		t.Errorf("explicit output resource: %v", err)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	c.Record("fft", []string{"/a", "/b"}, "/out")
	// Input order irrelevant.
	if out, ok := c.Lookup("fft", []string{"/b", "/a"}); !ok || out != "/out" {
		t.Errorf("Lookup = %q, %v", out, ok)
	}
	if !c.Has("fft", []string{"/a", "/b"}, "/out") || c.Has("fft", []string{"/a"}, "/out") {
		t.Errorf("Has wrong")
	}
	if _, ok := c.Lookup("other", []string{"/a", "/b"}); ok {
		t.Errorf("transformation not part of key")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	c.Invalidate("/out")
	if _, ok := c.Lookup("fft", []string{"/a", "/b"}); ok {
		t.Errorf("Invalidate failed")
	}
	c.Invalidate("/never-recorded") // no-op
}

func TestRewriteAbstractResources(t *testing.T) {
	g, b := testRig(t)
	// Add an archive so class:archive resolves.
	if err := g.RegisterResource(vfs.New("vault", "sdsc", vfs.Archive, 0)); err != nil {
		t.Fatal(err)
	}
	ingest(t, g, "/grid/in/f", 1024, "sdsc-disk")
	abstract := dgl.NewFlow("abstract").
		Step("stage", dgl.Op(dgl.OpIngest, map[string]string{
			"path": "/grid/in/new", "size": "10", "resource": "class:disk@ncsa",
		})).
		Step("archive", dgl.Op(dgl.OpReplicate, map[string]string{
			"path": "/grid/in/f", "to": "class:archive",
		})).
		Step("compute", dgl.Op(dgl.OpExec, map[string]string{
			"command": "render", "cpuSeconds": "100",
		})).Flow()
	concrete, err := b.Rewrite(abstract)
	if err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if v, _ := abstract.Steps[1].Operation.Param("to"); v != "class:archive" {
		t.Errorf("rewrite mutated input flow")
	}
	if v, _ := concrete.Steps[0].Operation.Param("resource"); v != "ncsa-disk" {
		t.Errorf("class:disk@ncsa → %q", v)
	}
	if v, _ := concrete.Steps[1].Operation.Param("to"); v != "vault" {
		t.Errorf("class:archive → %q", v)
	}
	lane, ok := concrete.Steps[2].Operation.Param("lane")
	if !ok || lane == "" {
		t.Errorf("exec lane unbound")
	}
	// cpuSeconds scaled by node power: ncsa (2×) → 50.
	if lane == "ncsa-cluster" {
		if v, _ := concrete.Steps[2].Operation.Param("cpuSeconds"); v != "50" {
			t.Errorf("cpuSeconds = %q", v)
		}
	}
	// The concrete flow actually runs.
	e := matrix.NewEngine(g)
	ex, err := e.Run(g.Admin(), concrete)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	// Nested flows rewritten too.
	nested := dgl.NewFlow("outer").SubFlow(dgl.NewFlow("inner").
		Step("s", dgl.Op(dgl.OpReplicate, map[string]string{"path": "/grid/in/f", "to": "class:archive"}))).Flow()
	rw, err := b.Rewrite(nested)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rw.Flows[0].Steps[0].Operation.Param("to"); v != "vault" {
		t.Errorf("nested rewrite: %q", v)
	}
	// Unknown class fails.
	bad := dgl.NewFlow("bad").Step("s", dgl.Op(dgl.OpReplicate,
		map[string]string{"path": "/x", "to": "class:floppy"})).Flow()
	if _, err := b.Rewrite(bad); err == nil {
		t.Errorf("unknown class accepted")
	}
	// Unsatisfiable class fails.
	bad2 := dgl.NewFlow("bad2").Step("s", dgl.Op(dgl.OpReplicate,
		map[string]string{"path": "/x", "to": "class:memory"})).Flow()
	if _, err := b.Rewrite(bad2); err == nil {
		t.Errorf("unsatisfiable class accepted")
	}
	// Exec steps with an explicit lane keep it.
	pinned := dgl.NewFlow("pin").Step("s", dgl.Op(dgl.OpExec,
		map[string]string{"command": "x", "lane": "mylane"})).Flow()
	rw2, err := b.Rewrite(pinned)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rw2.Steps[0].Operation.Param("lane"); v != "mylane" {
		t.Errorf("pinned lane overwritten: %q", v)
	}
}

func TestMakespanBeforeWork(t *testing.T) {
	_, b := testRig(t)
	if got := b.Makespan(sim.Epoch); got != 0 {
		t.Errorf("idle makespan = %v", got)
	}
}

func BenchmarkE9Plan(b *testing.B) {
	g, br := testRig(b)
	ingest(b, g, "/grid/in/f", 100<<20, "sdsc-disk")
	task := &Task{Name: "t", Transformation: "x", CPUSeconds: 100, Inputs: []string{"/grid/in/f"}}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := br.Plan(task, CostBased); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSLAFiltering(t *testing.T) {
	g, b := testRig(t)
	ingest(t, g, "/grid/in/s", 1024, "sdsc-disk")
	desc := &infra.Description{
		Domains: []infra.Domain{
			{Name: "sdsc", SLAs: []infra.SLA{{Name: "members", Users: []string{"alice"}, Priority: 5}}},
			{Name: "ncsa"}, // no SLAs: open to all
		},
	}
	b.SetDescription(desc)
	b.SetUser("bob") // not admitted at sdsc
	task := &Task{Name: "t", Transformation: "x", CPUSeconds: 10, Inputs: []string{"/grid/in/s"}}
	chosen, cands, err := b.Plan(task, CostBased)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || chosen.Node.Domain != "ncsa" {
		t.Errorf("bob placed on %s with %d candidates", chosen.Node.Domain, len(cands))
	}
	// alice sees both domains.
	b.SetUser("alice")
	_, cands, err = b.Plan(task, CostBased)
	if err != nil || len(cands) != 2 {
		t.Errorf("alice candidates = %d, %v", len(cands), err)
	}
	// Static placement falls back when node 0 is excluded.
	b.SetUser("bob")
	chosen, _, err = b.Plan(task, StaticPlacement)
	if err != nil || chosen.Node.Domain != "ncsa" {
		t.Errorf("static fallback = %+v, %v", chosen.Node, err)
	}
	// No SLA admits the user anywhere: error.
	closed := &infra.Description{
		Domains: []infra.Domain{
			{Name: "sdsc", SLAs: []infra.SLA{{Name: "x", Users: []string{"alice"}}}},
			{Name: "ncsa", SLAs: []infra.SLA{{Name: "y", Users: []string{"alice"}}}},
		},
	}
	b.SetDescription(closed)
	if _, _, err := b.Plan(task, CostBased); !errors.Is(err, ErrNoNodes) {
		t.Errorf("fully closed grid: %v", err)
	}
}

func TestSLAPriorityTieBreak(t *testing.T) {
	// Two identical domains; SLA priority must break the cost tie.
	g := dgms.New(dgms.Options{})
	desc := &infra.Description{
		Domains: []infra.Domain{
			{Name: "a",
				Storage: []infra.Storage{{Name: "a-disk", Class: "disk"}},
				Compute: []infra.Compute{{Name: "a-cluster", Nodes: 2, Power: 1}},
				SLAs:    []infra.SLA{{Name: "std", Priority: 1}}},
			{Name: "b",
				Storage: []infra.Storage{{Name: "b-disk", Class: "disk"}},
				Compute: []infra.Compute{{Name: "b-cluster", Nodes: 2, Power: 1}},
				SLAs:    []infra.SLA{{Name: "gold", Priority: 9}}},
		},
	}
	nodes, err := desc.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroker(g, nodes, 1)
	b.SetDescription(desc)
	task := &Task{Name: "t", Transformation: "x", CPUSeconds: 10}
	chosen, _, err := b.Plan(task, CostBased)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Node.Name != "b-cluster" {
		t.Errorf("priority tie-break chose %s", chosen.Node.Name)
	}
}
