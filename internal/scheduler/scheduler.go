// Package scheduler implements the grid scheduler/broker of the paper's
// DfMS architecture: the "intermediaries that do the planning and
// matchmaking between the appropriate tasks in a workflow with the
// resources that are available". It converts abstract execution logic
// (tasks naming requirements) into infrastructure-based execution logic
// (tasks bound to concrete nodes and replicas), choosing placements by a
// cost heuristic over data movement, compute time and queue wait — "the
// cost is just an approximate value based on certain heuristics used by
// the scheduler".
//
// The package also hosts the virtual-data catalog (the GriPhyN Chimera
// analog): derivations are recorded, and a task whose output already
// exists is skipped rather than recomputed.
package scheduler

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"datagridflow/internal/dgms"
	"datagridflow/internal/infra"
	"datagridflow/internal/provenance"
	"datagridflow/internal/sim"
)

// Errors returned by the broker.
var (
	// ErrNoNodes reports a broker with no compute inventory.
	ErrNoNodes = errors.New("scheduler: no compute nodes")
	// ErrNoInput reports a task input with no available replica.
	ErrNoInput = errors.New("scheduler: task input unavailable")
)

// Task is one unit of abstract execution logic: what must run and what
// data it touches, with no mention of where.
type Task struct {
	// Name identifies the task (used in provenance and virtual data).
	Name string
	// Transformation names the business logic (binary) applied; together
	// with the inputs it keys the virtual-data catalog.
	Transformation string
	// CPUSeconds is the task's cost on the reference machine (power 1.0).
	CPUSeconds float64
	// Inputs are logical paths read by the task.
	Inputs []string
	// Output is the logical path produced (may be empty for pure
	// side-effect tasks).
	Output string
	// OutputSize is the size of the produced object.
	OutputSize int64
	// PreferDomain biases placement when costs tie.
	PreferDomain string
}

// Placement is one candidate binding of a task to infrastructure.
type Placement struct {
	Node infra.ComputeNode
	// InputSources maps each input path to the resource it is read from.
	InputSources map[string]string
	// Estimate breaks down the predicted cost.
	Estimate Cost
}

// Cost is the broker's heuristic estimate for a placement.
type Cost struct {
	// DataMoved is the bytes that must cross domain boundaries.
	DataMoved int64
	// Transfer is the predicted time moving inputs to the node.
	Transfer time.Duration
	// Compute is the predicted execution time on the node.
	Compute time.Duration
	// Queue is the predicted wait for a free node slot.
	Queue time.Duration
}

// Total is the completion-time estimate placements are ranked by.
func (c Cost) Total() time.Duration { return c.Transfer + c.Compute + c.Queue }

// Strategy selects among candidate placements; the ablation in E9
// compares these.
type Strategy int

// Placement strategies.
const (
	// CostBased picks the minimum estimated completion time (the paper's
	// broker behaviour).
	CostBased Strategy = iota
	// RandomPlacement picks uniformly (seeded, reproducible).
	RandomPlacement
	// StaticPlacement always uses the first node (the hard-wired script
	// baseline's behaviour).
	StaticPlacement
)

// String names the strategy for reports.
func (s Strategy) String() string {
	switch s {
	case CostBased:
		return "cost-based"
	case RandomPlacement:
		return "random"
	case StaticPlacement:
		return "static"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Broker plans and executes tasks on a grid plus compute inventory.
type Broker struct {
	grid  *dgms.Grid
	nodes []infra.ComputeNode
	rng   *sim.Rand
	// user is the grid identity broker actions (output ingests) run as.
	user string

	// desc, when set, gates placement by SLA: nodes in domains whose
	// SLAs do not admit the broker's user are excluded (domains without
	// SLAs stay open).
	desc *infra.Description

	mu sync.Mutex
	// busyUntil tracks per-node-pool earliest free slot times, one entry
	// per node in the pool.
	busyUntil map[string][]time.Time

	catalog *Catalog

	// stats
	executed int64
	skipped  int64
}

// NewBroker creates a broker over the grid and compute inventory. The
// seed drives RandomPlacement reproducibly.
func NewBroker(g *dgms.Grid, nodes []infra.ComputeNode, seed int64) *Broker {
	b := &Broker{
		grid:      g,
		nodes:     append([]infra.ComputeNode(nil), nodes...),
		rng:       sim.NewRand(seed),
		user:      g.Admin(),
		busyUntil: make(map[string][]time.Time),
		catalog:   NewCatalog(),
	}
	for _, n := range nodes {
		b.busyUntil[n.Name] = make([]time.Time, n.Nodes)
	}
	return b
}

// Catalog exposes the broker's virtual-data catalog.
func (b *Broker) Catalog() *Catalog { return b.catalog }

// SetUser changes the grid identity broker actions run as (default: the
// grid admin).
func (b *Broker) SetUser(user string) { b.user = user }

// SetDescription enables SLA enforcement: placement only considers
// compute nodes in domains whose SLAs admit the broker's user. Domains
// that declare no SLAs remain open to everyone; the admitting SLA's
// priority breaks cost ties (the paper's "preferred type of users or
// tasks that could be executed on each resource").
func (b *Broker) SetDescription(d *infra.Description) { b.desc = d }

// slaFor returns the admitting SLA priority for a node and whether the
// node is admitted at all.
func (b *Broker) slaFor(node infra.ComputeNode) (int, bool) {
	if b.desc == nil {
		return 0, true
	}
	hasSLAs := false
	for _, dom := range b.desc.Domains {
		if dom.Name == node.Domain && len(dom.SLAs) > 0 {
			hasSLAs = true
		}
	}
	if !hasSLAs {
		return 0, true
	}
	sla, ok := b.desc.SLAFor(node.Domain, b.user)
	if !ok {
		return 0, false
	}
	return sla.Priority, true
}

// Stats reports executed vs virtual-data-skipped task counts.
func (b *Broker) Stats() (executed, skipped int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.executed, b.skipped
}

// estimate prices running the task on one node.
func (b *Broker) estimate(task *Task, node infra.ComputeNode, now time.Time) (Placement, error) {
	p := Placement{Node: node, InputSources: make(map[string]string, len(task.Inputs))}
	for _, in := range task.Inputs {
		reps, err := b.grid.Namespace().Replicas(in)
		if err != nil || len(reps) == 0 {
			return p, fmt.Errorf("%w: %s", ErrNoInput, in)
		}
		// Choose the replica with the cheapest path to the node: replica
		// selection is part of late binding.
		bestRes := ""
		bestTime := time.Duration(1<<63 - 1)
		var bestBytes int64
		for _, rep := range reps {
			res, err := b.grid.Resource(rep.Resource)
			if err != nil || res.Offline() {
				continue
			}
			info, ok := res.Stat(rep.PhysicalID)
			if !ok {
				continue
			}
			rd := res.ReadTime(info.Size)
			var tt time.Duration
			if res.Domain() == node.Domain {
				// Local read: only the storage cost.
				tt = rd
			} else {
				net, err := b.grid.Network().TransferTime(res.Domain(), node.Domain, info.Size)
				if err != nil {
					continue
				}
				tt = rd + net
			}
			if tt < bestTime {
				bestTime, bestRes = tt, rep.Resource
				if res.Domain() == node.Domain {
					bestBytes = 0
				} else {
					bestBytes = info.Size
				}
			}
		}
		if bestRes == "" {
			return p, fmt.Errorf("%w: %s (all replicas unusable)", ErrNoInput, in)
		}
		p.InputSources[in] = bestRes
		p.Estimate.Transfer += bestTime
		p.Estimate.DataMoved += bestBytes
	}
	p.Estimate.Compute = time.Duration(task.CPUSeconds / node.Power * float64(time.Second))
	p.Estimate.Queue = b.queueWait(node.Name, now)
	return p, nil
}

// queueWait returns how long a new task would wait for a slot on a pool.
func (b *Broker) queueWait(pool string, now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	slots := b.busyUntil[pool]
	if len(slots) == 0 {
		return 0
	}
	earliest := slots[0]
	for _, t := range slots[1:] {
		if t.Before(earliest) {
			earliest = t
		}
	}
	if earliest.Before(now) {
		return 0
	}
	return earliest.Sub(now)
}

// Plan evaluates every node and returns the placement the strategy
// selects, plus all candidates (sorted by cost) for reporting.
func (b *Broker) Plan(task *Task, strategy Strategy) (Placement, []Placement, error) {
	if len(b.nodes) == 0 {
		return Placement{}, nil, ErrNoNodes
	}
	now := b.grid.Clock().Now()
	candidates := make([]Placement, 0, len(b.nodes))
	prios := make(map[string]int, len(b.nodes))
	for _, n := range b.nodes {
		prio, admitted := b.slaFor(n)
		if !admitted {
			continue
		}
		p, err := b.estimate(task, n, now)
		if err != nil {
			return Placement{}, nil, err
		}
		prios[n.Name] = prio
		candidates = append(candidates, p)
	}
	if len(candidates) == 0 {
		return Placement{}, nil, fmt.Errorf("%w: no SLA admits user %q", ErrNoNodes, b.user)
	}
	// Each candidate carried one matchmaking cost evaluation.
	b.grid.Obs().Counter("scheduler_placements_evaluated_total").Add(int64(len(candidates)))
	b.grid.Obs().Counter("scheduler_plans_total", "strategy", strategy.String()).Inc()
	sort.Slice(candidates, func(i, j int) bool {
		ci, cj := candidates[i].Estimate.Total(), candidates[j].Estimate.Total()
		if ci != cj {
			return ci < cj
		}
		// Ties break toward the preferred domain, then SLA priority,
		// then by name for determinism.
		pi := candidates[i].Node.Domain == task.PreferDomain
		pj := candidates[j].Node.Domain == task.PreferDomain
		if pi != pj {
			return pi
		}
		if prios[candidates[i].Node.Name] != prios[candidates[j].Node.Name] {
			return prios[candidates[i].Node.Name] > prios[candidates[j].Node.Name]
		}
		return candidates[i].Node.Name < candidates[j].Node.Name
	})
	var chosen Placement
	switch strategy {
	case CostBased:
		chosen = candidates[0]
	case RandomPlacement:
		chosen = candidates[b.rng.Intn(len(candidates))]
	case StaticPlacement:
		// The first node in inventory order, regardless of cost; falls
		// back to the cheapest candidate when SLA filtering excluded it.
		chosen = candidates[0]
		for _, c := range candidates {
			if c.Node.Name == b.nodes[0].Name {
				chosen = c
				break
			}
		}
	default:
		chosen = candidates[0]
	}
	return chosen, candidates, nil
}

// Execute plans and runs the task: virtual-data check, input staging
// (metered), compute (metered on the node lane), output registration and
// derivation recording. outputResource names where the output lands; if
// empty, the least-loaded storage resource in the node's domain is used.
func (b *Broker) Execute(task *Task, strategy Strategy, outputResource string) (Placement, error) {
	// Virtual data: an existing, still-present derivation short-circuits
	// the whole task.
	if task.Output != "" {
		if b.catalog.Has(task.Transformation, task.Inputs, task.Output) &&
			b.grid.Namespace().Exists(task.Output) {
			b.mu.Lock()
			b.skipped++
			b.mu.Unlock()
			b.grid.Obs().Counter("scheduler_virtual_data_hits_total").Inc()
			_, _ = b.grid.Provenance().Append(provenance.Record{
				Time: b.grid.Clock().Now(), Actor: "broker", Action: "task.virtual-data-hit",
				Target: task.Output, Outcome: provenance.OutcomeSkipped,
				Detail: map[string]string{"transformation": task.Transformation},
			})
			return Placement{}, nil
		}
	}
	chosen, _, err := b.Plan(task, strategy)
	if err != nil {
		return Placement{}, err
	}
	now := b.grid.Clock().Now()
	// Stage inputs: charge the network for cross-domain reads.
	for in, resName := range chosen.InputSources {
		res, err := b.grid.Resource(resName)
		if err != nil {
			return chosen, err
		}
		info, ok := res.Stat(in)
		if !ok {
			return chosen, fmt.Errorf("%w: %s vanished from %s", ErrNoInput, in, resName)
		}
		if res.Domain() != chosen.Node.Domain {
			if _, err := b.grid.Network().RecordTransfer(res.Domain(), chosen.Node.Domain, info.Size); err != nil {
				return chosen, err
			}
		}
	}
	// Occupy a node slot: the earliest-free slot runs the task. The
	// global clock is NOT advanced by per-task compute — tasks on
	// different slots overlap, and the simulated completion time of the
	// whole farm is derived from the slot bookings via Makespan.
	compute := chosen.Estimate.Compute
	b.mu.Lock()
	slots := b.busyUntil[chosen.Node.Name]
	idx := 0
	for i := 1; i < len(slots); i++ {
		if slots[i].Before(slots[idx]) {
			idx = i
		}
	}
	start := now
	if slots[idx].After(start) {
		start = slots[idx]
	}
	end := start.Add(chosen.Estimate.Transfer + compute)
	slots[idx] = end
	b.executed++
	b.mu.Unlock()
	b.grid.Obs().Counter("scheduler_tasks_executed_total").Inc()
	b.grid.Meter().Charge(chosen.Node.Name, compute, 0)
	// Register the output.
	if task.Output != "" {
		res := outputResource
		if res == "" {
			res = b.pickOutputResource(chosen.Node.Domain, task.OutputSize)
		}
		if res == "" {
			return chosen, fmt.Errorf("scheduler: no storage in domain %s for output %s", chosen.Node.Domain, task.Output)
		}
		if err := b.grid.Ingest(b.user, task.Output, task.OutputSize, nil, res); err != nil {
			return chosen, err
		}
		b.catalog.Record(task.Transformation, task.Inputs, task.Output)
	}
	_, _ = b.grid.Provenance().Append(provenance.Record{
		Time: b.grid.Clock().Now(), Actor: "broker", Action: "task.execute",
		Target: task.Name,
		Detail: map[string]string{
			"node":     chosen.Node.Name,
			"strategy": strategy.String(),
			"moved":    fmt.Sprint(chosen.Estimate.DataMoved),
		},
	})
	return chosen, nil
}

// pickOutputResource selects the domain's storage resource with the most
// free space that fits size.
func (b *Broker) pickOutputResource(domain string, size int64) string {
	best := ""
	var bestFree int64 = -1
	for _, r := range b.grid.ResourcesInDomain(domain) {
		if r.Offline() || r.Free() < size {
			continue
		}
		if r.Free() > bestFree {
			best, bestFree = r.Name(), r.Free()
		}
	}
	return best
}

// Makespan reports the latest busy-until across all node slots — the
// simulated completion time of everything executed so far.
func (b *Broker) Makespan(start time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	var latest time.Time
	for _, slots := range b.busyUntil {
		for _, t := range slots {
			if t.After(latest) {
				latest = t
			}
		}
	}
	if latest.Before(start) {
		return 0
	}
	return latest.Sub(start)
}
