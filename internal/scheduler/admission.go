package scheduler

// The admission scheduler is the server-side counterpart of the broker:
// where the broker places tasks on grid resources, the admission
// scheduler places inbound requests on the DfMS server's own compute.
// The paper's DfMS is "a broker managing concurrent long-run processes
// on behalf of many users" (§3.1); once the wire layer pipelines many
// requests per connection, a single chatty client could monopolize the
// request workers. Admission enforces two properties:
//
//   - bounded concurrency: at most `capacity` requests execute at once
//     (the wire server's worker pool size);
//   - weighted fairness: waiting requests queue FIFO per tenant, and a
//     freed slot is granted by deficit round-robin over the waiter
//     ring, so each backlogged tenant receives slots in proportion to
//     its weight (flat 1:1 when no weight function is installed) and
//     no tenant starves: every ring pass credits every waiter.
//
// The deficit round-robin (docs/TENANCY.md): each waiting tenant holds
// a deficit counter. A freed slot goes to the cursor tenant if its
// deficit covers one grant; otherwise the tenant earns its weight and
// the cursor advances. Weights are clamped to [1/64, 64] so one pass of
// the ring always makes progress and a single tenant's weight cannot
// flatten everyone else's share.
//
// A tenant whose private queue is full is rejected immediately with a
// capacity-class typed error rather than queued without bound — the
// client sees errors.Is(err, dgferr.ErrCapacity) and can back off.
// The empty user maps to the reserved anonymous tenant (tenant.Anon),
// so anonymous traffic shares one queue instead of minting a colliding
// ""-keyed entry.
//
// Admission emits `sched_admitted_total`, `sched_rejected_total` and
// the `sched_waiting` gauge per the docs/METRICS.md contract.

import (
	"context"
	"fmt"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/obs"
	"datagridflow/internal/tenant"
)

// ErrAdmission is the sentinel for admission rejections (a full
// per-user queue). It belongs to the capacity class, so it survives the
// wire as a typed error.
var ErrAdmission = dgferr.Mark(dgferr.ErrCapacity, "scheduler: admission queue full")

// Weight clamp bounds: one ring pass always accumulates at least
// minWeight per waiter (termination), and no tenant outweighs another
// by more than maxWeight/minWeight.
const (
	minWeight = 1.0 / 64
	maxWeight = 64.0
)

// userQueue is one tenant's waiter lane: FIFO grants plus the deficit
// round-robin credit. The deficit resets when the lane drains — an
// idle tenant banks nothing.
type userQueue struct {
	grants  []chan struct{}
	deficit float64
}

// Admission is a weighted-fair admission scheduler. The zero value is
// not usable; call NewAdmission. All methods are safe for concurrent
// use.
type Admission struct {
	capacity int
	maxQueue int
	reg      *obs.Registry

	// Channel-free design: every waiter gets a buffered grant channel;
	// Release hands its slot to the next waiter in deficit round-robin
	// order, or frees it when nobody waits.
	mu       chan struct{} // 1-buffered mutex (select-friendly)
	inflight int
	queues   map[string]*userQueue
	ring     []string // users with non-empty queues, in arrival order
	next     int      // round-robin cursor into ring
	weightFn func(user string) float64
}

// NewAdmission builds a scheduler admitting at most capacity concurrent
// requests, queueing at most maxQueue waiters per user beyond that.
// capacity <= 0 defaults to 64; maxQueue <= 0 defaults to 256. A nil
// registry falls back to obs.Default().
func NewAdmission(capacity, maxQueue int, reg *obs.Registry) *Admission {
	if capacity <= 0 {
		capacity = 64
	}
	if maxQueue <= 0 {
		maxQueue = 256
	}
	if reg == nil {
		reg = obs.Default()
	}
	a := &Admission{
		capacity: capacity,
		maxQueue: maxQueue,
		reg:      reg,
		mu:       make(chan struct{}, 1),
		queues:   make(map[string]*userQueue),
	}
	a.mu <- struct{}{}
	return a
}

// Capacity returns the concurrency bound.
func (a *Admission) Capacity() int { return a.capacity }

// SetWeightFn installs the per-tenant weight source for the deficit
// round-robin (typically tenant.Registry.Weight). A nil fn (or no call)
// weighs every tenant equally. Weights are clamped to [1/64, 64].
func (a *Admission) SetWeightFn(fn func(user string) float64) {
	a.lock()
	a.weightFn = fn
	a.unlock()
}

// weightOf resolves a tenant's clamped weight. Caller holds the lock.
func (a *Admission) weightOf(user string) float64 {
	w := 1.0
	if a.weightFn != nil {
		w = a.weightFn(user)
	}
	if !(w >= minWeight) { // also catches NaN
		w = minWeight
	}
	if w > maxWeight {
		w = maxWeight
	}
	return w
}

// lock acquires the internal mutex.
func (a *Admission) lock() { <-a.mu }

// unlock releases the internal mutex.
func (a *Admission) unlock() { a.mu <- struct{}{} }

// Acquire blocks until the request is admitted, the user's queue is
// full (ErrAdmission, immediately), or ctx is done (the ctx error,
// wrapped in the cancelled class). The empty user queues under the
// reserved anonymous tenant. Every successful Acquire must be paired
// with exactly one Release.
func (a *Admission) Acquire(ctx context.Context, user string) error {
	user = tenant.Canonical(user)
	a.lock()
	if a.inflight < a.capacity && len(a.ring) == 0 {
		// Free slot and nobody queued ahead: admit immediately.
		a.inflight++
		a.unlock()
		a.reg.Counter("sched_admitted_total").Inc()
		return nil
	}
	q := a.queues[user]
	if q != nil && len(q.grants) >= a.maxQueue {
		n := len(q.grants)
		a.unlock()
		a.reg.Counter("sched_rejected_total").Inc()
		return fmt.Errorf("%w: user %q has %d queued", ErrAdmission, user, n)
	}
	grant := make(chan struct{}, 1)
	if q == nil {
		q = &userQueue{}
		a.queues[user] = q
		a.ring = append(a.ring, user)
	}
	q.grants = append(q.grants, grant)
	a.unlock()
	a.reg.Gauge("sched_waiting").Add(1)
	defer a.reg.Gauge("sched_waiting").Add(-1)

	select {
	case <-grant:
		a.reg.Counter("sched_admitted_total").Inc()
		return nil
	case <-ctx.Done():
		// Remove the waiter — unless a grant raced in, in which case the
		// slot is ours and we keep it (the caller still gets nil: work
		// admitted a beat before cancellation proceeds; the caller's own
		// ctx checks will unwind it).
		a.lock()
		select {
		case <-grant:
			a.unlock()
			a.reg.Counter("sched_admitted_total").Inc()
			return nil
		default:
		}
		a.dropWaiter(user, grant)
		a.unlock()
		return fmt.Errorf("%w: admission wait: %v", dgferr.ErrCancelled, ctx.Err())
	}
}

// TryAcquire admits without waiting: it returns false when the pool is
// saturated instead of queueing. Used by callers that prefer shedding
// to blocking.
func (a *Admission) TryAcquire() bool {
	a.lock()
	if a.inflight < a.capacity && len(a.ring) == 0 {
		a.inflight++
		a.unlock()
		a.reg.Counter("sched_admitted_total").Inc()
		return true
	}
	a.unlock()
	a.reg.Counter("sched_rejected_total").Inc()
	return false
}

// dropWaiter unlinks a cancelled waiter. Caller holds the lock.
func (a *Admission) dropWaiter(user string, grant chan struct{}) {
	q := a.queues[user]
	if q == nil {
		return
	}
	for i, g := range q.grants {
		if g == grant {
			q.grants = append(q.grants[:i:i], q.grants[i+1:]...)
			break
		}
	}
	if len(q.grants) == 0 {
		delete(a.queues, user)
		a.dropFromRing(user)
	}
}

// dropFromRing removes a user from the round-robin ring, keeping the
// cursor on the same next user. Caller holds the lock.
func (a *Admission) dropFromRing(user string) {
	for i, u := range a.ring {
		if u == user {
			a.ring = append(a.ring[:i:i], a.ring[i+1:]...)
			if a.next > i {
				a.next--
			}
			if len(a.ring) > 0 {
				a.next %= len(a.ring)
			} else {
				a.next = 0
			}
			return
		}
	}
}

// Release frees a slot: the next waiter in deficit round-robin order
// inherits it, or the pool shrinks by one in-flight request. The loop
// terminates because every full ring pass credits every waiter at
// least minWeight.
func (a *Admission) Release() {
	a.lock()
	defer a.unlock()
	if len(a.ring) == 0 {
		if a.inflight > 0 {
			a.inflight--
		}
		return
	}
	for {
		user := a.ring[a.next]
		q := a.queues[user]
		if q.deficit >= 1 {
			q.deficit--
			grant := q.grants[0]
			q.grants = q.grants[1:]
			if len(q.grants) == 0 {
				delete(a.queues, user)
				a.dropFromRing(user)
			}
			grant <- struct{}{} // slot transfers: inflight unchanged
			return
		}
		q.deficit += a.weightOf(user)
		a.next = (a.next + 1) % len(a.ring)
	}
}

// Inflight returns the number of currently admitted requests.
func (a *Admission) Inflight() int {
	a.lock()
	defer a.unlock()
	return a.inflight
}

// Waiting returns the number of queued waiters across all users.
func (a *Admission) Waiting() int {
	a.lock()
	defer a.unlock()
	n := 0
	for _, q := range a.queues {
		n += len(q.grants)
	}
	return n
}
