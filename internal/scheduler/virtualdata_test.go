package scheduler

import "testing"

// Regression: re-recording a derivation against a new output path used
// to leave byOutput[oldOutput] pointing at the live key, so deleting
// the *old* path invalidated the *current* derivation.
func TestCatalogRerecordRetiresStaleReverseEntry(t *testing.T) {
	c := NewCatalog()
	c.Record("fft", []string{"/in/raw"}, "/out/v1")
	c.Record("fft", []string{"/in/raw"}, "/out/v2")

	c.Invalidate("/out/v1")
	out, ok := c.Lookup("fft", []string{"/in/raw"})
	if !ok || out != "/out/v2" {
		t.Fatalf("invalidating the retired path killed the live derivation: got %q, %v", out, ok)
	}

	c.Invalidate("/out/v2")
	if _, ok := c.Lookup("fft", []string{"/in/raw"}); ok {
		t.Fatal("invalidating the live path left the derivation recorded")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("catalog not empty after invalidation: %d entries", n)
	}
}

// Regression: two derivations sharing an output path used to leave a
// dangling byKey entry after Invalidate — only the last-recorded key
// was removed.
func TestCatalogSharedOutputInvalidatesAllKeys(t *testing.T) {
	c := NewCatalog()
	c.Record("fft", []string{"/in/a"}, "/out/shared")
	c.Record("wavelet", []string{"/in/b"}, "/out/shared")
	if n := c.Len(); n != 2 {
		t.Fatalf("expected 2 derivations, got %d", n)
	}

	c.Invalidate("/out/shared")
	if _, ok := c.Lookup("fft", []string{"/in/a"}); ok {
		t.Fatal("fft derivation dangled after its output was invalidated")
	}
	if _, ok := c.Lookup("wavelet", []string{"/in/b"}); ok {
		t.Fatal("wavelet derivation dangled after its output was invalidated")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("catalog not empty after shared-output invalidation: %d entries", n)
	}
}

// Input order must not change the derivation key, and invalidation is
// idempotent on unknown outputs.
func TestCatalogKeyCanonicalization(t *testing.T) {
	c := NewCatalog()
	c.Record("merge", []string{"/in/b", "/in/a"}, "/out/m")
	if !c.Has("merge", []string{"/in/a", "/in/b"}, "/out/m") {
		t.Fatal("input order changed the derivation key")
	}
	c.Invalidate("/out/never-recorded")
	if !c.Has("merge", []string{"/in/a", "/in/b"}, "/out/m") {
		t.Fatal("invalidating an unknown output disturbed the catalog")
	}
}
