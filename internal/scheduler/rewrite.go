package scheduler

import (
	"fmt"
	"strconv"

	"datagridflow/internal/dgl"
	"datagridflow/internal/vfs"
)

// Rewrite converts abstract execution logic into infrastructure-based
// execution logic — the paper's analogy to "query re-writing or
// optimization of SQL before a final query plan is generated". The input
// flow may use abstract resource references that only name a storage
// class; Rewrite binds them to concrete resources and binds exec steps to
// concrete compute lanes, using the broker's cost model. The original
// flow is not modified.
//
// Abstract references recognized in step parameters:
//
//   - resource/to = "class:disk" | "class:archive" | "class:parallel-fs"
//     | "class:memory", optionally scoped to a domain with
//     "class:disk@sdsc": bound to the matching resource with the most
//     free space.
//   - exec steps without a "lane": bound to the cheapest compute node for
//     the step's cpuSeconds (and the step gains cpuSeconds scaled by the
//     node's power).
//
// This is late binding at its latest safe point: Rewrite is typically
// called per loop section just before submission, so each iteration can
// land on different infrastructure (paper §2.3).
func (b *Broker) Rewrite(flow dgl.Flow) (dgl.Flow, error) {
	out := flow
	// Deep-copy children so the caller's document stays abstract.
	out.Flows = append([]dgl.Flow(nil), flow.Flows...)
	out.Steps = append([]dgl.Step(nil), flow.Steps...)
	for i := range out.Flows {
		rw, err := b.Rewrite(out.Flows[i])
		if err != nil {
			return dgl.Flow{}, err
		}
		out.Flows[i] = rw
	}
	for i := range out.Steps {
		st, err := b.rewriteStep(out.Steps[i])
		if err != nil {
			return dgl.Flow{}, err
		}
		out.Steps[i] = st
	}
	return out, nil
}

func (b *Broker) rewriteStep(st dgl.Step) (dgl.Step, error) {
	st.Operation.Params = append([]dgl.Param(nil), st.Operation.Params...)
	for pi, p := range st.Operation.Params {
		switch p.Name {
		case "resource", "to", "from":
			concrete, err := b.resolveResourceRef(p.Value)
			if err != nil {
				return st, fmt.Errorf("step %s: %w", st.Name, err)
			}
			st.Operation.Params[pi].Value = concrete
		}
	}
	if st.Operation.Type == dgl.OpExec {
		if _, ok := st.Operation.Param("lane"); !ok {
			cpu := 1.0
			if s, ok := st.Operation.Param("cpuSeconds"); ok {
				if f, err := strconv.ParseFloat(s, 64); err == nil {
					cpu = f
				}
			}
			task := Task{Name: st.Name, CPUSeconds: cpu}
			chosen, _, err := b.Plan(&task, CostBased)
			if err != nil {
				return st, fmt.Errorf("step %s: %w", st.Name, err)
			}
			scaled := cpu / chosen.Node.Power
			st.Operation.Params = append(st.Operation.Params,
				dgl.Param{Name: "lane", Value: chosen.Node.Name},
			)
			setParam(&st.Operation, "cpuSeconds", strconv.FormatFloat(scaled, 'f', -1, 64))
		}
	}
	return st, nil
}

func setParam(op *dgl.Operation, name, value string) {
	for i := range op.Params {
		if op.Params[i].Name == name {
			op.Params[i].Value = value
			return
		}
	}
	op.Params = append(op.Params, dgl.Param{Name: name, Value: value})
}

// resolveResourceRef binds "class:<class>[@domain]" references to the
// matching resource with the most free space; concrete names pass
// through untouched.
func (b *Broker) resolveResourceRef(ref string) (string, error) {
	const prefix = "class:"
	if len(ref) < len(prefix) || ref[:len(prefix)] != prefix {
		return ref, nil
	}
	spec := ref[len(prefix):]
	domain := ""
	for i := 0; i < len(spec); i++ {
		if spec[i] == '@' {
			domain = spec[i+1:]
			spec = spec[:i]
			break
		}
	}
	var want vfs.Class
	switch spec {
	case "memory":
		want = vfs.Memory
	case "parallel-fs":
		want = vfs.ParallelFS
	case "disk":
		want = vfs.Disk
	case "archive":
		want = vfs.Archive
	default:
		return "", fmt.Errorf("scheduler: unknown class reference %q", ref)
	}
	best := ""
	var bestFree int64 = -1
	for _, r := range b.grid.Resources() {
		if r.Class() != want || r.Offline() {
			continue
		}
		if domain != "" && r.Domain() != domain {
			continue
		}
		if r.Free() > bestFree {
			best, bestFree = r.Name(), r.Free()
		}
	}
	if best == "" {
		return "", fmt.Errorf("scheduler: no online resource satisfies %q", ref)
	}
	return best, nil
}
