package scheduler

import (
	"sync"
	"testing"
)

func cand(name string, load PeerLoad) Candidate {
	return Candidate{Name: name, Load: load}
}

func TestPeerLoadScoreOrdering(t *testing.T) {
	idle := PeerLoad{Capacity: 4}
	busy := PeerLoad{Inflight: 3, Capacity: 4}
	queued := PeerLoad{Inflight: 4, Queued: 2, Capacity: 4}
	if !(idle.Score() < busy.Score() && busy.Score() < queued.Score()) {
		t.Fatalf("score ordering: idle=%v busy=%v queued=%v",
			idle.Score(), busy.Score(), queued.Score())
	}
	// Queue wait dominates pool pressure: one queued request outweighs
	// any partially-used pool.
	nearFull := PeerLoad{Inflight: 3, Capacity: 4}
	oneQueued := PeerLoad{Queued: 1, Capacity: 4}
	if oneQueued.Score() <= nearFull.Score() {
		t.Errorf("queue wait should dominate: queued=%v nearFull=%v",
			oneQueued.Score(), nearFull.Score())
	}
	// Zero capacity must not divide by zero.
	_ = PeerLoad{Inflight: 2}.Score()
}

func TestLeastLoadedPick(t *testing.T) {
	p := LeastLoaded{}
	if p.Name() != "least-loaded" {
		t.Errorf("name = %q", p.Name())
	}
	if _, ok := p.Pick("self", "", nil); ok {
		t.Error("picked from empty candidate set")
	}
	peers := []Candidate{
		cand("b", PeerLoad{Inflight: 2, Capacity: 4}),
		cand("a", PeerLoad{Queued: 5, Capacity: 4}),
		cand("c", PeerLoad{Capacity: 4}),
	}
	if got, ok := p.Pick("self", "", peers); !ok || got != "c" {
		t.Errorf("pick = %q, %v", got, ok)
	}
	// Equal loads tie-break by name.
	tied := []Candidate{
		cand("z", PeerLoad{Capacity: 4}),
		cand("m", PeerLoad{Capacity: 4}),
		cand("a", PeerLoad{Capacity: 4}),
	}
	if got, _ := p.Pick("self", "", tied); got != "a" {
		t.Errorf("tie-break = %q, want a", got)
	}
}

func TestRoundRobinPick(t *testing.T) {
	p := &RoundRobin{}
	if p.Name() != "round-robin" {
		t.Errorf("name = %q", p.Name())
	}
	if _, ok := p.Pick("self", "", nil); ok {
		t.Error("picked from empty candidate set")
	}
	peers := []Candidate{cand("b", PeerLoad{}), cand("a", PeerLoad{}), cand("c", PeerLoad{})}
	var got []string
	for i := 0; i < 6; i++ {
		name, ok := p.Pick("self", "", peers)
		if !ok {
			t.Fatal("round-robin refused candidates")
		}
		got = append(got, name)
	}
	want := []string{"a", "b", "c", "a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinConcurrent(t *testing.T) {
	p := &RoundRobin{}
	peers := []Candidate{cand("a", PeerLoad{}), cand("b", PeerLoad{})}
	var wg sync.WaitGroup
	counts := make([]map[string]int, 8)
	for w := 0; w < 8; w++ {
		counts[w] = map[string]int{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name, ok := p.Pick("self", "", peers)
				if !ok {
					return
				}
				counts[w][name]++
			}
		}(w)
	}
	wg.Wait()
	total := map[string]int{}
	for _, c := range counts {
		for k, v := range c {
			total[k] += v
		}
	}
	// The counter is shared, so the spread stays perfectly even.
	if total["a"] != 200 || total["b"] != 200 {
		t.Errorf("spread = %v", total)
	}
}

func TestLocalityPick(t *testing.T) {
	p := Locality{}
	if p.Name() != "locality" {
		t.Errorf("name = %q", p.Name())
	}
	peers := []Candidate{
		cand("idle", PeerLoad{Capacity: 4}),
		cand("hosting", PeerLoad{Inflight: 3, Capacity: 4, Resources: []string{"disk1"}}),
		cand("hostingBusy", PeerLoad{Queued: 4, Capacity: 4, Resources: []string{"disk1"}}),
	}
	// Hint matches: work moves to the (least-loaded) data holder even
	// though another peer is idler.
	if got, ok := p.Pick("self", "disk1", peers); !ok || got != "hosting" {
		t.Errorf("hinted pick = %q, %v", got, ok)
	}
	// No hint: plain least-loaded.
	if got, _ := p.Pick("self", "", peers); got != "idle" {
		t.Errorf("unhinted pick = %q", got)
	}
	// Hint nobody hosts: fall back to least-loaded over everyone.
	if got, _ := p.Pick("self", "tape9", peers); got != "idle" {
		t.Errorf("unhosted hint pick = %q", got)
	}
	if _, ok := p.Pick("self", "disk1", nil); ok {
		t.Error("picked from empty candidate set")
	}
}

func TestVdataLocalityPick(t *testing.T) {
	p := VdataLocality{}
	if p.Name() != VdataLocalityName {
		t.Errorf("name = %q", p.Name())
	}
	peers := []Candidate{
		cand("idle", PeerLoad{Capacity: 4}),
		cand("holder", PeerLoad{Queued: 8, Capacity: 4}),
	}
	// The derivation holder wins outright, however loaded: running there
	// skips the work entirely, which beats any queue.
	if got, ok := p.Pick("self", "holder", peers); !ok || got != "holder" {
		t.Errorf("hinted pick = %q, %v", got, ok)
	}
	// No hint, or a holder that is no longer a live candidate: plain
	// least-loaded.
	if got, _ := p.Pick("self", "", peers); got != "idle" {
		t.Errorf("unhinted pick = %q", got)
	}
	if got, _ := p.Pick("self", "departed", peers); got != "idle" {
		t.Errorf("dead-holder pick = %q", got)
	}
	if _, ok := p.Pick("self", "holder", nil); ok {
		t.Error("picked from empty candidate set")
	}
}

func TestNewPolicy(t *testing.T) {
	for name, want := range map[string]string{
		"":               "least-loaded",
		"least-loaded":   "least-loaded",
		"round-robin":    "round-robin",
		"locality":       "locality",
		"vdata-locality": "vdata-locality",
	} {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := NewPolicy("random"); err == nil {
		t.Error("unknown policy accepted")
	}
}
