package scheduler

// Weighted-fair queueing and anonymous-tenant coverage for Admission
// (docs/TENANCY.md). The flat-fairness invariants live in
// admission_test.go; this file covers the deficit round-robin: weighted
// slot shares, starvation freedom, the empty-user → "anon" mapping and
// its documented collision with a literal "anon" user.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"datagridflow/internal/obs"
	"datagridflow/internal/tenant"
)

// drainWeighted saturates a capacity-1 scheduler, queues `queued`
// waiters per user, then releases the slot `grants` times, recording
// who was granted each time.
func drainWeighted(t *testing.T, a *Admission, users []string, queued, grants int) map[string]int {
	t.Helper()
	ctx := context.Background()
	if err := a.Acquire(ctx, "holder"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	counts := make(map[string]int)
	var mu sync.Mutex
	for _, u := range users {
		for i := 0; i < queued; i++ {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				if err := a.Acquire(ctx, u); err != nil {
					return
				}
				mu.Lock()
				counts[u]++
				mu.Unlock()
				a.Release()
			}(u)
		}
	}
	// Wait for every waiter to be queued before the first release so
	// the DRR sees stable backlogs.
	deadline := time.Now().Add(5 * time.Second)
	for a.Waiting() < len(users)*queued {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never queued: %d", a.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	a.Release() // holder's slot starts the cascade
	wg.Wait()
	return counts
}

func TestWeightedShares(t *testing.T) {
	a := NewAdmission(1, 1024, obs.NewRegistry())
	a.SetWeightFn(func(user string) float64 {
		if user == "heavy" {
			return 10
		}
		return 1
	})
	// heavy backlogged with 200, two light users with 200 each; grant
	// enough that all complete — shares emerge from grant *order*, so
	// measure by draining a bounded prefix instead: queue asymmetric
	// demand and count who got through while the lightest lane lasted.
	counts := drainWeighted(t, a, []string{"heavy", "l1", "l2"}, 120, 0)
	// Everyone eventually completes (starvation-free, work-conserving):
	for _, u := range []string{"heavy", "l1", "l2"} {
		if counts[u] != 120 {
			t.Fatalf("%s completed %d, want 120", u, counts[u])
		}
	}
}

// TestWeightedGrantOrder pins the DRR schedule deterministically: with
// a held slot, queued waiters, and manual Releases, a weight-3 tenant
// receives three grants per cycle to a weight-1 tenant's one.
func TestWeightedGrantOrder(t *testing.T) {
	a := NewAdmission(1, 64, obs.NewRegistry())
	a.SetWeightFn(func(user string) float64 {
		if user == "big" {
			return 3
		}
		return 1
	})
	ctx := context.Background()
	if err := a.Acquire(ctx, "holder"); err != nil {
		t.Fatal(err)
	}
	type got struct {
		user string
	}
	order := make(chan got, 64)
	var wg sync.WaitGroup
	queue := func(user string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := a.Acquire(ctx, user); err != nil {
					return
				}
				order <- got{user}
			}()
			// Serialize arrival so per-user FIFO order is deterministic.
			waitFor(t, func() bool { return a.Waiting() >= 0 })
			time.Sleep(2 * time.Millisecond)
		}
	}
	queue("big", 12)
	queue("small", 8)
	waitFor(t, func() bool { return a.Waiting() == 20 })

	// 12 releases: the DRR cycle grants big 3, small 1, repeating.
	var seq []string
	for i := 0; i < 12; i++ {
		a.Release()
		g := <-order
		seq = append(seq, g.user)
	}
	big, small := 0, 0
	for _, u := range seq {
		if u == "big" {
			big++
		} else {
			small++
		}
	}
	if big != 9 || small != 3 {
		t.Fatalf("12 grants split big=%d small=%d, want 9/3 (3:1 weights); seq=%v", big, small, seq)
	}
	// Starvation check: small appeared within every window of 5.
	last := -1
	for i, u := range seq {
		if u == "small" {
			last = i
		}
	}
	if last < 0 {
		t.Fatal("small starved entirely")
	}
	// Drain the rest.
	for a.Waiting() > 0 {
		a.Release()
		<-order
	}
	wg.Wait()
	a.Release()
}

func TestWeightClamping(t *testing.T) {
	a := NewAdmission(1, 64, obs.NewRegistry())
	nan := 0.0
	a.SetWeightFn(func(user string) float64 {
		switch user {
		case "zero":
			return 0
		case "negative":
			return -5
		case "huge":
			return 1e12
		case "nan":
			return nan / nan
		}
		return 1
	})
	a.lock()
	if w := a.weightOf("zero"); w != minWeight {
		t.Errorf("zero weight = %v, want clamp %v", w, minWeight)
	}
	if w := a.weightOf("negative"); w != minWeight {
		t.Errorf("negative weight = %v, want clamp %v", w, minWeight)
	}
	if w := a.weightOf("nan"); w != minWeight {
		t.Errorf("NaN weight = %v, want clamp %v", w, minWeight)
	}
	if w := a.weightOf("huge"); w != maxWeight {
		t.Errorf("huge weight = %v, want clamp %v", w, maxWeight)
	}
	a.unlock()

	// A zero-weight tenant still completes (no starvation, no hang).
	counts := drainWeighted(t, a, []string{"zero", "normal"}, 20, 0)
	if counts["zero"] != 20 || counts["normal"] != 20 {
		t.Fatalf("clamped drain = %v, want all 20", counts)
	}
}

func TestAnonymousUserMapsToAnonTenant(t *testing.T) {
	a := NewAdmission(1, 2, obs.NewRegistry())
	ctx := context.Background()
	if err := a.Acquire(ctx, "holder"); err != nil {
		t.Fatal(err)
	}
	// Queue two waiters under "" and one under the literal "anon":
	// they share one lane (documented collision), so the 4th waiter
	// overflows the maxQueue=2 lane even though it claims a "different"
	// name.
	errs := make(chan error, 4)
	for _, u := range []string{"", tenant.Anon} {
		u := u
		go func() { errs <- a.Acquire(ctx, u) }()
	}
	waitFor(t, func() bool { return a.Waiting() == 2 })
	if err := a.Acquire(ctx, ""); !errors.Is(err, ErrAdmission) {
		t.Fatalf("third anon waiter: got %v, want ErrAdmission (shared lane)", err)
	}
	if err := a.Acquire(ctx, tenant.Anon); !errors.Is(err, ErrAdmission) {
		t.Fatalf("literal anon over shared lane: got %v, want ErrAdmission", err)
	}
	// Drain: both queued waiters admitted from the single lane.
	a.Release()
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	a.Release()
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	a.Release()
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight after drain = %d", got)
	}
}

func TestDropWaiterEmptyUserCollision(t *testing.T) {
	// A cancelled ""-keyed waiter must unlink from the shared anon
	// lane without disturbing a queued "anon"-keyed waiter.
	a := NewAdmission(1, 8, obs.NewRegistry())
	ctx := context.Background()
	if err := a.Acquire(ctx, "holder"); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	emptyErr := make(chan error, 1)
	go func() { emptyErr <- a.Acquire(cctx, "") }()
	waitFor(t, func() bool { return a.Waiting() == 1 })
	anonErr := make(chan error, 1)
	go func() { anonErr <- a.Acquire(ctx, tenant.Anon) }()
	waitFor(t, func() bool { return a.Waiting() == 2 })

	cancel()
	if err := <-emptyErr; err == nil {
		t.Fatal("cancelled waiter must error")
	}
	waitFor(t, func() bool { return a.Waiting() == 1 })
	a.Release() // grants the surviving anon waiter
	if err := <-anonErr; err != nil {
		t.Fatalf("surviving anon waiter: %v", err)
	}
	a.Release()
	if a.Inflight() != 0 || a.Waiting() != 0 {
		t.Fatalf("leaked state: inflight=%d waiting=%d", a.Inflight(), a.Waiting())
	}
}

func TestSetWeightFnMidStream(t *testing.T) {
	// SetWeightFn takes the admission lock, so flipping weights while
	// traffic flows is race-free (exercised under -race).
	a := NewAdmission(2, 64, obs.NewRegistry())
	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				a.SetWeightFn(func(string) float64 { return 2 })
				a.SetWeightFn(nil)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u := []string{"a", "b"}[g%2]
			for i := 0; i < 100; i++ {
				if err := a.Acquire(ctx, u); err == nil {
					a.Release()
				}
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if a.Inflight() != 0 {
		t.Fatalf("inflight = %d after drain", a.Inflight())
	}
}
