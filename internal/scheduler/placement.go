package scheduler

// Peer placement extends the broker's matchmaking from "which grid
// resource runs this task" to "which matrixd peer runs this subflow" —
// the federation layer (internal/federation) asks a PlacementPolicy to
// pick a peer for every delegated subflow. Load figures come from the
// gossip the lookup server relays on heartbeat (the same sched_* /
// wire_inflight gauges the admission scheduler maintains), and the
// least-loaded policy ranks peers with the broker's Cost heuristic, so
// peer placement and task matchmaking share one cost model.

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// PeerLoad is one peer's self-reported load, published on heartbeat and
// gossiped to every other peer. Figures mirror the admission scheduler
// and engine gauges (docs/METRICS.md): Inflight = wire_inflight,
// Queued = sched_waiting, Running = matrix_executions_running,
// Capacity = the admission pool size.
type PeerLoad struct {
	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	Running  int64 `json:"running"`
	Capacity int64 `json:"capacity"`
	// Resources are the grid resource names the peer hosts — the
	// locality policy matches subflow resource hints against them.
	Resources []string `json:"resources,omitempty"`
}

// Cost maps the load figures onto the broker's placement cost model:
// queue wait dominates (requests already waiting for a slot), then
// pool pressure, then running executions as a tiebreaker. The absolute
// durations are nominal — only the ordering matters to Pick.
func (p PeerLoad) Cost() Cost {
	cap := p.Capacity
	if cap <= 0 {
		cap = 1
	}
	return Cost{
		Queue:    time.Duration(p.Queued) * time.Second,
		Transfer: time.Duration(float64(p.Inflight) / float64(cap) * float64(time.Second)),
		Compute:  time.Duration(p.Running) * time.Millisecond,
	}
}

// Score is the scalar the least-loaded policy minimizes.
func (p PeerLoad) Score() float64 { return p.Cost().Total().Seconds() }

// HostsResource reports whether the peer advertises the named resource.
func (p PeerLoad) HostsResource(name string) bool {
	for _, r := range p.Resources {
		if r == name {
			return true
		}
	}
	return false
}

// Candidate is one peer offered to a placement policy.
type Candidate struct {
	Name string
	Load PeerLoad
}

// PlacementPolicy picks the peer a delegated subflow runs on. local is
// the delegating peer's own name (always among the candidates when it
// is willing to run the work itself); hint is an optional resource name
// extracted from the subflow for locality-aware policies. ok is false
// when the policy has no candidate at all.
//
// Implementations must be safe for concurrent use: one policy instance
// serves every delegation a peer makes.
type PlacementPolicy interface {
	Name() string
	Pick(local, hint string, peers []Candidate) (peer string, ok bool)
}

// sortedCandidates returns the candidates ordered by name, for
// deterministic tie-breaking.
func sortedCandidates(peers []Candidate) []Candidate {
	out := append([]Candidate(nil), peers...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LeastLoaded picks the candidate with the minimum load cost
// (PeerLoad.Cost().Total()), breaking ties by name. This is the
// default federation policy: it reuses the broker's completion-time
// ranking, substituting gossip load for replica transfer estimates.
type LeastLoaded struct{}

// Name implements PlacementPolicy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements PlacementPolicy.
func (LeastLoaded) Pick(local, hint string, peers []Candidate) (string, bool) {
	return minScore(sortedCandidates(peers))
}

func minScore(sorted []Candidate) (string, bool) {
	if len(sorted) == 0 {
		return "", false
	}
	best := sorted[0]
	for _, c := range sorted[1:] {
		if c.Load.Score() < best.Load.Score() {
			best = c
		}
	}
	return best.Name, true
}

// RoundRobin rotates through the candidates in name order, ignoring
// load — the predictable-spread baseline.
type RoundRobin struct {
	mu sync.Mutex
	n  int
}

// Name implements PlacementPolicy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements PlacementPolicy.
func (p *RoundRobin) Pick(local, hint string, peers []Candidate) (string, bool) {
	sorted := sortedCandidates(peers)
	if len(sorted) == 0 {
		return "", false
	}
	p.mu.Lock()
	i := p.n % len(sorted)
	p.n++
	p.mu.Unlock()
	return sorted[i].Name, true
}

// Locality prefers peers that host the subflow's hinted resource (so
// the work moves to the data, per the paper's placement rationale),
// falling back to least-loaded among them — or among everyone when no
// candidate hosts the resource or no hint was extracted.
type Locality struct{}

// Name implements PlacementPolicy.
func (Locality) Name() string { return "locality" }

// Pick implements PlacementPolicy.
func (Locality) Pick(local, hint string, peers []Candidate) (string, bool) {
	sorted := sortedCandidates(peers)
	if hint != "" {
		var hosting []Candidate
		for _, c := range sorted {
			if c.Load.HostsResource(hint) {
				hosting = append(hosting, c)
			}
		}
		if len(hosting) > 0 {
			return minScore(hosting)
		}
	}
	return minScore(sorted)
}

// VdataLocalityName is the flag name of the VdataLocality policy; the
// federation layer switches the hint it passes to Pick on it (a holder
// peer name instead of a resource name).
const VdataLocalityName = "vdata-locality"

// VdataLocality routes pure subflows to the peer already holding their
// memoized derivations (docs/VDATA.md): the hint is a peer name — the
// derivation holder the delegating side resolved from its catalog or
// the lookup registry — and a candidate matching it wins outright, so
// the remote run hits that peer's catalog without any network graft.
// Without a hint, or when the holder is not a live candidate, it falls
// back to least-loaded.
type VdataLocality struct{}

// Name implements PlacementPolicy.
func (VdataLocality) Name() string { return VdataLocalityName }

// Pick implements PlacementPolicy.
func (VdataLocality) Pick(local, hint string, peers []Candidate) (string, bool) {
	sorted := sortedCandidates(peers)
	if hint != "" {
		for _, c := range sorted {
			if c.Name == hint {
				return c.Name, true
			}
		}
	}
	return minScore(sorted)
}

// NewPolicy resolves a policy by its flag name ("least-loaded",
// "round-robin", "locality", "vdata-locality") — the matrixd
// -placement values.
func NewPolicy(name string) (PlacementPolicy, error) {
	switch name {
	case "", "least-loaded":
		return LeastLoaded{}, nil
	case "round-robin":
		return &RoundRobin{}, nil
	case "locality":
		return Locality{}, nil
	case VdataLocalityName:
		return VdataLocality{}, nil
	default:
		return nil, fmt.Errorf("scheduler: unknown placement policy %q (want least-loaded, round-robin, locality or vdata-locality)", name)
	}
}
