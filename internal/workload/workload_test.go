package workload

import (
	"strings"
	"testing"
	"time"

	"datagridflow/internal/dgms"
	"datagridflow/internal/namespace"
	"datagridflow/internal/sim"
	"datagridflow/internal/vfs"
)

func TestGeneratorsDeterministic(t *testing.T) {
	a := SCEC(sim.NewRand(1), 2, 5)
	b := SCEC(sim.NewRand(1), 2, 5)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("lens = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Path != b[i].Path || a[i].Size != b[i].Size {
			t.Errorf("seeded generation diverged at %d", i)
		}
	}
	c := SCEC(sim.NewRand(2), 2, 5)
	same := true
	for i := range a {
		if a[i].Size != c[i].Size {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds gave identical sizes")
	}
}

func TestGeneratorShapes(t *testing.T) {
	r := sim.NewRand(42)
	scec := SCEC(r, 3, 4)
	if len(scec) != 12 || !strings.HasPrefix(scec[0].Path, "/grid/scec/run000/") {
		t.Errorf("scec = %d files, first %s", len(scec), scec[0].Path)
	}
	if scec[0].Meta["experiment"] != "TeraShake" {
		t.Errorf("scec meta = %v", scec[0].Meta)
	}
	hosp := Hospitals(r, 3, 10)
	if len(hosp) != 3 {
		t.Fatalf("hospitals = %d", len(hosp))
	}
	for domain, specs := range hosp {
		if len(specs) != 10 {
			t.Errorf("%s has %d records", domain, len(specs))
		}
		if !strings.Contains(specs[0].Path, domain) {
			t.Errorf("path %s missing domain %s", specs[0].Path, domain)
		}
	}
	cms := CMSRuns(r, 5)
	if len(cms) != 5 || !strings.HasSuffix(cms[0].Path, ".root") {
		t.Errorf("cms = %+v", cms[0])
	}
	lib := LibraryDocs(r, 5)
	if len(lib) != 5 || lib[0].Meta["collection"] != "ucsd-libraries" {
		t.Errorf("library = %+v", lib[0])
	}
	// CMS files are much larger than library docs on average.
	if TotalBytes(cms)/int64(len(cms)) < TotalBytes(lib)/int64(len(lib)) {
		t.Errorf("size ordering: cms %d < lib %d", TotalBytes(cms), TotalBytes(lib))
	}
	if TotalBytes(nil) != 0 {
		t.Errorf("TotalBytes(nil) != 0")
	}
}

func TestIngest(t *testing.T) {
	g := dgms.New(dgms.Options{})
	if err := g.RegisterResource(vfs.New("disk", "sdsc", vfs.Disk, 0)); err != nil {
		t.Fatal(err)
	}
	specs := SCEC(sim.NewRand(7), 1, 3)
	if err := Ingest(g, g.Admin(), "disk", specs); err != nil {
		t.Fatal(err)
	}
	stats := g.Namespace().Stats()
	if stats.Objects != 3 {
		t.Errorf("objects = %d", stats.Objects)
	}
	// Metadata attached and queryable.
	got, err := g.Namespace().Search(namespace.Query{
		ObjectsOnly: true,
		Conditions:  []namespace.Condition{{Attr: "experiment", Op: namespace.OpEq, Value: "TeraShake"}},
	})
	if err != nil || len(got) != 3 {
		t.Errorf("metadata query = %d, %v", len(got), err)
	}
	// Bad resource errors.
	if err := Ingest(g, g.Admin(), "nope", specs[:1]); err == nil {
		t.Errorf("bad resource accepted")
	}
}

func TestAccessTrace(t *testing.T) {
	r := sim.NewRand(5)
	paths := []string{"/a", "/b", "/c", "/d", "/e", "/f", "/g", "/h"}
	trace := AccessTrace(r, paths, 2000, time.Minute, 1.3)
	if len(trace) != 2000 {
		t.Fatalf("trace len = %d", len(trace))
	}
	counts := map[string]int{}
	var total time.Duration
	for _, a := range trace {
		counts[a.Path]++
		if a.Gap < 0 {
			t.Fatalf("negative gap")
		}
		total += a.Gap
	}
	// Zipf: the hottest path dominates the coldest.
	if counts[paths[0]] <= counts[paths[len(paths)-1]]*2 {
		t.Errorf("popularity not skewed: %v", counts)
	}
	// Mean interarrival near a minute (loose band).
	mean := total / 2000
	if mean < 30*time.Second || mean > 2*time.Minute {
		t.Errorf("mean gap = %v", mean)
	}
	// Degenerate inputs.
	if AccessTrace(r, nil, 10, time.Second, 1.2) != nil {
		t.Errorf("empty paths should yield nil")
	}
	if AccessTrace(r, paths, 0, time.Second, 1.2) != nil {
		t.Errorf("zero accesses should yield nil")
	}
	// Determinism.
	t1 := AccessTrace(sim.NewRand(9), paths, 50, time.Second, 1.2)
	t2 := AccessTrace(sim.NewRand(9), paths, 50, time.Second, 1.2)
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace not deterministic at %d", i)
		}
	}
}

func TestReplay(t *testing.T) {
	g := dgms.New(dgms.Options{})
	if err := g.RegisterResource(vfs.New("disk", "x", vfs.Disk, 0)); err != nil {
		t.Fatal(err)
	}
	specs := LibraryDocs(sim.NewRand(1), 4)
	if err := Ingest(g, g.Admin(), "disk", specs); err != nil {
		t.Fatal(err)
	}
	paths := []string{specs[0].Path, specs[1].Path}
	trace := AccessTrace(sim.NewRand(2), paths, 20, time.Minute, 1.2)
	start := g.Clock().Now()
	stats, err := Replay(g, g.Admin(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reads != 20 || stats.ServiceTime <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	if got := g.Clock().Now().Sub(start); got != stats.Elapsed {
		t.Errorf("elapsed mismatch: %v vs %v", got, stats.Elapsed)
	}
	if stats.ServiceTime >= stats.Elapsed {
		t.Errorf("service time should be a fraction of elapsed")
	}
	// Missing path aborts.
	bad := []Access{{Path: "/nope", Gap: 0}}
	if _, err := Replay(g, g.Admin(), bad); err == nil {
		t.Errorf("missing path accepted")
	}
}
