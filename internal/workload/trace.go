package workload

import (
	"fmt"
	"time"

	"datagridflow/internal/dgms"
	"datagridflow/internal/sim"
)

// Access is one read in a replayable trace.
type Access struct {
	// Path is the logical object read.
	Path string
	// Gap is the interarrival time before this access.
	Gap time.Duration
}

// AccessTrace synthesizes n reads over the given paths with Zipfian
// popularity (exponent s > 1; lower ranks are hotter) and exponential
// interarrival times around meanGap. Access popularity in archives is
// classically Zipfian — a small hot set absorbs most reads — which is
// exactly the structure domain-value ILM exploits and freshness-only
// HSM cannot see.
func AccessTrace(r *sim.Rand, paths []string, n int, meanGap time.Duration, s float64) []Access {
	if len(paths) == 0 || n <= 0 {
		return nil
	}
	out := make([]Access, n)
	for i := range out {
		rank := int(r.Zipf(uint64(len(paths)), s))
		out[i] = Access{
			Path: paths[rank],
			Gap:  time.Duration(r.Exp(float64(meanGap))),
		}
	}
	return out
}

// ReplayStats summarizes a trace replay.
type ReplayStats struct {
	Reads int
	// Elapsed is the simulated time the replay spanned (gaps + IO).
	Elapsed time.Duration
	// ServiceTime is the simulated time spent inside reads (IO +
	// transfer), i.e. what the users actually waited.
	ServiceTime time.Duration
}

// Replay performs the trace against the grid as user, advancing the
// grid clock by each gap and measuring per-read service time. Read
// errors abort the replay.
func Replay(g *dgms.Grid, user string, trace []Access) (ReplayStats, error) {
	var stats ReplayStats
	clock := g.Clock()
	start := clock.Now()
	for i, a := range trace {
		clock.Sleep(a.Gap)
		before := clock.Now()
		if _, err := g.Get(user, "", a.Path); err != nil {
			return stats, fmt.Errorf("workload: replay access %d (%s): %w", i, a.Path, err)
		}
		stats.Reads++
		stats.ServiceTime += clock.Now().Sub(before)
	}
	stats.Elapsed = clock.Now().Sub(start)
	return stats, nil
}
