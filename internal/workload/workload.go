// Package workload synthesizes the datasets of the paper's production
// scenarios. We do not have the real SCEC waveforms, BBSRC hospital
// records, CMS event data or UCSD library holdings; these generators
// produce collections with the same *shape* — counts, size
// distributions, metadata — from deterministic seeds, so every
// experiment that consumed the real data in the paper's deployments
// exercises the same code paths here.
package workload

import (
	"fmt"

	"datagridflow/internal/dgms"
	"datagridflow/internal/namespace"
	"datagridflow/internal/sim"
)

// FileSpec describes one synthetic logical file.
type FileSpec struct {
	Path string
	Size int64
	Meta map[string]string
}

// SCEC generates n earthquake-simulation waveform files under
// /grid/scec/<run>/: log-normal sizes with a 64 MiB median (TeraShake-
// style outputs), tagged with run and station metadata.
func SCEC(r *sim.Rand, runs, filesPerRun int) []FileSpec {
	var out []FileSpec
	for run := 0; run < runs; run++ {
		for i := 0; i < filesPerRun; i++ {
			out = append(out, FileSpec{
				Path: fmt.Sprintf("/grid/scec/run%03d/wave_%04d.dat", run, i),
				Size: r.FileSize(64<<20, 0.8),
				Meta: map[string]string{
					"experiment": "TeraShake",
					"run":        fmt.Sprintf("run%03d", run),
					"station":    fmt.Sprintf("st%04d", i),
					"stage":      "raw",
				},
			})
		}
	}
	return out
}

// Hospitals generates the BBSRC-CCLRC pattern: k hospital domains, each
// producing records under /grid/hospitals/<name>/, destined for the
// archiver site. Sizes are small-to-medium (median 4 MiB scans).
func Hospitals(r *sim.Rand, hospitals, perHospital int) map[string][]FileSpec {
	out := make(map[string][]FileSpec, hospitals)
	for h := 0; h < hospitals; h++ {
		domain := fmt.Sprintf("hospital%02d", h)
		var specs []FileSpec
		for i := 0; i < perHospital; i++ {
			specs = append(specs, FileSpec{
				Path: fmt.Sprintf("/grid/hospitals/%s/record_%05d", domain, i),
				Size: r.FileSize(4<<20, 1.0),
				Meta: map[string]string{"source": domain, "kind": "patient-scan"},
			})
		}
		out[domain] = specs
	}
	return out
}

// CMSRuns generates CERN CMS-style event data under /grid/cms/: large
// files (median 1 GiB) produced at the tier-0 site and destined for
// staged replication down the tiers.
func CMSRuns(r *sim.Rand, n int) []FileSpec {
	var out []FileSpec
	for i := 0; i < n; i++ {
		out = append(out, FileSpec{
			Path: fmt.Sprintf("/grid/cms/run_%05d.root", i),
			Size: r.FileSize(1<<30, 0.5),
			Meta: map[string]string{"detector": "CMS", "tier": "0"},
		})
	}
	return out
}

// LibraryDocs generates UCSD-library-style holdings: many small
// documents (median 512 KiB) whose integrity is verified by MD5 flows.
func LibraryDocs(r *sim.Rand, n int) []FileSpec {
	var out []FileSpec
	for i := 0; i < n; i++ {
		out = append(out, FileSpec{
			Path: fmt.Sprintf("/grid/library/doc_%05d.pdf", i),
			Size: r.FileSize(512<<10, 1.2),
			Meta: map[string]string{"collection": "ucsd-libraries", "format": "pdf"},
		})
	}
	return out
}

// TotalBytes sums the sizes of a spec list.
func TotalBytes(specs []FileSpec) int64 {
	var sum int64
	for _, s := range specs {
		sum += s.Size
	}
	return sum
}

// Ingest loads the specs into the grid as user onto the named resource,
// creating parent collections as needed and attaching metadata.
func Ingest(g *dgms.Grid, user, resource string, specs []FileSpec) error {
	for _, s := range specs {
		parent := namespace.Parent(s.Path)
		if !g.Namespace().Exists(parent) {
			if err := g.CreateCollectionAll(user, parent); err != nil {
				return err
			}
		}
		if err := g.Ingest(user, s.Path, s.Size, nil, resource); err != nil {
			return err
		}
		for k, v := range s.Meta {
			if err := g.SetMeta(user, s.Path, k, v); err != nil {
				return err
			}
		}
	}
	return nil
}
