package datagridflow

// configs_test.go keeps the shipped sample documents in configs/ valid:
// they are the first thing a new deployment copies.

import (
	"os"
	"testing"

	"datagridflow/internal/dgms"
	"datagridflow/internal/ilm"
	"datagridflow/internal/infra"
	"datagridflow/internal/matrix"
	"datagridflow/internal/trigger"
)

func TestShippedConfigsValid(t *testing.T) {
	// Infrastructure applies cleanly.
	data, err := os.ReadFile("configs/infra.xml")
	if err != nil {
		t.Fatal(err)
	}
	desc, err := infra.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	grid := dgms.New(dgms.Options{})
	nodes, err := desc.Apply(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || len(grid.Resources()) != 3 {
		t.Errorf("infra shape: %d nodes, %d resources", len(nodes), len(grid.Resources()))
	}
	if sla, ok := desc.SLAFor("sdsc", "scec"); !ok || sla.Name != "scec-gold" {
		t.Errorf("SLA = %+v, %v", sla, ok)
	}
	// Triggers install. The protect-large trigger targets local-archive
	// (the matrixd demo resource); register it so Define validates the
	// action targets at runtime rather than failing the document.
	engine := matrix.NewEngine(grid)
	data, err = os.ReadFile("configs/triggers.xml")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := trigger.ParseDefinitions(data)
	if err != nil {
		t.Fatal(err)
	}
	mgr := trigger.NewManager(grid, engine, 1, 16)
	defer mgr.Close()
	names, err := mgr.DefineAll(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Errorf("triggers = %v", names)
	}
	// ILM policy builds.
	data, err = os.ReadFile("configs/ilm-policy.xml")
	if err != nil {
		t.Fatal(err)
	}
	pdoc, err := ilm.ParsePolicy(data)
	if err != nil {
		t.Fatal(err)
	}
	pol, _, model, err := pdoc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || len(pol.Tiers) != 3 || len(pol.Window.Days) != 2 {
		t.Errorf("policy = %+v", pol)
	}
}
