package datagridflow

import (
	"context"
	"errors"
	"testing"
)

// TestFacadeEndToEnd drives the whole stack through the public API only:
// grid, engine, triggers, ILM star, broker — the path a downstream user
// takes.
func TestFacadeEndToEnd(t *testing.T) {
	grid := NewGrid(GridOptions{})
	for _, r := range []*Resource{
		NewResource("disk1", "sdsc", Disk, 0),
		NewResource("tape1", "archive", Archive, 0),
	} {
		if err := grid.RegisterResource(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := grid.CreateCollectionAll(grid.Admin(), "/grid/home"); err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(grid)

	flow := NewFlow("quick").
		Step("ingest", Op(OpIngest, map[string]string{
			"path": "/grid/home/a.dat", "size": "1024", "resource": "disk1",
		})).
		Step("tag", Op(OpSetMeta, map[string]string{
			"path": "/grid/home/a.dat", "attr": "stage", "value": "raw",
		})).
		Step("protect", Op(OpReplicate, map[string]string{
			"path": "/grid/home/a.dat", "to": "tape1",
		})).Flow()
	exec, err := engine.Run(grid.Admin(), flow)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Wait(); err != nil {
		t.Fatal(err)
	}
	reps, err := grid.Namespace().Replicas("/grid/home/a.dat")
	if err != nil || len(reps) != 2 {
		t.Fatalf("replicas = %v, %v", reps, err)
	}
	// Provenance is queryable.
	if n := grid.Provenance().Count(ProvenanceFilter{Action: "ingest"}); n != 1 {
		t.Errorf("provenance ingests = %d", n)
	}
	// ILM star over the collection.
	star, err := ImplodingStar(grid, grid.Admin(), "/grid/home", "tape1", false)
	if err != nil {
		t.Fatal(err)
	}
	if star.CountSteps() != 0 { // already on tape
		t.Errorf("star steps = %d", star.CountSteps())
	}
	// Value model sanity through the facade.
	vm := NewValueModel()
	vm.Record("/grid/home/a.dat", grid.Clock().Now())
	if v := vm.Value("/grid/home/a.dat", grid.Clock().Now(), grid.Clock().Now()); v <= 0 {
		t.Errorf("value = %v", v)
	}
	// Wire server + client through the facade.
	srv := NewMatrixServer(engine)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialMatrix(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	resp, err := client.SubmitFlow(grid.Admin(), NewFlow("remote").
		Step("noop", Op(OpNoop, nil)).Flow())
	if err != nil || resp.Error != "" {
		t.Fatalf("remote submit = %+v, %v", resp, err)
	}
	// Broker through the facade.
	broker := NewBroker(grid, []ComputeNode{{Name: "c1", Domain: "sdsc", Nodes: 2, Power: 1}}, 1)
	task := &Task{Name: "t", Transformation: "x", CPUSeconds: 10,
		Inputs: []string{"/grid/home/a.dat"}, Output: "/grid/home/out", OutputSize: 10}
	if _, err := broker.Execute(task, 0, ""); err != nil {
		t.Fatal(err)
	}
	if !grid.Namespace().Exists("/grid/home/out") {
		t.Errorf("broker output missing")
	}
}

// TestFacadeSurface exercises the remaining facade helpers so the public
// API stays wired to its internal implementations.
func TestFacadeSurface(t *testing.T) {
	flow := NewFlow("render-me").
		Step("a", Op(OpNoop, nil)).
		Step("b", Op(OpNoop, nil)).Flow()
	if tree := RenderTree(&flow); tree == "" || !contains(tree, "render-me") {
		t.Errorf("RenderTree = %q", tree)
	}
	if dot := RenderDot(&flow); !contains(dot, "digraph") {
		t.Errorf("RenderDot = %q", dot)
	}
	// DGL marshal/parse helpers.
	data, err := MarshalDGL(NewRequest("u", "vo", flow))
	if err != nil {
		t.Fatal(err)
	}
	req, err := ParseDGLRequest(data)
	if err != nil || req.Flow.Name != "render-me" {
		t.Errorf("ParseDGLRequest = %+v, %v", req, err)
	}
	// Clock + provenance helpers.
	clock := NewVirtualClock()
	if clock.Now().Year() != 2005 {
		t.Errorf("epoch year = %d", clock.Now().Year())
	}
	store, err := OpenProvenance(t.TempDir() + "/p.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Append(ProvenanceRecord{Action: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	// Stored procedures via the facade.
	grid := NewGrid(GridOptions{})
	if err := grid.RegisterResource(NewResource("d", "x", Disk, 0)); err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(grid)
	proc := Procedure{Name: "mk", Params: []string{"p"},
		Flow: NewFlow("body").Step("s", Op(OpMakeCollection, map[string]string{"path": "$p"})).Flow()}
	if err := engine.StoreProcedure(proc); err != nil {
		t.Fatal(err)
	}
	caller := NewFlow("caller").Step("call", Op(OpCall, map[string]string{
		"procedure": "mk", "p": "/grid/made-by-proc",
	})).Flow()
	ex, err := engine.Run(grid.Admin(), caller)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	if !grid.Namespace().Exists("/grid/made-by-proc") {
		t.Errorf("facade procedure call failed")
	}
	// Exploding star facade wrapper.
	if err := grid.CreateCollectionAll(grid.Admin(), "/grid/src"); err != nil {
		t.Fatal(err)
	}
	if _, err := ExplodingStar(grid, grid.Admin(), "/grid/src", nil); err != nil {
		t.Errorf("ExplodingStar facade: %v", err)
	}
	// Event/phase constants resolve.
	if EventIngest != "ingest" || PhaseBefore == PhaseAfter {
		t.Errorf("event constants wrong")
	}
}

// TestFacadeFaultRecovery drives the fault/retry/typed-error surface
// through the public API alone: a parsed fault plan takes a resource
// down, a declared retry policy burns out, and the failure is
// recognisable with errors.Is against the package sentinels; a journaled
// run survives into a WaitContext.
func TestFacadeFaultRecovery(t *testing.T) {
	grid := NewGrid(GridOptions{})
	if err := grid.RegisterResource(NewResource("disk1", "sdsc", Disk, 0)); err != nil {
		t.Fatal(err)
	}
	if err := grid.CreateCollectionAll(grid.Admin(), "/grid"); err != nil {
		t.Fatal(err)
	}
	plan, err := ParseFaultPlan([]byte(`{"seed": 1, "events": [
		{"target": "disk1", "kind": "resource-down"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	injector, err := NewFaultInjector(grid.Clock(), *plan)
	if err != nil {
		t.Fatal(err)
	}
	grid.SetFault(injector)

	engine := NewEngine(grid)
	journal, err := OpenJournal(t.TempDir() + "/exec.journal")
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	engine.SetJournal(journal)

	st := Step{
		Name: "ingest", OnError: OnErrorRetry, Retries: 2, Backoff: "1s",
		Operation: Op(OpIngest, map[string]string{
			"path": "/grid/f.dat", "size": "100", "resource": "disk1",
		}),
	}
	exec, err := engine.RunContext(context.Background(), grid.Admin(),
		NewFlow("doomed").StepWith(st).Flow())
	if err != nil {
		t.Fatal(err)
	}
	runErr := exec.WaitContext(context.Background())
	if !errors.Is(runErr, ErrRetryExhausted) || !errors.Is(runErr, ErrResourceDown) {
		t.Errorf("errors.Is against facade sentinels failed: %v", runErr)
	}
	if Retryable(runErr) {
		t.Errorf("exhausted error marked retryable")
	}
	if !injector.Down("disk1") {
		t.Errorf("injector introspection: disk1 should be down")
	}
	// A run the journal saw end is not recoverable — the fence held.
	e2 := NewEngine(NewGrid(GridOptions{}))
	if recovered, err := e2.RecoverFromJournal(journal.Path()); err != nil || len(recovered) != 0 {
		t.Errorf("recovery after clean end = %d execs, %v", len(recovered), err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
