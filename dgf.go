// Package datagridflow is the public API of the Datagridflows
// reproduction: a complete implementation of the system described in
// "Datagridflows: Managing Long-Run Processes on Datagrids" (Jagatheesan
// et al., VLDB DMG Workshop 2005).
//
// The package re-exports the stable surface of the internal packages:
//
//   - Grid construction and data-virtualization operations (the DGMS,
//     an SRB analog): ingest, replicate, migrate, trim, delete, verify,
//     metadata, ACLs, multi-domain resources, namespace events.
//   - The Data Grid Language (DGL): XML documents describing flows with
//     sequential / parallel / while / forEach / switch control patterns,
//     user-defined ECA rules, and status queries; plus a fluent builder.
//   - The matrix engine (DfMS server): executes DGL flows with pause,
//     resume, cancel, restart-with-checkpoints, per-step status ids and
//     full provenance.
//   - Datagrid triggers (event-condition-action over namespace events).
//   - Datagrid ILM: value-driven tiering policies, imploding/exploding
//     star topologies, execution windows.
//   - The grid scheduler/broker: cost-based placement, abstract-to-
//     concrete rewriting (late binding), and a virtual-data catalog.
//   - The wire protocol: networked DfMS servers, clients, and the
//     peer-to-peer datagridflow network with lookup servers.
//
// A minimal end-to-end use:
//
//	grid := datagridflow.NewGrid(datagridflow.GridOptions{})
//	_ = grid.RegisterResource(datagridflow.NewResource("disk1", "sdsc", datagridflow.Disk, 0))
//	_ = grid.CreateCollectionAll(grid.Admin(), "/grid/home")
//	engine := datagridflow.NewEngine(grid)
//	flow := datagridflow.NewFlow("hello").
//		Step("ingest", datagridflow.Op(datagridflow.OpIngest, map[string]string{
//			"path": "/grid/home/a.dat", "size": "1024", "resource": "disk1",
//		})).Flow()
//	exec, _ := engine.Run(grid.Admin(), flow)
//	_ = exec.Wait()
package datagridflow

import (
	"context"

	"datagridflow/internal/dgferr"
	"datagridflow/internal/dgl"
	"datagridflow/internal/dgms"
	"datagridflow/internal/fault"
	"datagridflow/internal/ilm"
	"datagridflow/internal/infra"
	"datagridflow/internal/matrix"
	"datagridflow/internal/namespace"
	"datagridflow/internal/provenance"
	"datagridflow/internal/scheduler"
	"datagridflow/internal/shard"
	"datagridflow/internal/sim"
	"datagridflow/internal/trigger"
	"datagridflow/internal/vfs"
	"datagridflow/internal/wire"
)

// Grid and storage substrate.
type (
	// Grid is the Data Grid Management System (SRB analog).
	Grid = dgms.Grid
	// GridOptions configure NewGrid.
	GridOptions = dgms.Options
	// Resource is a simulated physical storage system.
	Resource = vfs.Resource
	// StorageClass identifies the kind of storage a resource models.
	StorageClass = vfs.Class
	// Event is a namespace-change notification.
	Event = dgms.Event
	// EventType names a namespace-changing operation.
	EventType = dgms.EventType
	// Clock abstracts simulated vs wall time.
	Clock = sim.Clock
	// VirtualClock is a manually advanced simulation clock.
	VirtualClock = sim.VirtualClock
	// Network models inter-domain links.
	Network = sim.Network
)

// Storage classes.
const (
	Memory     = vfs.Memory
	ParallelFS = vfs.ParallelFS
	Disk       = vfs.Disk
	Archive    = vfs.Archive
)

// Namespace event types (trigger subscriptions).
const (
	EventIngest     = dgms.EventIngest
	EventReplicate  = dgms.EventReplicate
	EventMigrate    = dgms.EventMigrate
	EventTrim       = dgms.EventTrim
	EventDelete     = dgms.EventDelete
	EventCollection = dgms.EventCollection
	EventMetaSet    = dgms.EventMetaSet
	EventMove       = dgms.EventMove
	EventAccess     = dgms.EventAccess
)

// Trigger delivery phases.
const (
	// PhaseBefore fires prior to the operation (veto-capable).
	PhaseBefore = dgms.Before
	// PhaseAfter fires once the operation completed.
	PhaseAfter = dgms.After
)

// NewGrid creates a Data Grid Management System.
func NewGrid(opts GridOptions) *Grid { return dgms.New(opts) }

// NewResource creates a simulated storage resource (capacity 0 =
// unlimited).
func NewResource(name, domain string, class StorageClass, capacity int64) *Resource {
	return vfs.New(name, domain, class, capacity)
}

// NewVirtualClock returns a virtual clock starting at the simulation
// epoch (2005-08-01 UTC).
func NewVirtualClock() *VirtualClock { return sim.NewVirtualClock(sim.Epoch) }

// DGL: documents and builder.
type (
	// Flow is a DGL flow (Figure 1 of the paper).
	Flow = dgl.Flow
	// FlowBuilder assembles flows fluently.
	FlowBuilder = dgl.FlowBuilder
	// Request is a DGL DataGridRequest (Figure 2).
	Request = dgl.Request
	// Response is a DGL DataGridResponse (Figure 4).
	Response = dgl.Response
	// FlowStatus is one node of a status tree.
	FlowStatus = dgl.FlowStatus
	// Operation is an atomic DGL action.
	Operation = dgl.Operation
	// Step is a concrete flow task.
	Step = dgl.Step
	// Rule is a user-defined ECA rule.
	Rule = dgl.Rule
	// NSQuery is a DGL-level datagrid metadata query (forEach iteration).
	NSQuery = dgl.NSQuery
	// QueryCond is one predicate of an NSQuery.
	QueryCond = dgl.QueryCond
)

// Built-in operation types (see dgl package for the full list).
const (
	OpIngest         = dgl.OpIngest
	OpReplicate      = dgl.OpReplicate
	OpMigrate        = dgl.OpMigrate
	OpTrim           = dgl.OpTrim
	OpDelete         = dgl.OpDelete
	OpVerify         = dgl.OpVerify
	OpSetMeta        = dgl.OpSetMeta
	OpMakeCollection = dgl.OpMakeCollection
	OpMove           = dgl.OpMove
	OpRegister       = dgl.OpRegister
	OpCall           = dgl.OpCall
	OpExec           = dgl.OpExec
	OpSetVariable    = dgl.OpSetVariable
	OpSleep          = dgl.OpSleep
	OpNoop           = dgl.OpNoop
)

// Step fault policies (Step.OnError). Under OnErrorRetry the step's
// Retries/Backoff/MaxBackoff attributes govern re-attempts; only
// retryable classes (see Retryable) burn the budget.
const (
	OnErrorAbort    = dgl.OnErrorAbort
	OnErrorContinue = dgl.OnErrorContinue
	OnErrorRetry    = dgl.OnErrorRetry
)

// RenderTree renders a flow as an indented ASCII tree.
func RenderTree(f *Flow) string { return dgl.Tree(f) }

// RenderDot renders a flow as a Graphviz digraph.
func RenderDot(f *Flow) string { return dgl.Dot(f) }

// NewFlow starts building a sequential flow.
func NewFlow(name string) *FlowBuilder { return dgl.NewFlow(name) }

// Op constructs an operation from a type and parameter map.
func Op(typ string, params map[string]string) Operation { return dgl.Op(typ, params) }

// NewRequest wraps a flow in a synchronous DGL request.
func NewRequest(user, vo string, flow Flow) *Request { return dgl.NewRequest(user, vo, flow) }

// MarshalDGL renders a DGL document (Request, Response, Flow) as
// indented XML.
func MarshalDGL(v any) ([]byte, error) { return dgl.Marshal(v) }

// ParseDGLRequest decodes and validates a DataGridRequest document.
func ParseDGLRequest(data []byte) (*Request, error) { return dgl.ParseRequest(data) }

// Engine: the DfMS server core.
type (
	// Engine executes DGL flows (the SRB Matrix analog).
	Engine = matrix.Engine
	// Execution is one tracked run of a flow.
	Execution = matrix.Execution
	// EngineConfig tunes an engine.
	EngineConfig = matrix.Config
	// OpContext is passed to custom operation handlers.
	OpContext = matrix.OpContext
	// OpHandler implements a custom DGL operation.
	OpHandler = matrix.OpHandler
	// Procedure is a server-held stored procedure (named DGL flow).
	Procedure = matrix.Procedure
)

// NewEngine creates a flow engine over a grid.
func NewEngine(g *Grid) *Engine { return matrix.NewEngine(g) }

// NewEngineConfig creates an engine with explicit configuration.
func NewEngineConfig(g *Grid, cfg EngineConfig) *Engine { return matrix.NewEngineConfig(g, cfg) }

// Error taxonomy. Every failure the DGMS, engine and wire layer report
// carries one of these classes; match with errors.Is. The classes
// survive the wire protocol (a server encodes the class, the client
// rebuilds it), so errors.Is(err, datagridflow.ErrRetryExhausted) holds
// whether the engine ran in-process or across the network.
var (
	// ErrNotFound: an unknown path, resource, execution or journal.
	ErrNotFound = dgferr.ErrNotFound
	// ErrExists: the entry (object, collection, replica) already exists.
	ErrExists = dgferr.ErrExists
	// ErrPermission: an ACL denial or a vetoed operation.
	ErrPermission = dgferr.ErrPermission
	// ErrInvalid: a malformed document, plan or argument.
	ErrInvalid = dgferr.ErrInvalid
	// ErrCapacity: a resource is out of space.
	ErrCapacity = dgferr.ErrCapacity
	// ErrCancelled: the execution, context or request was cancelled.
	ErrCancelled = dgferr.ErrCancelled
	// ErrTimeout: a step attempt overran its budget (retryable).
	ErrTimeout = dgferr.ErrTimeout
	// ErrResourceDown: a resource is offline or failing (retryable).
	ErrResourceDown = dgferr.ErrResourceDown
	// ErrRetryExhausted: a step burned its whole retry budget on
	// transient errors.
	ErrRetryExhausted = dgferr.ErrRetryExhausted
	// ErrProtocol: a wire version mismatch (the "hello" handshake).
	ErrProtocol = dgferr.ErrProtocol
	// ErrAuth: a missing, expired or forged tenant token (wire 1.7).
	ErrAuth = dgferr.ErrAuth
	// ErrQuota: a tenant resource bound exceeded (flows in flight,
	// store bytes, delegation slots, submit rate).
	ErrQuota = dgferr.ErrQuota
)

// Retryable reports whether the error is transient under the taxonomy:
// resource-down and timeout classes retry; permission, validation and
// exhaustion failures do not; unclassified errors default to retryable.
func Retryable(err error) bool { return dgferr.Retryable(err) }

// Fault injection (docs/FAULTS.md).
type (
	// FaultPlan is a seeded, reproducible schedule of fault events.
	FaultPlan = fault.Plan
	// FaultEvent is one scheduled fault window.
	FaultEvent = fault.Event
	// FaultInjector evaluates a plan against the sim clock.
	FaultInjector = fault.Injector
	// ExecutionJournal is the engine's crash-recovery log.
	ExecutionJournal = matrix.Journal
)

// Fault kinds for FaultEvent.Kind.
const (
	FaultResourceDown  = fault.ResourceDown
	FaultResourceFlaky = fault.ResourceFlaky
	FaultPeerCrash     = fault.PeerCrash
	FaultConnDrop      = fault.ConnDrop
	FaultLatency       = fault.Latency
)

// NewFaultInjector builds an injector for the plan with the clock's
// current time as the schedule epoch.
func NewFaultInjector(clock Clock, plan FaultPlan) (*FaultInjector, error) {
	return fault.NewInjector(clock, plan)
}

// ParseFaultPlan decodes and validates a JSON fault-plan document.
func ParseFaultPlan(data []byte) (*FaultPlan, error) { return fault.ParsePlan(data) }

// OpenJournal opens (creating if needed) an execution journal; attach
// it with Engine.SetJournal and recover crashed runs with
// Engine.RecoverFromJournal.
func OpenJournal(path string) (*ExecutionJournal, error) { return matrix.OpenJournal(path) }

// Triggers.
type (
	// Trigger is a datagrid event-condition-action definition.
	Trigger = trigger.Trigger
	// TriggerManager owns trigger subscriptions on one grid.
	TriggerManager = trigger.Manager
)

// NewTriggerManager creates a trigger manager (workers/queueCap <= 0 use
// defaults).
func NewTriggerManager(g *Grid, e *Engine, workers, queueCap int) *TriggerManager {
	return trigger.NewManager(g, e, workers, queueCap)
}

// ILM.
type (
	// ILMPolicy maps domain-value bands to storage tiers.
	ILMPolicy = ilm.Policy
	// ILMTier is one value band of a policy.
	ILMTier = ilm.Tier
	// ValueModel tracks domain value from accesses and freshness.
	ValueModel = ilm.ValueModel
	// ExecutionWindow gates when ILM flows may run.
	ExecutionWindow = ilm.Window
)

// NewValueModel returns a domain-value model with default parameters.
func NewValueModel() *ValueModel { return ilm.NewValueModel() }

// ImplodingStar generates the archiver-pull flow over a scope.
func ImplodingStar(g *Grid, owner, scope, archiveResource string, trimSources bool) (Flow, error) {
	return ilm.ImplodingStar(g, owner, scope, archiveResource, trimSources)
}

// ExplodingStar generates the tiered-push flow over a scope.
func ExplodingStar(g *Grid, owner, scope string, tiers [][]string) (Flow, error) {
	return ilm.ExplodingStar(g, owner, scope, tiers)
}

// Scheduler/broker.
type (
	// Broker plans and executes tasks with cost-based matchmaking.
	Broker = scheduler.Broker
	// Task is one unit of abstract execution logic.
	Task = scheduler.Task
	// ComputeNode is the broker's view of one compute pool.
	ComputeNode = infra.ComputeNode
	// Infrastructure is the Infrastructure Description Language document.
	Infrastructure = infra.Description
)

// NewBroker creates a broker over a grid and compute inventory.
func NewBroker(g *Grid, nodes []ComputeNode, seed int64) *Broker {
	return scheduler.NewBroker(g, nodes, seed)
}

// Wire: networked servers and the peer network.
type (
	// MatrixServer exposes an engine over TCP.
	MatrixServer = wire.Server
	// MatrixClient talks to a matrix server.
	MatrixClient = wire.Client
	// MatrixPeer is one node of the P2P datagridflow network.
	MatrixPeer = wire.Peer
	// LookupServer is the peer registry.
	LookupServer = wire.LookupServer
	// SubmitOption configures one MatrixClient.Submit call (WithAsync,
	// WithBatch, WithRoute, WithUser).
	SubmitOption = wire.SubmitOption
	// SubmitResult is the unified reply of MatrixClient.Submit.
	SubmitResult = wire.SubmitResult
	// RouteMode is a submission's shard-placement preference.
	RouteMode = wire.RouteMode
	// ShardManager reconciles a peer's shard leases against the ring.
	ShardManager = shard.Manager
	// ShardConfig tunes a ShardManager.
	ShardConfig = shard.Config
)

// Shard-routing modes for WithRoute.
const (
	// RouteAuto forwards a submission to its shard owner (the default
	// on sharded peers).
	RouteAuto = wire.RouteAuto
	// RouteLocal pins a submission to the connected peer.
	RouteLocal = wire.RouteLocal
)

// WithAsync submits asynchronously, acknowledging with an execution id.
func WithAsync() SubmitOption { return wire.WithAsync() }

// WithBatch adds requests answered positionally in one round trip.
func WithBatch(reqs ...*Request) SubmitOption { return wire.WithBatch(reqs...) }

// WithRoute sets the submission's shard-placement preference.
func WithRoute(mode RouteMode) SubmitOption { return wire.WithRoute(mode) }

// WithUser names the identity a batch is accounted to.
func WithUser(name string) SubmitOption { return wire.WithUser(name) }

// NewShardManager builds a shard manager for MatrixPeer.EnableSharding.
func NewShardManager(cfg ShardConfig) *ShardManager { return shard.NewManager(cfg) }

// NewMatrixServer wraps an engine for network service.
func NewMatrixServer(e *Engine) *MatrixServer { return wire.NewServer(e) }

// DialMatrix connects to a matrix server.
func DialMatrix(addr string) (*MatrixClient, error) { return wire.Dial(addr) }

// DialMatrixContext connects to a matrix server honouring the context's
// deadline and cancellation.
func DialMatrixContext(ctx context.Context, addr string) (*MatrixClient, error) {
	return wire.DialContext(ctx, addr)
}

// Namespace and provenance views.
type (
	// NamespaceEntry is a read-only view of a namespace node.
	NamespaceEntry = namespace.Entry
	// NamespaceQuery selects entries by metadata.
	NamespaceQuery = namespace.Query
	// NamespaceCondition is one predicate of a NamespaceQuery.
	NamespaceCondition = namespace.Condition
	// ProvenanceStore is the append-only audit log.
	ProvenanceStore = provenance.Store
	// ProvenanceRecord is one audit entry.
	ProvenanceRecord = provenance.Record
	// ProvenanceFilter selects audit entries.
	ProvenanceFilter = provenance.Filter
)

// Permissions.
const (
	PermNone  = namespace.PermNone
	PermRead  = namespace.PermRead
	PermWrite = namespace.PermWrite
	PermOwn   = namespace.PermOwn
)

// OpenProvenance opens (or creates) a file-backed provenance store.
func OpenProvenance(path string) (*ProvenanceStore, error) { return provenance.Open(path) }
